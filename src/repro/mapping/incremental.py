"""Incremental remapping after network edits.

EONS-style workflows mutate networks continuously (add/remove neurons and
synapses); re-solving the full area ILP after every mutation is wasteful
when most of the placement is still valid.  This module repairs an
existing mapping against an edited network:

1. carry over the placement of every surviving neuron;
2. place new neurons greedily (existing slots first, cheapest new slot
   otherwise);
3. repair any capacity overflow caused by changed connectivity (changed
   axon sets can overflow word-lines even with no new neurons);
4. optionally polish the *affected* neighbourhood with one exact-ILP
   repair (the LNS repair primitive with everything untouched pinned).

The result is always a valid mapping of the new network, typically
reusing the vast majority of the old placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..snn.network import Network
from .lns import _repair
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class RemapOptions:
    """Repair behaviour."""

    polish: bool = True  # exact-ILP repair of the affected neighbourhood
    polish_time_limit: float = 3.0

    def __post_init__(self) -> None:
        if self.polish_time_limit <= 0:
            raise ValueError("polish_time_limit must be positive")


@dataclass(frozen=True)
class RemapResult:
    """The repaired mapping plus change accounting."""

    mapping: Mapping
    carried_over: int  # neurons that kept their slot
    newly_placed: int  # neurons absent from the old mapping
    relocated: int  # surviving neurons that had to move


def _affected_neurons(
    old_net: Network, new_net: Network
) -> set[int]:
    """Neurons whose incident structure changed between the versions."""
    affected: set[int] = set()
    old_ids = set(old_net.neuron_ids())
    new_ids = set(new_net.neuron_ids())
    affected |= new_ids - old_ids  # brand new
    for nid in new_ids & old_ids:
        if (
            old_net.predecessors(nid) != new_net.predecessors(nid)
            or old_net.successors(nid) != new_net.successors(nid)
        ):
            affected.add(nid)
    return affected


def remap_incremental(
    old_mapping: Mapping,
    new_network: Network,
    options: RemapOptions | None = None,
) -> RemapResult:
    """Repair ``old_mapping`` for ``new_network`` (same architecture).

    ``new_network`` must use compact ids (0..n-1); surviving neurons are
    matched by id.  Raises ``RuntimeError`` if even greedy repair cannot
    fit the edit (grow the pool in that case).
    """
    opts = options or RemapOptions()
    problem = MappingProblem(new_network, old_mapping.problem.architecture)
    old_net = old_mapping.problem.network
    old_assignment = old_mapping.assignment

    # Step 1-2: carry over + greedy placement of new neurons.
    assignment: dict[int, int] = {}
    new_neurons: list[int] = []
    for nid in new_network.neuron_ids():
        if nid in old_assignment:
            assignment[nid] = old_assignment[nid]
        else:
            new_neurons.append(nid)
    for nid in new_neurons:
        assignment[nid] = _greedy_slot(problem, assignment, nid)

    # Step 3: capacity repair (eviction loop).
    relocated = _repair_overflow(problem, assignment)
    candidate = Mapping(problem, assignment)
    assert candidate.is_valid()

    # Step 4: polish the affected neighbourhood with one exact repair.
    if opts.polish:
        affected = _affected_neurons(old_net, new_network)
        affected &= set(new_network.neuron_ids())
        if affected:
            candidate = _repair(
                problem, candidate, affected, opts.polish_time_limit
            )

    carried = sum(
        1
        for nid, j in candidate.assignment.items()
        if old_assignment.get(nid) == j
    )
    moved = sum(
        1
        for nid, j in candidate.assignment.items()
        if nid in old_assignment and old_assignment[nid] != j
    )
    return RemapResult(
        mapping=candidate,
        carried_over=carried,
        newly_placed=len(new_neurons),
        relocated=max(moved, relocated),
    )


def _greedy_slot(
    problem: MappingProblem, assignment: dict[int, int], neuron: int
) -> int:
    """Cheapest slot that can host ``neuron`` given current placements."""
    arch = problem.architecture
    used = {}
    for nid, j in assignment.items():
        used.setdefault(j, set()).add(nid)

    def fits(j: int) -> bool:
        group = used.get(j, set()) | {neuron}
        spec = arch.slot(j)
        return (
            len(group) <= spec.outputs
            and problem.axon_demand(group) <= spec.inputs
        )

    open_slots = sorted(used)
    for j in open_slots:
        if fits(j):
            return j
    fresh = [s for s in arch.slots if s.index not in used and fits(s.index)]
    if not fresh:
        raise RuntimeError(
            f"no slot can host new neuron {neuron}; grow the pool"
        )
    return min(fresh, key=lambda s: (s.area, s.index)).index


def _repair_overflow(
    problem: MappingProblem, assignment: dict[int, int]
) -> int:
    """Evict neurons from overflowing slots until every slot is valid.

    Returns the number of evictions.  Mutates ``assignment`` in place.
    """
    moves = 0
    for _ in range(4 * problem.num_neurons):
        current = Mapping(problem, assignment)
        bad = [
            j for j in current.enabled_slots()
            if (
                len(current.neurons_on(j))
                > problem.architecture.slot(j).outputs
                or len(current.axon_inputs(j))
                > problem.architecture.slot(j).inputs
            )
        ]
        if not bad:
            return moves
        j = bad[0]
        # Evict the member with the largest private axon demand.
        members = sorted(
            current.neurons_on(j), key=lambda i: -len(problem.preds(i))
        )
        evicted = False
        for neuron in members:
            try:
                del assignment[neuron]
                target = _greedy_slot(problem, assignment, neuron)
            except RuntimeError:
                assignment[neuron] = j
                continue
            if target != j:
                assignment[neuron] = target
                moves += 1
                evicted = True
                break
            assignment[neuron] = j
        if not evicted:
            raise RuntimeError("cannot repair capacity overflow by eviction")
    raise RuntimeError("overflow repair did not converge")
