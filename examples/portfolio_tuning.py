#!/usr/bin/env python
"""Portfolio tuning: one fig2 scenario mapped three ways.

Solves the SNU (global-route minimization) stage of a fig2 paper
scenario with three solver configurations and prints a wall-clock /
objective table:

1. **exact**          — the baseline node-capped HiGHS arm on the plain
                        model (no symmetry rows, no heuristic seed);
2. **symmetry-broken** — the same arm on the ``symmetry="lex"`` model:
                        slot-permutation orbits are cut down to one
                        canonical representative each (the optimal
                        *objective* is provably unchanged);
3. **lp_round-seeded** — the accelerated portfolio: the ``lp_round``
                        racer (LP relaxation + delta-guided repair)
                        produces an incumbent in seconds and donates it
                        to a node-capped ``emphasis="speed"`` exact arm
                        as a root cutoff.

Run:  PYTHONPATH=src python examples/portfolio_tuning.py [--smoke]

``--smoke`` shrinks the instance and budgets so the whole script
finishes in a few seconds — this is what CI runs.  Without it the
script uses the fig2-E exhibit scale tracked in ``BENCH_ilp.json``.
"""

from __future__ import annotations

import argparse
import time

from repro.batch.portfolio import PortfolioOptions, PortfolioSolver
from repro.experiments.common import het_problem
from repro.experiments.networks import paper_network
from repro.experiments.runner import ExperimentConfig
from repro.ilp.solve import SolverSpec, solve_model
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.snu import RouteModelOptions, build_snu_model


def solve_three_ways(scale: float, node_cap: int, lp_time: float) -> list[dict]:
    config = ExperimentConfig(scale=scale)
    network = paper_network("E", scale=scale)
    problem = het_problem(network, config)
    base = greedy_first_fit(problem)
    print(
        f"fig2-E @ scale {scale:g}: {problem.num_neurons} neurons, "
        f"{problem.num_slots} slots, greedy global routes "
        f"{base.global_routes()}"
    )

    rows: list[dict] = []

    def run(label: str, fn) -> None:
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        rows.append(
            {
                "mode": label,
                "wall_s": wall,
                "objective": result.objective,
                "status": result.status.value,
                "backend": result.backend,
            }
        )

    # 1. Exact arm, plain model.
    plain = build_snu_model(problem, base)
    run(
        "exact",
        lambda: solve_model(
            plain.model,
            SolverSpec("highs", node_limit=node_cap),
        ),
    )

    # 2. Same arm, lex symmetry-broken model.  The warm start is
    #    canonicalized automatically by warm_start_from.
    lex = build_snu_model(
        problem, base, options=RouteModelOptions(symmetry="lex")
    )
    run(
        "symmetry-broken",
        lambda: solve_model(
            lex.model,
            SolverSpec("highs", node_limit=node_cap),
            warm_start=lex.warm_start_from(base),
        ),
    )

    # 3. Accelerated portfolio: lp_round donates its incumbent to a
    #    loose node-capped exact arm (sequential races share incumbents).
    specs = (
        SolverSpec("lp_round", time_limit=lp_time),
        SolverSpec("highs", node_limit=node_cap, emphasis="speed"),
    )
    run(
        "lp_round-seeded",
        lambda: PortfolioSolver(PortfolioOptions(specs=specs)).solve(
            lex.model, warm_start=lex.warm_start_from(base)
        ),
    )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance + budgets (seconds total); used by CI",
    )
    args = parser.parse_args()

    if args.smoke:
        rows = solve_three_ways(scale=0.08, node_cap=50, lp_time=2.0)
    else:
        rows = solve_three_ways(scale=0.25, node_cap=150, lp_time=5.0)

    print()
    header = f"{'mode':<16} {'wall [s]':>9} {'objective':>10} {'status':>9}  backend"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['mode']:<16} {row['wall_s']:>9.2f} "
            f"{row['objective']:>10.1f} {row['status']:>9}  {row['backend']}"
        )

    exact = rows[0]
    seeded = rows[-1]
    if seeded["wall_s"] < exact["wall_s"]:
        print(
            f"\nlp_round-seeded finished {exact['wall_s'] / seeded['wall_s']:.1f}x "
            f"faster than the exact arm at objective "
            f"{seeded['objective']:g} (exact: {exact['objective']:g})"
        )


if __name__ == "__main__":
    main()
