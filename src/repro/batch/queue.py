"""Thread-safe job queue with cancellation tokens.

The submission side of a long-lived mapping service: producers
:meth:`JobQueue.push` work items and hold on to the returned
:class:`CancelToken`; worker threads :meth:`JobQueue.pop` items in FIFO
order.  A token cancelled while its item is still queued makes the queue
drop the item before a worker ever sees it; a token cancelled while the
item is running doubles as the ``should_cancel`` hook of
:meth:`~repro.batch.engine.BatchMapper.map_all`, aborting the remainder
of the batch at the next job boundary.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any


class CancelToken:
    """A one-way cancellation flag shared by submitter and worker.

    Calling the token returns whether it is cancelled, so it plugs
    directly into ``should_cancel=`` hooks.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __call__(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


class QueueFull(RuntimeError):
    """Push rejected: the queue is at its bounded depth.

    Carries an optional ``retry_after`` hint (seconds) that HTTP fronts
    forward as a ``Retry-After`` header — backpressure, not failure.
    """

    def __init__(
        self, message: str = "queue is full", retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobQueue:
    """FIFO of ``(item, CancelToken)`` pairs for service worker loops.

    ``pop`` silently discards items whose token was cancelled while they
    waited — the canceller is responsible for any bookkeeping on the
    dropped item (the service registry marks the job cancelled before
    setting the token).  After :meth:`close`, pushes raise and ``pop``
    returns ``None`` once the queue drains, which is the worker's signal
    to exit.

    ``maxsize`` bounds the *live* depth (cancelled stragglers don't
    count): a push beyond it raises :class:`QueueFull` instead of
    accepting unbounded backlog.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._items: deque[tuple[Any, CancelToken]] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.maxsize = maxsize

    def push(self, item: Any, token: CancelToken | None = None) -> CancelToken:
        """Enqueue ``item``; returns its (possibly caller-made) token."""
        token = token if token is not None else CancelToken()
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self.maxsize is not None:
                live = sum(1 for _, t in self._items if not t.cancelled)
                if live >= self.maxsize:
                    raise QueueFull(
                        f"queue is at its bounded depth ({self.maxsize})"
                    )
            self._items.append((item, token))
            self._cond.notify()
        return token

    def pop(self, timeout: float | None = None) -> tuple[Any, CancelToken] | None:
        """Next live ``(item, token)``, or ``None`` on timeout / drained close.

        ``timeout`` is a total deadline, not a per-wait budget: a worker
        woken by a notify whose item another worker stole (or whose
        token was cancelled while queued) goes back to waiting on the
        *remainder*, so ``pop(timeout=t)`` returns within ``t`` of the
        call no matter how many fruitless wake-ups happen in between.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._items:
                    item, token = self._items.popleft()
                    if not token.cancelled:
                        return item, token
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    return None

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return sum(1 for _, token in self._items if not token.cancelled)
