"""Tests for MappingProblem and the Mapping solution object."""

import pytest

from repro.mapping.problem import MappingProblem
from repro.mapping.solution import Mapping
from repro.mca.architecture import custom_architecture, homogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.network import Network


def diamond_network():
    """0 -> {1, 2} -> 3 with an extra edge 0 -> 3."""
    net = Network("diamond+")
    for i in range(4):
        net.add_neuron(i, is_input=(i == 0), is_output=(i == 3))
    net.add_synapse(0, 1)
    net.add_synapse(0, 2)
    net.add_synapse(1, 3)
    net.add_synapse(2, 3)
    net.add_synapse(0, 3)
    return net


class TestMappingProblem:
    def test_requires_compact_network(self):
        net = Network()
        net.add_neuron(0)
        net.add_neuron(5)
        arch = homogeneous_architecture(2, dimension=4)
        with pytest.raises(ValueError, match="compact"):
            MappingProblem(net, arch)

    def test_rejects_empty_network(self):
        arch = homogeneous_architecture(2, dimension=4)
        with pytest.raises(ValueError, match="empty"):
            MappingProblem(Network(), arch)

    def test_rejects_unfittable_fan_in(self):
        net = Network()
        for i in range(6):
            net.add_neuron(i)
        for i in range(5):
            net.add_synapse(i, 5)
        arch = custom_architecture([(CrossbarType(4, 4), 4)])
        with pytest.raises(ValueError, match="fan-in"):
            MappingProblem(net, arch)

    def test_preds_succs_sources(self):
        prob = MappingProblem(
            diamond_network(), homogeneous_architecture(4, dimension=8)
        )
        assert prob.preds(3) == {0, 1, 2}
        assert prob.succs(0) == {1, 2, 3}
        assert prob.sources() == [0, 1, 2]

    def test_edges_deterministic(self):
        prob = MappingProblem(
            diamond_network(), homogeneous_architecture(4, dimension=8)
        )
        assert prob.edges() == [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]

    def test_axon_demand_shares(self):
        prob = MappingProblem(
            diamond_network(), homogeneous_architecture(4, dimension=8)
        )
        # 1 and 2 share the single axon from 0.
        assert prob.axon_demand({1, 2}) == 1
        assert prob.axon_demand({3}) == 3
        assert prob.axon_demand({1, 2, 3}) == 3


class TestMapping:
    @pytest.fixture
    def problem(self):
        arch = custom_architecture([(CrossbarType(4, 4), 3)])
        return MappingProblem(diamond_network(), arch)

    def test_validation_of_assignment_shape(self, problem):
        with pytest.raises(ValueError, match="missing"):
            Mapping(problem, {0: 0})
        with pytest.raises(ValueError, match="unknown neurons"):
            Mapping(problem, {0: 0, 1: 0, 2: 0, 3: 0, 9: 0})
        with pytest.raises(ValueError, match="unknown slots"):
            Mapping(problem, {0: 0, 1: 0, 2: 0, 3: 7})

    def test_structure_queries(self, problem):
        m = Mapping(problem, {0: 0, 1: 1, 2: 1, 3: 2})
        assert m.neurons_on(1) == {1, 2}
        assert m.axon_inputs(1) == {0}  # shared axon counted once
        assert m.axon_inputs(2) == {0, 1, 2}
        assert m.enabled_slots() == [0, 1, 2]

    def test_area_counts_enabled_only(self, problem):
        m = Mapping(problem, {0: 0, 1: 0, 2: 0, 3: 0})
        assert m.area() == 16.0
        assert m.memristor_count() == 16

    def test_route_metrics_hand_computed(self, problem):
        m = Mapping(problem, {0: 0, 1: 1, 2: 1, 3: 2})
        # Inputs: slot0 {}, slot1 {0}, slot2 {0,1,2} -> total 4.
        assert m.total_routes() == 4
        assert m.local_routes() == 0
        assert m.global_routes() == 4

    def test_local_routes_when_colocated(self, problem):
        m = Mapping(problem, {0: 0, 1: 0, 2: 0, 3: 0})
        # All inputs are internal: s has {0} for axons 0,1,2 all local.
        assert m.total_routes() == 3
        assert m.local_routes() == 3
        assert m.global_routes() == 0

    def test_packet_count(self, problem):
        m = Mapping(problem, {0: 0, 1: 1, 2: 1, 3: 2})
        local, global_ = m.packet_count({0: 10, 1: 2, 2: 3})
        # 0 -> slot1 (10), 0 -> slot2 (10), 1 -> slot2 (2), 2 -> slot2 (3).
        assert (local, global_) == (0, 25)

    def test_packet_count_with_local(self, problem):
        m = Mapping(problem, {0: 0, 1: 0, 2: 1, 3: 1})
        local, global_ = m.packet_count({0: 4, 1: 1, 2: 1})
        # 0 feeds 1 locally (4), feeds {2,3} on slot1 (4 global);
        # 1 feeds 3 on slot1 (1 global); 2 feeds 3 locally (1).
        assert local == 5
        assert global_ == 5

    def test_capacity_validation(self):
        net = Network()
        for i in range(5):
            net.add_neuron(i)
        for i in range(4):
            net.add_synapse(i, 4)
        arch = custom_architecture([(CrossbarType(4, 4), 2)])
        prob = MappingProblem(net, arch)
        crowded = Mapping(prob, {i: 0 for i in range(5)})
        issues = crowded.validate()
        assert any("output lines" in v for v in issues)
        assert not crowded.is_valid()

    def test_input_capacity_validation(self):
        net = Network()
        for i in range(6):
            net.add_neuron(i)
        for i in range(5):
            net.add_synapse(i, 5)
        arch = custom_architecture([(CrossbarType(5, 8), 2), (CrossbarType(4, 8), 1)])
        prob = MappingProblem(net, arch)
        bad = Mapping(prob, {0: 0, 1: 0, 2: 0, 3: 0, 4: 0, 5: 2})
        assert any("axons exceed" in v for v in bad.validate())

    def test_histogram_and_summary(self, problem):
        m = Mapping(problem, {0: 0, 1: 1, 2: 1, 3: 2})
        assert m.crossbar_histogram() == {"4x4": 3}
        assert "routes=4" in m.summary()
