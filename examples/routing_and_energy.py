#!/usr/bin/env python
"""Routing/energy deep dive: run a mapped network on the processor model.

Shows the part of the stack below the ILP: a mapping placed on the
multi-crossbar processor with a 2D-mesh NoC, executed on real spike
traffic, with local/global packet accounting, per-link loads and a
first-order energy estimate — before and after SNU optimization.

Run:  python examples/routing_and_energy.py
"""

from repro.ilp import HighsBackend, HighsOptions
from repro.mapping import (
    AreaModel,
    MappingProblem,
    build_snu_model,
    greedy_first_fit,
)
from repro.mca import (
    MappedProcessor,
    cost_summary,
    heterogeneous_architecture,
)
from repro.snn import layered_network

WINDOW = 40


def traffic_line(name, traffic, summary):
    print(f"  {name:12s} local={traffic.local_packets:4d} "
          f"global={traffic.global_packets:4d} "
          f"hop-packets={traffic.hop_packets:4d} "
          f"peak-link={traffic.max_link_load:3d} "
          f"energy={summary.total_energy_pj:9.1f} pJ")


def main() -> None:
    # A layered SNN with clear input structure drives realistic traffic.
    network = layered_network([6, 12, 12, 6], connection_prob=0.35, seed=9)
    print(f"network: {network}")
    architecture = heterogeneous_architecture(network.num_neurons)
    problem = MappingProblem(network, architecture)

    handle = AreaModel(problem)
    area_res = HighsBackend(HighsOptions(time_limit=10)).solve(
        handle.model, warm_start=handle.warm_start_from(greedy_first_fit(problem))
    )
    area_mapping = handle.extract_mapping(area_res)

    snu_handle = build_snu_model(problem, area_mapping)
    snu_res = HighsBackend(HighsOptions(time_limit=8)).solve(
        snu_handle.model, warm_start=snu_handle.warm_start_from(area_mapping)
    )
    snu_mapping = snu_handle.extract_mapping(snu_res)

    # Drive every input neuron with a burst train.
    input_spikes = {nid: list(range(0, WINDOW, 3)) for nid in network.input_ids()}

    print(f"\narea-optimal mapping: {area_mapping.summary()}")
    print(f"SNU-optimal mapping : {snu_mapping.summary()}")
    print(f"\nsimulating {WINDOW} timesteps of burst input:")
    for name, mapping in (("area-opt", area_mapping), ("SNU-opt", snu_mapping)):
        proc = MappedProcessor(network, mapping.assignment, architecture)
        sim, traffic = proc.run(WINDOW, input_spikes=input_spikes)
        summary = cost_summary(
            architecture, mapping.assignment, traffic, duration=WINDOW
        )
        traffic_line(name, traffic, summary)

    print("\n(SNU never increases area; global packets and hop-energy drop)")


if __name__ == "__main__":
    main()
