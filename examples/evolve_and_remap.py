#!/usr/bin/env python
"""Evolve-and-remap loop: keeping hardware mappings fresh during training.

EONS mutates networks constantly; re-solving the whole mapping ILP per
mutation would dominate training time.  This example shows the intended
workflow for hardware-in-the-loop evolution:

1. map the initial network once (area ILP),
2. per evolution step: mutate the network, lint it, then *incrementally
   remap* — carrying over placements and repairing only the edited
   neighbourhood with a small exact solve,
3. periodically consolidate with a few LNS destroy/repair rounds.

Run:  python examples/evolve_and_remap.py
"""

from repro.mapping import (
    LnsOptions,
    MappingProblem,
    RemapOptions,
    greedy_first_fit,
    lns_area,
    remap_incremental,
)
from repro.mca import heterogeneous_architecture
from repro.snn import Eons, EonsConfig, lint_network, network_stats

STEPS = 8


def main() -> None:
    eons = Eons(
        EonsConfig(
            num_inputs=6,
            num_outputs=3,
            initial_hidden=12,
            initial_synapses=50,
            max_neurons=40,
            max_fan_in=10,
            seed=19,
        )
    )
    genome = eons.random_genome()
    network, _ = genome.compact()
    # Pool sized for growth headroom (max_neurons, not the current size).
    architecture = heterogeneous_architecture(eons.config.max_neurons)
    problem = MappingProblem(network, architecture)
    mapping = greedy_first_fit(problem)
    print(f"initial: {network_stats(network).node_count} neurons -> "
          f"{mapping.summary()}")

    for step in range(1, STEPS + 1):
        genome = eons.mutate(genome)
        network, _ = genome.compact()
        warnings = [str(i) for i in lint_network(network)]
        result = remap_incremental(
            mapping, network, RemapOptions(polish=True, polish_time_limit=2.0)
        )
        mapping = result.mapping
        note = f" lint:{len(warnings)}" if warnings else ""
        print(f"step {step}: {network.num_neurons:2d} neurons, "
              f"area {mapping.area():5g}, carried {result.carried_over:2d}, "
              f"new {result.newly_placed}, moved {result.relocated}{note}")

    consolidated = lns_area(
        mapping.problem, mapping,
        LnsOptions(rounds=4, destroy_fraction=0.35, repair_time_limit=2.0),
    )
    print(f"\nLNS consolidation: area {mapping.area():g} -> "
          f"{consolidated.mapping.area():g} "
          f"({consolidated.repairs_improved} improving repairs)")
    print(f"final mapping: {consolidated.mapping.summary()}")


if __name__ == "__main__":
    main()
