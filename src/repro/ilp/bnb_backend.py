"""Pure-Python branch-and-bound MILP solver.

This backend exists for two reasons:

1. It records a *true incumbent stream* with deterministic timestamps,
   which the paper obtained from CP-SAT solution callbacks and uses for the
   area/SNU evolution figures (Figs. 3, 7, 8).  SciPy's HiGHS interface
   cannot report intermediate solutions.
2. It demonstrates the full solve path with no black boxes, which makes the
   solver itself testable (tests cross-check it against HiGHS on random
   instances).

The algorithm is a textbook best-first branch and bound over LP relaxations
(solved with HiGHS via :func:`scipy.optimize.linprog`), with
most-fractional branching and a rounding primal heuristic.  It is intended
for the moderate model sizes used in the evolution experiments, not as a
replacement for HiGHS on large instances.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .. import trace
from .dettime import DeterministicClock
from .model import MatrixForm, Model
from .result import Incumbent, SolveResult, SolveStatus

INT_TOL = 1e-6
FEAS_TOL = 1e-6


@dataclass(frozen=True)
class BnBOptions:
    """Search limits for the branch-and-bound backend."""

    max_nodes: int = 100_000
    time_limit: float | None = None  # wall seconds
    det_limit: float | None = None  # deterministic work units
    gap_tol: float = 1e-6  # stop when |incumbent - bound| / |incumbent| below
    heuristic_period: int = 20  # run rounding heuristic every N nodes
    keep_incumbent_values: bool = True


@dataclass(order=True)
class _Node:
    bound: float
    tiebreak: int
    lb: np.ndarray = field(compare=False, default=None)
    ub: np.ndarray = field(compare=False, default=None)


class _LpRelaxation:
    """LP relaxation of a lowered model with mutable variable bounds."""

    def __init__(self, form: MatrixForm) -> None:
        self.form = form
        a = form.a_matrix.tocsr()
        eq_rows = np.isfinite(form.row_lb) & (form.row_lb == form.row_ub)
        ub_rows = np.isfinite(form.row_ub) & ~eq_rows
        lb_rows = np.isfinite(form.row_lb) & ~eq_rows

        self.a_eq = a[eq_rows] if eq_rows.any() else None
        self.b_eq = form.row_ub[eq_rows] if eq_rows.any() else None
        blocks = []
        rhs = []
        if ub_rows.any():
            blocks.append(a[ub_rows])
            rhs.append(form.row_ub[ub_rows])
        if lb_rows.any():
            blocks.append(-a[lb_rows])
            rhs.append(-form.row_lb[lb_rows])
        self.a_ub = sparse.vstack(blocks).tocsr() if blocks else None
        self.b_ub = np.concatenate(rhs) if rhs else None
        self.nnz = a.nnz

    def solve(self, lb: np.ndarray, ub: np.ndarray):
        """Solve the relaxation under the given variable bounds.

        Returns ``(status, objective, x, iterations)`` where status is one
        of 'optimal', 'infeasible', 'unbounded', 'error'.
        """
        res = linprog(
            c=self.form.c,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )
        iterations = int(getattr(res, "nit", 0) or 0)
        if res.status == 0:
            return "optimal", float(res.fun), np.asarray(res.x), iterations
        if res.status == 2:
            return "infeasible", None, None, iterations
        if res.status == 3:
            return "unbounded", None, None, iterations
        return "error", None, None, iterations

    def is_feasible(self, x: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> bool:
        """Feasibility check in matrix form (bounds, rows, integrality)."""
        if np.any(x < lb - FEAS_TOL) or np.any(x > ub + FEAS_TOL):
            return False
        int_mask = self.form.integrality > 0
        if np.any(np.abs(x[int_mask] - np.round(x[int_mask])) > INT_TOL):
            return False
        ax = self.form.a_matrix @ x
        return bool(
            np.all(ax <= self.form.row_ub + FEAS_TOL)
            and np.all(ax >= self.form.row_lb - FEAS_TOL)
        )


class BnBBackend:
    """Best-first branch and bound with incumbent-stream recording."""

    name = "bnb"

    def __init__(self, options: BnBOptions | None = None) -> None:
        self.options = options or BnBOptions()

    def solve(
        self,
        model: Model,
        warm_start: dict[str, float] | np.ndarray | None = None,
        keep_values: bool = True,
    ) -> SolveResult:
        opts = self.options
        entry = time.perf_counter()
        form = model.lower()
        relax = _LpRelaxation(form)
        clock = DeterministicClock()
        clock.charge("setup", relax.nnz * 0.001)
        start = time.perf_counter()
        presolve_wall = start - entry
        names = model.var_names()
        int_mask = form.integrality > 0

        best_x: np.ndarray | None = None
        best_obj = np.inf  # minimized-form objective (c.x)
        incumbents: list[Incumbent] = []
        # Mutable search state shared with _search (and read by the
        # progress events) so an interrupt mid-loop still leaves the
        # true node count and bound readable.
        state: dict = {"nodes": 0, "bound": None}

        def record(x: np.ndarray, cx: float) -> None:
            nonlocal best_x, best_obj
            if cx < best_obj - 1e-9:
                best_x, best_obj = x.copy(), cx
                values = None
                if opts.keep_incumbent_values:
                    values = {n: float(x[i]) for i, n in enumerate(names)}
                incumbents.append(
                    Incumbent(
                        objective=form.sign * (cx + form.offset),
                        det_time=clock.now(),
                        wall_time=time.perf_counter() - start,
                        values=values,
                    )
                )
                trace.progress(
                    "incumbent",
                    objective=form.sign * (cx + form.offset),
                    bound=(
                        form.sign * (state["bound"] + form.offset)
                        if state["bound"] is not None
                        else None
                    ),
                    nodes=state["nodes"],
                    det_time=clock.now(),
                )

        if warm_start is not None:
            # Index-based warm start: the incumbent goes straight in as a
            # dense vector — no name-keyed dict hop on the hot path.
            x0 = model.dense_values(warm_start)
            violations = model.check_feasible(x0)
            if violations:
                raise ValueError(f"warm start infeasible: {violations[:3]}")
            record(x0, float(form.c @ x0))

        root_lb = form.var_lb.copy()
        root_ub = form.var_ub.copy()
        status, obj, x, nit = relax.solve(root_lb, root_ub)
        clock.charge_lp(nit, relax.nnz)
        if status == "infeasible":
            return self._finish(
                SolveStatus.INFEASIBLE, None, None, None, clock, start,
                incumbents, 1, presolve=presolve_wall,
            )
        if status in ("unbounded", "error"):
            final = (
                SolveStatus.UNBOUNDED if status == "unbounded" else SolveStatus.NO_SOLUTION
            )
            if best_x is not None:
                return self._finish(
                    SolveStatus.FEASIBLE, best_x, best_obj, None, clock, start,
                    incumbents, 1, form, names, keep_values,
                    presolve=presolve_wall,
                )
            return self._finish(
                final, None, None, None, clock, start, incumbents, 1,
                presolve=presolve_wall,
            )

        counter = itertools.count()
        heap: list[_Node] = []
        heapq.heappush(heap, _Node(obj, next(counter), root_lb, root_ub))
        state["bound"] = obj

        interrupted = False
        try:
            self._search(
                heap, relax, clock, start, counter, int_mask,
                lambda: best_obj, record, state,
            )
        except KeyboardInterrupt:
            # Cancellation (pool shutdown / Ctrl-C): stop searching and
            # report whatever incumbent is in hand instead of raising.
            interrupted = True
        nodes = state["nodes"]
        global_bound = state["bound"]
        # Final progress event: every solve that reached the search loop
        # reports its last bound/node count, even when no incumbent ever
        # improved (limits, interrupts).
        trace.progress(
            "bound",
            objective=(
                form.sign * (best_obj + form.offset)
                if best_obj < np.inf
                else None
            ),
            bound=(
                form.sign * (global_bound + form.offset)
                if global_bound is not None
                else None
            ),
            nodes=nodes,
            det_time=clock.now(),
        )

        # An interrupted search proves nothing: the heap may be transiently
        # empty (node popped, children not yet pushed), so never conclude
        # OPTIMAL or INFEASIBLE from it.
        exhausted = not interrupted and (
            not heap or heap[0].bound >= best_obj - 1e-9
        )
        if best_x is None:
            final = SolveStatus.INFEASIBLE if exhausted else SolveStatus.NO_SOLUTION
            result = self._finish(
                final, None, None, global_bound, clock, start, incumbents,
                nodes, presolve=presolve_wall,
            )
            if interrupted:
                result.backend = f"{self.name}-interrupted"
            return result
        within_gap = (
            best_obj < np.inf
            and abs(best_obj - global_bound) / max(abs(best_obj), 1e-9) <= opts.gap_tol
        )
        final = (
            SolveStatus.OPTIMAL
            if exhausted or (within_gap and not interrupted)
            else SolveStatus.FEASIBLE
        )
        result = self._finish(
            final, best_x, best_obj, global_bound, clock, start, incumbents,
            nodes, form, names, keep_values, presolve=presolve_wall,
        )
        if interrupted:
            # Tag the degradation so portfolios and the batch cache can
            # tell a cancelled incumbent from a genuine limit-out.
            result.backend = f"{self.name}-interrupted"
        return result

    def _search(
        self, heap, relax, clock, start, counter, int_mask,
        best_obj_fn, record, state,
    ) -> None:
        """Best-first node loop; mutates ``state`` ("nodes", "bound")."""
        opts = self.options
        while heap:
            best_obj = best_obj_fn()
            nodes = state["nodes"]
            if nodes >= opts.max_nodes:
                break
            if opts.time_limit is not None and time.perf_counter() - start > opts.time_limit:
                break
            if opts.det_limit is not None and clock.now() > opts.det_limit:
                break

            node = heapq.heappop(heap)
            state["bound"] = node.bound
            if node.bound >= best_obj - 1e-9:
                break  # best-first: nothing left can improve
            if best_obj < np.inf:
                gap = abs(best_obj - node.bound) / max(abs(best_obj), 1e-9)
                if gap <= opts.gap_tol:
                    break

            nodes += 1
            state["nodes"] = nodes
            clock.charge_node()
            if nodes % opts.heuristic_period == 0:
                # Live bound convergence, paced with the heuristic so the
                # event stream stays O(nodes / period).  No-op untraced.
                form = relax.form
                trace.progress(
                    "bound",
                    objective=(
                        form.sign * (best_obj + form.offset)
                        if best_obj < np.inf
                        else None
                    ),
                    bound=form.sign * (node.bound + form.offset),
                    nodes=nodes,
                    det_time=clock.now(),
                )
            status, obj, x, nit = relax.solve(node.lb, node.ub)
            clock.charge_lp(nit, relax.nnz)
            if status != "optimal" or obj >= best_obj - 1e-9:
                continue

            frac = np.abs(x[int_mask] - np.round(x[int_mask]))
            if frac.size == 0 or frac.max() <= INT_TOL:
                snapped = x.copy()
                snapped[int_mask] = np.round(snapped[int_mask])
                record(snapped, float(relax.form.c @ snapped))
                continue

            if nodes % opts.heuristic_period == 1:
                self._try_rounding(relax, x, node.lb, node.ub, int_mask, clock, record)

            branch_var = self._pick_branch_var(x, int_mask)
            val = x[branch_var]
            down_ub = node.ub.copy()
            down_ub[branch_var] = np.floor(val)
            up_lb = node.lb.copy()
            up_lb[branch_var] = np.ceil(val)
            if node.lb[branch_var] <= down_ub[branch_var]:
                heapq.heappush(heap, _Node(obj, next(counter), node.lb, down_ub))
            if up_lb[branch_var] <= node.ub[branch_var]:
                heapq.heappush(heap, _Node(obj, next(counter), up_lb, node.ub))

    # ------------------------------------------------------------------
    @staticmethod
    def _pick_branch_var(x: np.ndarray, int_mask: np.ndarray) -> int:
        """Most-fractional branching among integer variables."""
        frac = np.abs(x - np.round(x))
        frac[~int_mask] = -1.0
        return int(np.argmax(np.minimum(frac, 1.0 - frac) * int_mask))

    def _try_rounding(self, relax, x, lb, ub, int_mask, clock, record) -> None:
        """Primal heuristic: round the LP point and keep it if feasible."""
        clock.charge_heuristic(x.shape[0])
        rounded = x.copy()
        rounded[int_mask] = np.round(rounded[int_mask])
        rounded = np.clip(rounded, relax.form.var_lb, relax.form.var_ub)
        if relax.is_feasible(rounded, relax.form.var_lb, relax.form.var_ub):
            record(rounded, float(relax.form.c @ rounded))

    def _finish(
        self,
        status: SolveStatus,
        best_x,
        best_obj,
        bound,
        clock: DeterministicClock,
        start: float,
        incumbents: list[Incumbent],
        nodes: int,
        form: MatrixForm | None = None,
        names: list[str] | None = None,
        keep_values: bool = True,
        presolve: float = 0.0,
    ) -> SolveResult:
        values = None
        objective = None
        user_bound = None
        if best_x is not None and form is not None and names is not None:
            if keep_values:
                values = {n: float(best_x[i]) for i, n in enumerate(names)}
            objective = form.sign * (best_obj + form.offset)
            if bound is not None:
                user_bound = form.sign * (bound + form.offset)
        elif bound is not None and form is not None:
            user_bound = form.sign * (bound + form.offset)
        wall = time.perf_counter() - start
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            x=best_x if (best_x is not None and keep_values) else None,
            bound=user_bound,
            det_time=clock.now(),
            wall_time=wall,
            incumbents=incumbents,
            node_count=nodes,
            backend=self.name,
            phases=(("presolve", presolve), ("solve", wall)),
        )


#: Descriptive alias used by the solver-portfolio layer.
BranchAndBoundBackend = BnBBackend
