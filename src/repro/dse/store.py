"""Persistent, resumable run store for exploration sweeps.

JSONL, one JSON object per line, append-only.  Each entry records a
finished evaluation keyed by ``(scenario fingerprint, tier)`` — ``tier``
distinguishes the adaptive driver's cheap greedy bound from a real ILP
evaluation, so a resumed sweep can trust an ILP entry but will still
upgrade a greedy one.

Append-only JSONL is deliberately crash-tolerant: a process killed
mid-write leaves at most one torn final line, which the loader skips
(along with entries from older schema versions).  Re-evaluations simply
append again; the *last* entry per key wins, so the store doubles as a
history of the sweep.

Concurrent writers are safe: a store keeps **one** append handle open
per file for its whole life (instead of re-opening per entry) and takes
an advisory ``flock`` around every append, so several worker processes —
or the mapping daemon's threads — can share a single store.  Before each
append the writer heals a torn tail left by a crashed sibling (a final
line without its newline) by terminating it, so the crash costs exactly
the one torn entry and never corrupts the next writer's line.

Two on-disk layouts share this contract:

- **single file** (``RunStore(path)`` on a ``.jsonl`` path) — the
  original layout: one JSONL file, full scan on load;
- **sharded** (``RunStore(path, shards=N)``) — ``path`` is a directory
  of ``shard-XXX.jsonl`` files, entries routed by fingerprint prefix.
  Each shard has its own lock (N writers on N different shards never
  contend) and an **index sidecar** (``shard-XXX.idx``) appending
  ``(key, offset, length)`` per entry, so a resume reads the small
  index plus one line per *unique key* instead of re-parsing the whole
  append history — the difference between O(history) and O(keys).
  Opening an existing single-file store with ``shards=`` migrates it in
  place (the original file is kept as ``<name>.pre-shard``); opening a
  shard directory without ``shards=`` autodetects the layout from its
  ``MANIFEST.json``.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from ..jsonlio import flock as _shared_flock
from ..jsonlio import funlock as _shared_funlock
from ..jsonlio import heal_torn_tail as _shared_heal_torn_tail

#: Bump when the entry schema changes; older entries are ignored on load.
STORE_FORMAT = 1

#: The shard-directory marker file recording the shard count.
MANIFEST_NAME = "MANIFEST.json"

TIER_GREEDY = "greedy"
TIER_ILP = "ilp"


@dataclass(frozen=True)
class RunEntry:
    """One persisted evaluation."""

    fingerprint: str
    tier: str
    scenario: dict  # Scenario.payload() — for human/tool inspection
    status: str  # "ok" | "error"
    objectives: dict | None = None  # ObjectivePoint.as_dict() when ok
    assignment: dict | None = None  # neuron -> slot (stringed keys) when ok
    solves: int = 0  # ILP solves this evaluation spent
    wall_time: float = 0.0
    error: str | None = None
    meta: dict = field(default_factory=dict)  # driver breadcrumbs (rung, ...)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def key(self) -> tuple[str, str]:
        return (self.fingerprint, self.tier)

    def to_json(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "fingerprint": self.fingerprint,
            "tier": self.tier,
            "scenario": self.scenario,
            "status": self.status,
            "objectives": self.objectives,
            "assignment": self.assignment,
            "solves": self.solves,
            "wall_time": self.wall_time,
            "error": self.error,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunEntry":
        return cls(
            fingerprint=payload["fingerprint"],
            tier=payload["tier"],
            scenario=payload.get("scenario") or {},
            status=payload["status"],
            objectives=payload.get("objectives"),
            assignment=payload.get("assignment"),
            solves=int(payload.get("solves", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            error=payload.get("error"),
            meta=payload.get("meta") or {},
        )


def _parse_entry(line: str) -> RunEntry | None:
    """One JSONL line -> entry, or ``None`` for torn/stale/blank lines."""
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
        if payload.get("format") != STORE_FORMAT:
            raise ValueError("stale store format")
        return RunEntry.from_json(payload)
    except (ValueError, KeyError, TypeError):
        return None


class _Appender:
    """One JSONL file's long-lived locked append handle (plus sidecar).

    Owns the single-handle/flock/torn-tail-heal protocol for a data file
    and, when ``index_path`` is given, mirrors every append into an
    index sidecar line ``{"f", "t", "o", "l"}`` under the *same* lock,
    so index order always matches data order.
    """

    def __init__(self, data_path: Path, index_path: Path | None = None) -> None:
        self.data_path = data_path
        self.index_path = index_path
        self._handle: IO[bytes] | None = None
        self._index_handle: IO[bytes] | None = None

    def append(self, data: bytes, key: tuple[str, str] | None = None) -> None:
        handle = self._ensure(self.data_path, "_handle")
        _flock(handle, exclusive=True)
        try:
            _heal_torn_tail(handle)
            offset = handle.seek(0, 2)
            handle.write(data)
            handle.flush()
            if self.index_path is not None and key is not None:
                index_handle = self._ensure(self.index_path, "_index_handle")
                _heal_torn_tail(index_handle)
                index_handle.seek(0, 2)
                record = {"f": key[0], "t": key[1], "o": offset, "l": len(data)}
                index_handle.write(
                    json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
                )
                index_handle.flush()
        finally:
            _funlock(handle)

    def _ensure(self, path: Path, attr: str) -> IO[bytes]:
        handle: IO[bytes] | None = getattr(self, attr)
        if handle is None or handle.closed:
            path.parent.mkdir(parents=True, exist_ok=True)
            # "a+b": O_APPEND keeps every write at end-of-file no matter
            # which writer got there first; the read side lets the
            # torn-tail check inspect the current last byte under lock.
            handle = path.open("a+b")
            setattr(self, attr, handle)
        return handle

    def close(self) -> None:
        for attr in ("_handle", "_index_handle"):
            handle = getattr(self, attr)
            if handle is not None and not handle.closed:
                handle.close()
            setattr(self, attr, None)


# The flock/heal protocol lives in repro.jsonlio now (shared with the
# service journals and the trace span journals); the historical names
# stay importable for callers and tests grown against this module.
def _heal_torn_tail(handle: IO[bytes]) -> None:
    _shared_heal_torn_tail(handle)


def _flock(handle: IO[bytes], exclusive: bool) -> None:
    _shared_flock(handle, exclusive)


def _funlock(handle: IO[bytes]) -> None:
    _shared_funlock(handle)


class RunStore:
    """Append-only JSONL store of :class:`RunEntry` records.

    ``path=None`` keeps everything in memory (ephemeral sweeps and
    tests); otherwise entries are flushed line-by-line so a concurrent
    reader — or the next resumed run — sees every finished scenario.

    ``shards=N`` selects the sharded directory layout (see the module
    docstring): entries are routed to ``shard-XXX.jsonl`` by fingerprint
    prefix, each shard file has its own advisory lock, and an index
    sidecar makes resume read one line per unique key instead of the
    whole history.  An existing shard directory reopens with its
    manifest's shard count no matter what ``shards`` says; an existing
    single file migrates one-shot when ``shards`` is given.

    A persistent store is safe to share between processes: appends go
    through long-lived handles under advisory ``flock`` (plus an
    in-process mutex for threaded writers such as the mapping daemon).
    Use :meth:`reload` to pick up entries appended by *other* writers
    since this store was opened, and :meth:`close` (or the context
    manager form) to release the handles.
    """

    def __init__(
        self, path: str | Path | None = None, shards: int | None = None
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        self.path = Path(path) if path is not None else None
        self._entries: dict[tuple[str, str], RunEntry] = {}
        self._loaded_lines = 0
        self._skipped_lines = 0
        self._lock = threading.Lock()
        self._shards = 0  # 0 = memory or single-file layout
        self._appenders: dict[int, _Appender] = {}
        if self.path is None:
            return
        if self.path.is_dir():
            self._shards = self._read_manifest(shards)
        elif self.path.exists():
            if shards is not None:
                self._migrate_legacy(shards)
        elif shards is not None:
            self._init_shard_dir(shards)
        self._load_all()

    # -- layout ---------------------------------------------------------
    @property
    def shards(self) -> int:
        """Shard count (0 for the memory / single-file layouts)."""
        return self._shards

    def _manifest_path(self) -> Path:
        assert self.path is not None
        return self.path / MANIFEST_NAME

    def _read_manifest(self, shards: int | None) -> int:
        try:
            manifest = json.loads(self._manifest_path().read_text())
            count = int(manifest["shards"])
            if manifest.get("format") != STORE_FORMAT or count < 1:
                raise ValueError(manifest)
        except (OSError, ValueError, KeyError, TypeError):
            raise ValueError(
                f"{self.path} is not a run-store directory (missing or "
                f"invalid {MANIFEST_NAME})"
            ) from None
        return count

    def _init_shard_dir(self, shards: int) -> None:
        assert self.path is not None
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = self._manifest_path()
        if not manifest.exists():
            tmp = manifest.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps({"format": STORE_FORMAT, "shards": shards}) + "\n"
            )
            tmp.replace(manifest)  # atomic publish
        self._shards = self._read_manifest(shards)

    def _migrate_legacy(self, shards: int) -> None:
        """One-shot single-file -> sharded migration (last-per-key).

        The original file survives as ``<name>.pre-shard`` next to the
        new directory, so a crash mid-migration (or a change of heart)
        loses nothing.  Not safe to race from two processes — migrate
        once, at daemon startup, before workers open the store.
        """
        assert self.path is not None
        entries: dict[tuple[str, str], RunEntry] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                entry = _parse_entry(line)
                if entry is not None:
                    entries[entry.key] = entry
        backup = self.path.with_name(self.path.name + ".pre-shard")
        os.replace(self.path, backup)
        self._init_shard_dir(shards)
        for entry in entries.values():
            line = json.dumps(
                entry.to_json(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            self._appender_for(entry.fingerprint).append(line + b"\n", entry.key)

    def _shard_of(self, fingerprint: str) -> int:
        # Fingerprints are hex digests, so the leading characters are a
        # uniform route; non-hex keys ("invalid-..." placeholders) fall
        # back to a stable hash of the whole string.
        try:
            return int(fingerprint[:8], 16) % self._shards
        except ValueError:
            return zlib.crc32(fingerprint.encode("utf-8")) % self._shards

    def _shard_paths(self, index: int) -> tuple[Path, Path]:
        assert self.path is not None
        stem = f"shard-{index:03d}"
        return (self.path / f"{stem}.jsonl", self.path / f"{stem}.idx")

    def _appender_for(self, fingerprint: str) -> _Appender:
        assert self.path is not None
        if self._shards:
            index = self._shard_of(fingerprint)
            appender = self._appenders.get(index)
            if appender is None:
                data, idx = self._shard_paths(index)
                appender = self._appenders[index] = _Appender(data, idx)
            return appender
        appender = self._appenders.get(-1)
        if appender is None:
            # The legacy layout has no index sidecar: its file must stay
            # byte-compatible with stores written before sharding.
            appender = self._appenders[-1] = _Appender(self.path)
        return appender

    # -- loading --------------------------------------------------------
    def _load_all(self) -> None:
        assert self.path is not None
        if self._shards:
            for index in range(self._shards):
                data, idx = self._shard_paths(index)
                if data.exists():
                    self._load_shard(data, idx)
        elif self.path.exists():
            self._scan_file(self.path)

    def _scan_file(self, path: Path, start: int = 0) -> None:
        """Full (or tail) scan: parse every line from ``start`` onward."""
        with path.open("r", encoding="utf-8") as handle:
            if start:
                handle.seek(start)
            for line in handle:
                entry = _parse_entry(line)
                if entry is None:
                    if line.strip():
                        self._skipped_lines += 1
                    continue
                self._entries[entry.key] = entry
                self._loaded_lines += 1

    def _load_shard(self, data_path: Path, index_path: Path) -> None:
        """Index-accelerated load, falling back to a full scan.

        The sidecar tells us where the *last* entry of every key lives,
        so a resume parses one line per unique key plus whatever tail
        the index has not caught up with (a sibling that crashed between
        its data and index appends, or an indexless legacy writer).
        """
        if not index_path.exists():
            self._scan_file(data_path)
            return
        winners: dict[tuple[str, str], tuple[int, int]] = {}
        indexed_end = 0
        with index_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (record["f"], record["t"])
                    offset, length = int(record["o"]), int(record["l"])
                except (ValueError, KeyError, TypeError):
                    continue  # torn index tail; the data tail scan covers it
                winners[key] = (offset, length)
                indexed_end = max(indexed_end, offset + length)
        size = data_path.stat().st_size
        if indexed_end > size:
            # The index points past the data (mismatched files, manual
            # truncation): it cannot be trusted at all.
            self._scan_file(data_path)
            return
        loaded: dict[tuple[str, str], RunEntry] = {}
        with data_path.open("r", encoding="utf-8") as handle:
            for key, (offset, length) in winners.items():
                handle.seek(offset)
                entry = _parse_entry(handle.read(length))
                if entry is None or entry.key != key:
                    self._scan_file(data_path)  # index lied; trust the data
                    return
                loaded[key] = entry
        self._entries.update(loaded)
        self._loaded_lines += len(loaded)
        if indexed_end < size:
            self._scan_file(data_path, start=indexed_end)

    def reload(self) -> int:
        """Re-read the files, merging entries appended by other writers.

        Returns the number of keyed entries after the reload.  A memory
        store is a no-op.  Entries recorded through *this* store are
        re-read from disk too (last line per key wins, as always), so the
        in-memory view converges with every sibling writer's.  With the
        sharded layout this is cheap — the index sidecars bound the work
        by unique keys, not append history.
        """
        with self._lock:
            if self.path is None:
                return len(self._entries)
            self._entries.clear()
            self._loaded_lines = 0
            self._skipped_lines = 0
            self._load_all()
            return len(self._entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def get(self, fingerprint: str, tier: str = TIER_ILP) -> RunEntry | None:
        return self._entries.get((fingerprint, tier))

    def entries(self) -> list[RunEntry]:
        return list(self._entries.values())

    def completed(self, tier: str = TIER_ILP) -> dict[str, RunEntry]:
        """fingerprint -> entry for every *successful* evaluation at a tier.

        Failed entries are deliberately excluded so a resumed sweep
        retries them — an error is not an answer worth pinning.
        """
        return {
            entry.fingerprint: entry
            for entry in self._entries.values()
            if entry.tier == tier and entry.ok
        }

    def record(self, entry: RunEntry) -> None:
        """Persist one evaluation (last write per key wins).

        The append happens through the entry's shard handle, serialized
        by an exclusive advisory lock: the full ``line + newline`` is
        flushed before the lock drops, so readers and sibling writers
        never observe a half-written entry (short of a crash, whose torn
        tail the next append heals).
        """
        line = json.dumps(entry.to_json(), sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._entries[entry.key] = entry
            if self.path is None:
                return
            self._appender_for(entry.fingerprint).append(
                line.encode("utf-8") + b"\n", entry.key
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the append handles (records still work — they reopen)."""
        with self._lock:
            for appender in self._appenders.values():
                appender.close()
            self._appenders.clear()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    @property
    def skipped_lines(self) -> int:
        """Unreadable lines encountered on load (torn tails, old formats)."""
        return self._skipped_lines

    @property
    def _handle(self) -> IO[bytes] | None:
        """The single-file layout's append handle (``None`` when closed).

        Kept as an inspectable attribute because the single-handle
        regression tests assert on its lifecycle; the sharded layout has
        one handle per shard instead (see ``_appenders``).
        """
        appender = self._appenders.get(-1)
        return appender._handle if appender is not None else None
