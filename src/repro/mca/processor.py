"""Multi-crossbar neuromorphic processor model.

Executes a *mapped* network: the functional behaviour comes from the plain
SNN simulator (placement never changes spike semantics), while this module
accounts for the communication the placement induces, using exactly the
packet rule the paper's PGO assumes (§IV-D):

    "the architecture sends only one network packet per crossbar target
    per neuron fire ... if neuron X targets both neurons Y and Z within
    crossbar j, only one packet should be generated per spike of X."

A packet whose source neuron lives in the target crossbar is *local* (it
never enters the chip router network); every other packet is *global*.

Packet accounting is precompiled: :class:`TrafficCounter` flattens the
(source neuron, target crossbar) pairs a placement induces into arrays
once, so every subsequent spike profile is weighted with a handful of
NumPy gathers instead of a nested Python loop — the shape repeated
per-sample evaluation (Fig. 9 error bands) actually has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..snn.network import Network
from ..snn.simulator import SimulationResult, Simulator
from .architecture import Architecture
from .noc import MeshNoC, hop_weighted_packets


@dataclass(frozen=True)
class TrafficReport:
    """Communication accounting for one simulated run."""

    total_spikes: int
    local_packets: int
    global_packets: int
    hop_packets: int  # global packets weighted by mesh hop distance
    max_link_load: int
    per_crossbar_packets: dict[int, int]  # destination crossbar -> packets

    @property
    def total_packets(self) -> int:
        return self.local_packets + self.global_packets


def target_crossbars(
    network: Network, assignment: Mapping[int, int]
) -> dict[int, set[int]]:
    """For each neuron, the set of crossbars hosting at least one successor.

    This is the runtime realization of the ILP's ``s[k, j]`` column for
    source ``k``: crossbar ``j`` receives ``k`` as an axonal input iff some
    successor of ``k`` is placed on ``j``.
    """
    targets: dict[int, set[int]] = {}
    for nid in network.neuron_ids():
        targets[nid] = {assignment[succ] for succ in network.successors(nid)}
    return targets


class TrafficCounter:
    """Per-(source, target-crossbar) packet pairs, flattened to arrays.

    Build once per (network, placement); :meth:`count` then weights any
    spike profile in O(sources) dict lookups plus O(pairs) vector math.
    """

    def __init__(self, network: Network, assignment: Mapping[int, int]) -> None:
        targets = target_crossbars(network, assignment)
        self.sources: tuple[int, ...] = tuple(
            nid for nid in network.neuron_ids() if targets[nid]
        )
        src_index = {nid: idx for idx, nid in enumerate(self.sources)}
        pair_src: list[int] = []
        pair_local: list[bool] = []
        pair_keys: list[tuple[int, int]] = []
        for nid in self.sources:
            home = assignment[nid]
            for dst in sorted(targets[nid]):
                pair_src.append(src_index[nid])
                local = dst == home
                pair_local.append(local)
                pair_keys.append((-1, -1) if local else (home, dst))
        self._pair_src = np.asarray(pair_src, dtype=np.int64)
        local_mask = np.asarray(pair_local, dtype=bool)
        self._src_local = self._pair_src[local_mask]
        self._src_global = self._pair_src[~local_mask]
        global_keys = [key for key in pair_keys if key != (-1, -1)]
        self.pairs: tuple[tuple[int, int], ...] = tuple(
            sorted(set(global_keys))
        )
        pair_pos = {key: pos for pos, key in enumerate(self.pairs)}
        self._global_pair_pos = np.asarray(
            [pair_pos[key] for key in global_keys], dtype=np.int64
        )

    def count(
        self, spike_counts: Mapping[int, int]
    ) -> tuple[int, int, dict[tuple[int, int], int]]:
        """(local, global, per-(src_tile, dst_tile)) packets for a profile."""
        if not self.sources:
            return 0, 0, {}
        fires = np.fromiter(
            (spike_counts.get(k, 0) for k in self.sources),
            dtype=np.int64,
            count=len(self.sources),
        )
        local = int(fires[self._src_local].sum())
        global_fires = fires[self._src_global]
        global_ = int(global_fires.sum())
        sums = np.zeros(len(self.pairs), dtype=np.int64)
        np.add.at(sums, self._global_pair_pos, global_fires)
        pair_counts = {
            pair: int(total)
            for pair, total in zip(self.pairs, sums.tolist())
            if total
        }
        return local, global_, pair_counts


def count_packets(
    network: Network,
    assignment: Mapping[int, int],
    spike_counts: Mapping[int, int],
) -> tuple[int, int, dict[tuple[int, int], int]]:
    """Aggregate (local, global, per-pair) packet counts from spike counts.

    Every spike of neuron ``k`` generates one packet per distinct target
    crossbar; the packet to ``k``'s own crossbar (if any) is local.  For
    repeated profiles over one placement, build a :class:`TrafficCounter`
    once instead.
    """
    return TrafficCounter(network, assignment).count(spike_counts)


def static_traffic(
    network: Network,
    assignment: Mapping[int, int],
    spike_counts: Mapping[int, int],
    noc: MeshNoC,
) -> TrafficReport:
    """Traffic report synthesized from a placement and a spike profile.

    The static sibling of :meth:`MappedProcessor.run`: instead of
    simulating, it expands per-neuron spike counts into packet counts over
    the placement (the same :class:`TrafficCounter` arithmetic the
    processor uses), then hop-weights the global packets over ``noc``.
    This is what sweep-scale consumers (the design-space explorer's energy
    objective) use — identical accounting, no simulator in the loop.

    ``noc`` is required: mesh geometry (and with it every hop count) is
    set by the architecture's *total* slot count, which a placement alone
    cannot reveal — pass ``MeshNoC(architecture.num_slots)`` to match
    :meth:`MappedProcessor.traffic_from_counts` exactly.
    """
    local, global_, pair_counts = TrafficCounter(network, assignment).count(
        spike_counts
    )
    return _assemble_report(
        noc, local, global_, pair_counts, sum(spike_counts.values())
    )


def _assemble_report(
    noc: MeshNoC,
    local: int,
    global_: int,
    pair_counts: dict[tuple[int, int], int],
    total_spikes: int,
) -> TrafficReport:
    """Hop-weight pair counts over the mesh and fold into one report."""
    hop_packets, link_load = hop_weighted_packets(noc, pair_counts)
    per_crossbar: dict[int, int] = {}
    for (_, dst), packets in pair_counts.items():
        per_crossbar[dst] = per_crossbar.get(dst, 0) + packets
    return TrafficReport(
        total_spikes=total_spikes,
        local_packets=local,
        global_packets=global_,
        hop_packets=hop_packets,
        max_link_load=link_load.max_link_load,
        per_crossbar_packets=per_crossbar,
    )


class MappedProcessor:
    """A network placed onto an architecture, ready to execute.

    ``engine`` selects the simulation engine (``"vector"`` by default,
    ``"reference"`` for the scalar specification loop; see
    :mod:`repro.snn.engine`).
    """

    def __init__(
        self,
        network: Network,
        assignment: Mapping[int, int],
        architecture: Architecture,
        engine: str | None = None,
    ) -> None:
        missing = set(network.neuron_ids()) - set(assignment)
        if missing:
            raise ValueError(f"assignment missing neurons {sorted(missing)[:5]}")
        bad = {j for j in assignment.values() if not 0 <= j < architecture.num_slots}
        if bad:
            raise ValueError(f"assignment targets unknown crossbars {sorted(bad)}")
        self.network = network
        self.assignment = dict(assignment)
        self.architecture = architecture
        self.noc = MeshNoC(architecture.num_slots)
        self._simulator = Simulator(network, engine=engine)
        self._traffic = TrafficCounter(network, self.assignment)

    def run(
        self,
        duration: int,
        input_spikes: Mapping[int, list[int]] | None = None,
    ) -> tuple[SimulationResult, TrafficReport]:
        """Simulate and account for the induced crossbar traffic."""
        sim_result = self._simulator.run(duration, input_spikes=input_spikes)
        report = self.traffic_from_counts(sim_result.spike_counts)
        return sim_result, report

    def traffic_from_counts(self, spike_counts: Mapping[int, int]) -> TrafficReport:
        """Traffic report for externally supplied per-neuron spike counts."""
        local, global_, pair_counts = self._traffic.count(spike_counts)
        return _assemble_report(
            self.noc, local, global_, pair_counts, sum(spike_counts.values())
        )
