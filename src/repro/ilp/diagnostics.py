"""Infeasibility diagnosis: irreducible infeasible subsystems (IIS).

When a mapping model is infeasible (pool too small, fan-in wider than any
crossbar after freezing, over-tight area budget), the raw solver verdict
is just "infeasible".  :func:`find_iis` shrinks the constraint set to an
*irreducible* infeasible core via the classic deletion filter: drop each
constraint in turn; if the rest stays infeasible, the constraint was not
needed to explain the conflict.  The survivors — typically a handful of
named rows like ``place_7`` + ``outputs_3`` — tell the user *which*
requirement cannot be met.

Deletion filtering costs one solve per constraint, so it is meant for the
moderate models where a human will read the answer, not for production
solving.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import Constraint
from .highs_backend import HighsBackend, HighsOptions
from .model import Model
from .result import SolveStatus


@dataclass(frozen=True)
class IisResult:
    """The irreducible core plus accounting."""

    core: list[Constraint]
    solves_used: int

    def names(self) -> list[str]:
        return [c.name or repr(c) for c in self.core]


def _rebuild(model: Model, keep: list[Constraint]) -> Model:
    """A copy of ``model`` containing only the ``keep`` constraints."""
    clone = Model(f"{model.name}-iis")
    for var in model.variables:
        clone.add_var(var.name, var.lb, var.ub, var.vartype)
    for con in keep:
        clone.add(Constraint(con.expr, con.sense, con.name))
    clone.minimize(model.objective)
    return clone


def _is_infeasible(model: Model, time_limit: float) -> bool:
    result = HighsBackend(HighsOptions(time_limit=time_limit)).solve(model)
    return result.status is SolveStatus.INFEASIBLE


def find_iis(
    model: Model,
    time_limit_per_solve: float = 5.0,
    max_constraints: int = 2000,
) -> IisResult:
    """Deletion-filter an infeasible model down to an irreducible core.

    Raises ``ValueError`` if the model is actually feasible, or if it has
    more than ``max_constraints`` rows (the filter would be too slow).
    """
    if model.num_constraints > max_constraints:
        raise ValueError(
            f"model has {model.num_constraints} constraints; deletion "
            f"filtering is capped at {max_constraints}"
        )
    solves = 1
    if not _is_infeasible(model, time_limit_per_solve):
        raise ValueError("model is feasible; nothing to diagnose")

    working = list(model.constraints)
    index = 0
    while index < len(working):
        candidate = working[:index] + working[index + 1:]
        solves += 1
        if _is_infeasible(_rebuild(model, candidate), time_limit_per_solve):
            # Still infeasible without it: the constraint is not needed.
            working = candidate
        else:
            index += 1  # needed; keep and move on
    return IisResult(core=working, solves_used=solves)


def explain_infeasibility(
    model: Model, time_limit_per_solve: float = 5.0
) -> str:
    """Human-readable one-paragraph infeasibility explanation."""
    try:
        iis = find_iis(model, time_limit_per_solve)
    except ValueError as exc:
        return f"no diagnosis: {exc}"
    names = ", ".join(iis.names())
    return (
        f"{len(iis.core)} constraint(s) jointly unsatisfiable "
        f"(found in {iis.solves_used} solves): {names}"
    )
