"""Fig. 7 bench: area/SNU evolution for network A, homogeneous MCA.

Shape: the frontier's areas descend over solver time, every SNU re-opt is
no worse than its area-optimal basis, and the hypothetical one-neuron-
per-crossbar bound dominates all achieved areas.
"""

from bench_config import SMALL, once
from repro.experiments.common import homo_problem
from repro.experiments.fig7 import evolution_frontier, hypothetical_bound
from repro.experiments.networks import paper_network


def test_benchmark_fig7(benchmark):
    problem = homo_problem(paper_network("A", scale=SMALL.scale), SMALL)

    points = once(benchmark, lambda: evolution_frontier(problem, SMALL))
    assert points, "the greedy warm start guarantees at least one incumbent"
    areas = [p.area for p in points]
    assert areas == sorted(areas, reverse=True)
    for p in points:
        assert p.routes_snu_opt <= p.routes_area_opt
    bound_area, _ = hypothetical_bound(problem)
    # One-neuron-per-16x16 is strictly worse than any real packing here.
    assert bound_area >= max(areas)
