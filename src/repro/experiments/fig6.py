"""Fig. 6 reproduction: SNU route optimization, heterogeneous target.

Identical protocol to Fig. 5 over the Table-II heterogeneous pool; the
paper observes 11.9-26.4% global-route reduction at unchanged area.
"""

from __future__ import annotations

from .common import ExhibitResult, het_problem
from .fig5 import snu_rows
from .networks import NETWORK_NAMES, paper_network
from .runner import ExperimentConfig, format_table


def run_fig6(config: ExperimentConfig) -> ExhibitResult:
    named_problems = [
        (name, het_problem(paper_network(name, scale=config.scale), config))
        for name in NETWORK_NAMES
    ]
    rows = snu_rows(named_problems, config)
    table_rows = [
        (
            r.network,
            r.area,
            r.routes_before,
            r.routes_after,
            round(r.improvement, 1),
        )
        for r in rows
    ]
    headers = ["Net", "Area", "Global routes (area-opt)", "Global routes (SNU)", "Gain %"]
    note = "paper shape: 11.9-26.4% route reduction at unchanged area (heterogeneous)"
    return ExhibitResult(
        report=format_table(headers, table_rows) + "\n" + note,
        rows=table_rows,
    )
