"""Tests for the deterministic clock and the LP-rounding warm start."""

import pytest

from repro.ilp.dettime import DeterministicClock
from repro.ilp.expr import lin_sum
from repro.ilp.greedy_rounding import lp_rounding_warm_start
from repro.ilp.model import Model


class TestDeterministicClock:
    def test_accumulates(self):
        clock = DeterministicClock()
        clock.charge("a", 2.0)
        clock.charge("b", 3.0)
        assert clock.now() == pytest.approx(5.0)

    def test_breakdown_by_kind(self):
        clock = DeterministicClock()
        clock.charge("lp", 1.0)
        clock.charge("lp", 2.0)
        assert clock.breakdown() == {"lp": 3.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicClock().charge("a", -1.0)

    def test_lp_charge_includes_setup(self):
        clock = DeterministicClock()
        clock.charge_lp(iterations=10, nnz=1000)
        parts = clock.breakdown()
        assert parts["lp_iterations"] == pytest.approx(10.0)
        assert parts["lp_setup"] == pytest.approx(1.0)

    def test_node_and_heuristic_charges(self):
        clock = DeterministicClock()
        clock.charge_node()
        clock.charge_heuristic(num_vars=4)
        assert clock.now() == pytest.approx(5.0 + 2.0)


class TestLpRoundingWarmStart:
    def test_finds_feasible_point(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add(lin_sum(xs) >= 2)
        m.minimize(lin_sum(xs))
        values = lp_rounding_warm_start(m)
        assert values is not None
        assert m.check_feasible(values) == []

    def test_infeasible_returns_none(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 0.4)
        m.add(x <= 0.6)
        m.minimize(x)
        assert lp_rounding_warm_start(m) is None

    def test_already_integral_lp(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add(x + y == 2)  # forces both to 1 even in the relaxation
        m.minimize(x)
        values = lp_rounding_warm_start(m)
        assert values == {"x": 1.0, "y": 1.0}
