"""Block-API equivalence: columnar and per-expression construction agree.

Property suite for the acceptance criterion that the two construction
styles are indistinguishable downstream: for random small models built
through *both* the per-expression path (``Model.add`` with operator
exprs) and the block path (``Model.add_block`` with COO arrays),

- ``Model.lower()`` produces equivalent (here: exactly equal)
  ``MatrixForm``s,
- ``objective_of`` / ``check_feasible`` agree with direct matrix-form
  evaluation on random assignments, and
- HiGHS returns bit-identical status + objective for both builds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.expr import Sense, VarType, lin_sum
from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.ilp.model import Model

pytestmark = pytest.mark.ilp

SENSES = [Sense.LE, Sense.GE, Sense.EQ]

coef_st = st.integers(-4, 4).filter(lambda c: c != 0).map(float)
rhs_st = st.integers(-6, 6).map(float)


@st.composite
def random_spec(draw):
    """A random model spec: vars, rows (unique cols per row), objective."""
    num_vars = draw(st.integers(1, 7))
    vartypes = draw(
        st.lists(
            st.sampled_from([VarType.BINARY, VarType.INTEGER, VarType.CONTINUOUS]),
            min_size=num_vars,
            max_size=num_vars,
        )
    )
    num_rows = draw(st.integers(0, 8))
    rows = []
    for _ in range(num_rows):
        cols = draw(
            st.lists(
                st.integers(0, num_vars - 1), min_size=1, max_size=num_vars, unique=True
            )
        )
        coefs = draw(
            st.lists(coef_st, min_size=len(cols), max_size=len(cols))
        )
        rows.append((cols, coefs, draw(st.sampled_from(SENSES)), draw(rhs_st)))
    obj_cols = draw(
        st.lists(st.integers(0, num_vars - 1), min_size=0, max_size=num_vars, unique=True)
    )
    obj_coefs = draw(st.lists(coef_st, min_size=len(obj_cols), max_size=len(obj_cols)))
    maximize = draw(st.booleans())
    return vartypes, rows, (obj_cols, obj_coefs, draw(rhs_st), maximize)


def _add_variables(model: Model, vartypes) -> list:
    out = []
    for idx, vartype in enumerate(vartypes):
        if vartype is VarType.BINARY:
            out.append(model.add_binary(f"v{idx}"))
        elif vartype is VarType.INTEGER:
            out.append(model.add_integer(f"v{idx}", 0, 3))
        else:
            out.append(model.add_continuous(f"v{idx}", -2.0, 2.0))
    return out


def _set_objective(model: Model, variables, objective) -> None:
    obj_cols, obj_coefs, constant, maximize = objective
    expr = lin_sum(
        [c * variables[i] for i, c in zip(obj_cols, obj_coefs)] + [constant]
    )
    (model.maximize if maximize else model.minimize)(expr)


def build_expression(spec) -> Model:
    vartypes, rows, objective = spec
    model = Model("expr")
    variables = _add_variables(model, vartypes)
    for pos, (cols, coefs, sense, rhs) in enumerate(rows):
        lhs = lin_sum(c * variables[i] for i, c in zip(cols, coefs))
        if sense is Sense.LE:
            con = lhs <= rhs
        elif sense is Sense.GE:
            con = lhs >= rhs
        else:
            con = lhs == rhs
        model.add(con, name=f"row_{pos}")
    _set_objective(model, variables, objective)
    return model


def build_block(spec) -> Model:
    vartypes, rows, objective = spec
    model = Model("block")
    variables = _add_variables(model, vartypes)
    if rows:
        r_idx, c_idx, data, senses, rhs = [], [], [], [], []
        for pos, (cols, coefs, sense, rhs_val) in enumerate(rows):
            r_idx += [pos] * len(cols)
            c_idx += cols
            data += coefs
            senses.append(sense)
            rhs.append(rhs_val)
        model.add_block(
            np.array(r_idx),
            np.array(c_idx),
            np.array(data),
            np.array([{Sense.LE: 0, Sense.GE: 1, Sense.EQ: 2}[s] for s in senses]),
            np.array(rhs),
            num_rows=len(rows),
            name=[f"row_{pos}" for pos in range(len(rows))],
        )
    _set_objective(model, variables, objective)
    return model


def assert_forms_equal(fa, fb) -> None:
    np.testing.assert_array_equal(fa.c, fb.c)
    np.testing.assert_array_equal(fa.row_lb, fb.row_lb)
    np.testing.assert_array_equal(fa.row_ub, fb.row_ub)
    np.testing.assert_array_equal(fa.var_lb, fb.var_lb)
    np.testing.assert_array_equal(fa.var_ub, fb.var_ub)
    np.testing.assert_array_equal(fa.integrality, fb.integrality)
    assert fa.offset == fb.offset
    assert fa.sign == fb.sign
    assert fa.a_matrix.shape == fb.a_matrix.shape
    assert abs(fa.a_matrix - fb.a_matrix).nnz == 0


@settings(max_examples=60, deadline=None)
@given(spec=random_spec())
def test_lowering_identical(spec):
    form_expr = build_expression(spec).lower()
    form_block = build_block(spec).lower()
    assert_forms_equal(form_expr, form_block)


@settings(max_examples=40, deadline=None)
@given(spec=random_spec(), data=st.data())
def test_evaluation_matches_matrix_form(spec, data):
    model_expr = build_expression(spec)
    model_block = build_block(spec)
    form = model_expr.lower()
    n = form.num_vars
    x = np.array(
        data.draw(
            st.lists(
                st.integers(-3, 3).map(float), min_size=n, max_size=n
            )
        )
    )
    # objective_of (either input style) must equal matrix-form evaluation.
    expected_obj = form.sign * (float(form.c @ x) + form.offset)
    assert model_expr.objective_of(x) == pytest.approx(expected_obj, abs=1e-9)
    assert model_block.objective_of(x) == pytest.approx(expected_obj, abs=1e-9)
    assert model_block.objective_of(model_block.values_dict(x)) == pytest.approx(
        expected_obj, abs=1e-9
    )
    # check_feasible must agree with a direct matrix-form check ...
    tol = 1e-6
    ax = form.a_matrix @ x
    matrix_feasible = bool(
        np.all(x >= form.var_lb - tol)
        and np.all(x <= form.var_ub + tol)
        and np.all(np.abs(x[form.integrality > 0] - np.round(x[form.integrality > 0])) <= tol)
        and np.all(ax <= form.row_ub + tol)
        and np.all(ax >= form.row_lb - tol)
    )
    assert (model_expr.check_feasible(x) == []) == matrix_feasible
    # ... and both construction styles must report identical violations.
    assert model_expr.check_feasible(x) == model_block.check_feasible(x)
    assert model_expr.check_feasible(model_expr.values_dict(x)) == model_block.check_feasible(x)


def test_add_block_does_not_alias_caller_buffers():
    """Mutating input arrays after add_block must not change the model."""
    model = Model("alias")
    model.add_binary("a")
    model.add_binary("b")
    rows = np.array([0, 0], dtype=np.int64)
    cols = np.array([0, 1], dtype=np.int64)
    coefs = np.array([1.0, -1.0])
    rhs = np.array([1.0])
    senses = np.array([0], dtype=np.int8)
    model.add_block(rows, cols, coefs, senses, rhs, num_rows=1)
    coefs[:] = 99.0
    cols[:] = 0
    rhs[:] = -5.0
    senses[:] = 2
    system = model.row_system()
    assert system.a_matrix.toarray().tolist() == [[1.0, -1.0]]
    assert system.rhs.tolist() == [1.0]
    assert system.sense_code.tolist() == [0]


@settings(max_examples=25, deadline=None)
@given(spec=random_spec())
def test_solver_results_bit_identical(spec):
    """HiGHS receives identical inputs from both builds, so status and
    objective must match bit for bit (the acceptance criterion)."""
    backend = HighsBackend(HighsOptions(time_limit=5.0))
    res_expr = backend.solve(build_expression(spec))
    res_block = backend.solve(build_block(spec))
    assert res_expr.status is res_block.status
    assert res_expr.objective == res_block.objective  # exact, not approx
