"""Evaluation harness: one module per paper exhibit (Tables I-II,
Figs. 2-3 and 5-9) plus the shared runner/CLI."""

from .common import ExhibitResult, OptimizedMapping
from .networks import (
    NETWORK_NAMES,
    PAPER_NETWORK_SPECS,
    all_paper_networks,
    paper_network,
)
from .runner import EXHIBITS, ExperimentConfig, format_table, run_exhibit

__all__ = [
    "EXHIBITS",
    "ExhibitResult",
    "ExperimentConfig",
    "NETWORK_NAMES",
    "OptimizedMapping",
    "PAPER_NETWORK_SPECS",
    "all_paper_networks",
    "format_table",
    "paper_network",
    "run_exhibit",
]
