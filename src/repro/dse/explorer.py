"""Scenario evaluation plumbing shared by every search driver.

The :class:`Explorer` turns scenarios into scored design points at two
cost tiers:

- :meth:`evaluate_greedy` — greedy first-fit placement only, no ILP.
  Milliseconds per scenario; the adaptive driver uses these bounds to
  decide where real solver budget is worth spending.
- :meth:`evaluate_ilp` — the full staged mapping pipeline through
  :class:`~repro.batch.engine.BatchMapper` (``jobs`` worker processes,
  optional solver portfolio).  Scenarios are solved in *waves* ordered
  by stage-prefix length, and each solved placement seeds the warm
  start of later waves that map the same (network, pool) instance —
  warm starts flow between neighboring scenarios exactly like they flow
  between pipeline stages.

Both tiers are **resumable**: every finished evaluation lands in the
:class:`~repro.dse.store.RunStore` keyed by scenario fingerprint, and a
scenario whose fingerprint already has a successful entry at the
requested tier is rehydrated from the store instead of re-solved.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from ..batch.cache import ResultCache
from ..batch.engine import BatchMapper
from ..mapping.greedy import greedy_first_fit
from ..mapping.problem import MappingProblem
from .objectives import ObjectivePoint, evaluate_objectives, objective_matrix
from .pareto import hypervolume, nondominated_mask, reference_point
from .scenario import Scenario, ScenarioRegistry
from .store import TIER_GREEDY, TIER_ILP, RunEntry, RunStore


@dataclass
class ScenarioResult:
    """One scenario's scored outcome at some tier."""

    scenario: Scenario
    fingerprint: str
    tier: str
    status: str
    objectives: ObjectivePoint | None = None
    assignment: dict[int, int] | None = None
    solves: int = 0  # ILP solves actually executed for this result
    wall_time: float = 0.0
    error: str | None = None
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def entry(self, meta: dict | None = None) -> RunEntry:
        return RunEntry(
            fingerprint=self.fingerprint,
            tier=self.tier,
            scenario=self.scenario.payload(),
            status=self.status,
            objectives=self.objectives.as_dict() if self.objectives else None,
            assignment=(
                {str(i): j for i, j in self.assignment.items()}
                if self.assignment is not None
                else None
            ),
            solves=self.solves,
            wall_time=self.wall_time,
            error=self.error,
            meta=meta or {},
        )


class Explorer:
    """Evaluates scenarios through the batch engine, store-first."""

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        store: RunStore | None = None,
        jobs: int = 1,
        portfolio: bool = False,
        cache: ResultCache | None = None,
        time_limit: float | None = 10.0,
        mapper: BatchMapper | None = None,
    ) -> None:
        self.registry = registry if registry is not None else ScenarioRegistry()
        # `store or ...` would discard an *empty* persistent store (its
        # __len__ makes it falsy) — the resume path depends on identity.
        self.store = store if store is not None else RunStore()
        # One BatchMapper for the explorer's whole life: the mapping
        # service hands many client jobs through a single explorer, and
        # they must share one engine + result cache.  An explicit
        # ``mapper`` wins over the (jobs, portfolio, cache) knobs.
        self.mapper = (
            mapper
            if mapper is not None
            else BatchMapper(jobs=jobs, portfolio=portfolio, cache=cache)
        )
        self.time_limit = time_limit
        #: (network_fp, arch_fp) -> best known assignment, fed to later
        #: waves as warm starts.
        self._seeds: dict[tuple[str, str], dict[int, int]] = {}

    # The mapper is the single source of truth for engine configuration;
    # these are read-only views so stale copies cannot drift from it.
    @property
    def jobs(self) -> int:
        return self.mapper.jobs

    @property
    def portfolio(self) -> bool:
        return self.mapper.portfolio

    @property
    def cache(self) -> ResultCache | None:
        return self.mapper.cache

    # ------------------------------------------------------------------
    def _safe_fingerprint(self, scenario: Scenario) -> tuple[str, str | None]:
        """(fingerprint, construction error) for one scenario.

        Fingerprinting constructs the scenario's network and pool, which
        can fail (unknown twin name, fan-in wider than every crossbar).
        A failed construction still yields a deterministic store key —
        the digest of the declarative payload — so the error is recorded
        per-scenario instead of aborting the whole sweep.
        """
        from ..mapping.fingerprint import digest

        try:
            return self.registry.fingerprint(scenario), None
        except Exception as exc:
            return (
                "invalid-" + digest(scenario.payload()),
                f"{type(exc).__name__}: {exc}",
            )

    def _construction_error(
        self,
        scenario: Scenario,
        fingerprint: str,
        tier: str,
        error: str,
        meta: dict | None,
    ) -> ScenarioResult:
        result = ScenarioResult(
            scenario=scenario,
            fingerprint=fingerprint,
            tier=tier,
            status="error",
            error=error,
        )
        self.store.record(result.entry(meta))
        return result

    def _problem_key(self, scenario: Scenario) -> tuple[str, str]:
        from ..mapping.fingerprint import (
            architecture_fingerprint,
            network_fingerprint,
        )

        return (
            network_fingerprint(self.registry.network(scenario.workload)),
            architecture_fingerprint(self.registry.pool(scenario)),
        )

    def _noc(self, scenario: Scenario):
        return scenario.architecture.noc(self.registry.pool(scenario))

    def _score(self, scenario: Scenario, mapping) -> ObjectivePoint:
        return evaluate_objectives(
            mapping,
            self.registry.profile(scenario.workload),
            noc=self._noc(scenario),
        )

    def _from_store(
        self, scenario: Scenario, fingerprint: str, tier: str
    ) -> ScenarioResult | None:
        entry = self.store.get(fingerprint, tier)
        if entry is None or not entry.ok or entry.objectives is None:
            return None
        assignment = (
            {int(i): int(j) for i, j in entry.assignment.items()}
            if entry.assignment
            else None
        )
        return ScenarioResult(
            scenario=scenario,
            fingerprint=fingerprint,
            tier=tier,
            status="ok",
            objectives=ObjectivePoint.from_dict(entry.objectives),
            assignment=assignment,
            solves=0,
            wall_time=0.0,
            from_store=True,
        )

    # ------------------------------------------------------------------
    def evaluate_greedy(
        self, scenarios: list[Scenario], meta: dict | None = None
    ) -> list[ScenarioResult]:
        """Cheap bound per scenario: greedy placement, no ILP."""
        results: list[ScenarioResult] = []
        for scenario in scenarios:
            fingerprint, bad = self._safe_fingerprint(scenario)
            if bad is not None:
                results.append(
                    self._construction_error(
                        scenario, fingerprint, TIER_GREEDY, bad, meta
                    )
                )
                continue
            resumed = self._from_store(scenario, fingerprint, TIER_GREEDY)
            if resumed is not None:
                results.append(resumed)
                continue
            start = time.perf_counter()
            try:
                problem = MappingProblem(
                    self.registry.network(scenario.workload),
                    self.registry.pool(scenario),
                )
                mapping = greedy_first_fit(problem)
                result = ScenarioResult(
                    scenario=scenario,
                    fingerprint=fingerprint,
                    tier=TIER_GREEDY,
                    status="ok",
                    objectives=self._score(scenario, mapping),
                    assignment=dict(mapping.assignment),
                    wall_time=time.perf_counter() - start,
                )
            except Exception as exc:
                result = ScenarioResult(
                    scenario=scenario,
                    fingerprint=fingerprint,
                    tier=TIER_GREEDY,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_time=time.perf_counter() - start,
                )
            self.store.record(result.entry(meta))
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def evaluate_ilp(
        self,
        scenarios: list[Scenario],
        time_limit: float | None = None,
        meta: dict | None = None,
        should_cancel=None,
        solver_specs=None,
    ) -> list[ScenarioResult]:
        """Full pipeline evaluation, store-first, in warm-start waves.

        Scenarios already answered in the store are returned without a
        solve; the rest run through :class:`BatchMapper`, shortest stage
        prefix first, so an ``area`` solution seeds the ``area+snu``
        scenario of the same instance in the next wave.

        ``should_cancel`` is polled at job boundaries inside the batch
        engine (see :meth:`BatchMapper.map_all`); cancelled scenarios are
        recorded as errors, never as answers.

        ``solver_specs`` (a tuple of :class:`~repro.ilp.solve.SolverSpec`)
        overrides the portfolio arm composition for every job of this
        call — the adaptive driver's per-rung fidelity knob.  It only
        takes effect when the mapper races portfolios, and it changes the
        job fingerprints, so rungs tuned differently cache separately.
        """
        limit = self.time_limit if time_limit is None else time_limit
        fingerprints: list[str] = []
        by_fingerprint: dict[str, ScenarioResult] = {}
        pending: list[tuple[Scenario, str]] = []
        for scenario in scenarios:
            fingerprint, bad = self._safe_fingerprint(scenario)
            fingerprints.append(fingerprint)
            if fingerprint in by_fingerprint or any(
                fp == fingerprint for _, fp in pending
            ):
                continue  # duplicate spelling of the same instance
            if bad is not None:
                by_fingerprint[fingerprint] = self._construction_error(
                    scenario, fingerprint, TIER_ILP, bad, meta
                )
                continue
            resumed = self._from_store(scenario, fingerprint, TIER_ILP)
            if resumed is not None:
                by_fingerprint[fingerprint] = resumed
                if resumed.assignment:
                    self._seeds.setdefault(
                        self._problem_key(scenario), resumed.assignment
                    )
            else:
                pending.append((scenario, fingerprint))

        waves: dict[int, list[tuple[Scenario, str]]] = {}
        for scenario, fingerprint in pending:
            waves.setdefault(len(scenario.formulation.stages), []).append(
                (scenario, fingerprint)
            )
        mapper = self.mapper
        for depth in sorted(waves):
            wave = waves[depth]
            jobs = []
            built: list[tuple[Scenario, str]] = []
            for scenario, fingerprint in wave:
                seed = self._seeds.get(self._problem_key(scenario))
                try:
                    # Building the job simulates the workload's spike
                    # profile; record a failure against the scenario
                    # rather than aborting the wave's siblings.
                    job = self.registry.to_job(
                        scenario, time_limit=limit, initial_assignment=seed
                    )
                    if solver_specs is not None:
                        job = dataclasses.replace(
                            job, solver_specs=tuple(solver_specs)
                        )
                except Exception as exc:
                    by_fingerprint[fingerprint] = self._construction_error(
                        scenario,
                        fingerprint,
                        TIER_ILP,
                        f"{type(exc).__name__}: {exc}",
                        meta,
                    )
                    continue
                jobs.append(job)
                built.append((scenario, fingerprint))
            if not jobs:
                continue
            # Batch job names must be unique; scenario names already are
            # within one space, but guard against collisions from
            # hand-built scenario lists.
            names = [job.name for job in jobs]
            if len(set(names)) != len(names):
                jobs = [
                    type(job)(**{**job.__dict__, "name": f"{job.name}#{idx}"})
                    for idx, job in enumerate(jobs)
                ]
            batch = mapper.map_all(jobs, should_cancel=should_cancel)
            for (scenario, fingerprint), record in zip(built, batch.records):
                result = self._result_from_record(scenario, fingerprint, record)
                self.store.record(result.entry(meta))
                by_fingerprint[fingerprint] = result
                if result.ok and result.assignment:
                    self._seeds[self._problem_key(scenario)] = result.assignment
        return [by_fingerprint[fp] for fp in fingerprints]

    def _result_from_record(
        self, scenario: Scenario, fingerprint: str, record
    ) -> ScenarioResult:
        if not record.ok:
            return ScenarioResult(
                scenario=scenario,
                fingerprint=fingerprint,
                tier=TIER_ILP,
                status="error",
                error=record.error,
                wall_time=record.wall_time,
            )
        mapping = record.final().mapping
        solves = (
            0
            if record.from_cache
            else sum(
                1
                for stage in record.stages.values()
                if stage.solve_result is not None
            )
        )
        return ScenarioResult(
            scenario=scenario,
            fingerprint=fingerprint,
            tier=TIER_ILP,
            status="ok",
            objectives=self._score(scenario, mapping),
            assignment=dict(mapping.assignment),
            solves=solves,
            wall_time=record.wall_time,
        )


# ----------------------------------------------------------------------
@dataclass
class ExplorationResult:
    """A finished sweep: every scored scenario plus driver accounting."""

    results: list[ScenarioResult]
    driver: str
    ilp_solves: int = 0
    greedy_evaluations: int = 0
    resumed: int = 0
    pruned: tuple[str, ...] = ()  # fingerprints skipped by the driver
    wall_time: float = 0.0
    meta: dict = field(default_factory=dict)

    def ok_results(self) -> list[ScenarioResult]:
        return [r for r in self.results if r.ok and r.objectives is not None]

    def frontier(self) -> list[ScenarioResult]:
        """The non-dominated scored scenarios (area, energy, latency)."""
        scored = self.ok_results()
        if not scored:
            return []
        mask = nondominated_mask(
            objective_matrix([r.objectives for r in scored])
        )
        return [r for r, keep in zip(scored, mask) if keep]

    def objective_points(self) -> np.ndarray:
        return objective_matrix([r.objectives for r in self.ok_results()])

    def hypervolume(self, ref=None) -> float:
        points = self.objective_points()
        if points.size == 0:
            return 0.0
        reference = ref if ref is not None else reference_point(points)
        return hypervolume(points, reference)

    def report(self) -> str:
        """Fixed-width frontier table (the sweep's terminal 'figure')."""
        from ..experiments.runner import format_table

        frontier = sorted(
            self.frontier(), key=lambda r: r.objectives.area  # type: ignore[union-attr]
        )
        frontier_keys = {r.fingerprint for r in frontier}
        rows = []
        for result in self.ok_results():
            obj = result.objectives
            assert obj is not None
            rows.append(
                (
                    "*" if result.fingerprint in frontier_keys else "",
                    result.scenario.name,
                    round(obj.area, 1),
                    round(obj.energy, 1),
                    int(obj.latency),
                    result.solves,
                    "store" if result.from_store else "",
                )
            )
        rows.sort(key=lambda row: (row[0] != "*", row[2]))
        header = [
            "front",
            "scenario",
            "area",
            "energy_pj",
            "latency",
            "solves",
            "src",
        ]
        lines = [format_table(header, rows)]
        lines.append(
            f"\n{len(frontier)}/{len(self.ok_results())} non-dominated; "
            f"{self.ilp_solves} ILP solve(s), {self.resumed} resumed, "
            f"{len(self.pruned)} pruned [{self.driver}]"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "driver": self.driver,
            "ilp_solves": self.ilp_solves,
            "greedy_evaluations": self.greedy_evaluations,
            "resumed": self.resumed,
            "pruned": len(self.pruned),
            "wall_time": self.wall_time,
            "hypervolume": self.hypervolume(),
            "evaluated": len(self.ok_results()),
            "frontier": [
                {
                    "scenario": r.scenario.name,
                    "fingerprint": r.fingerprint,
                    **(r.objectives.as_dict() if r.objectives else {}),
                }
                for r in sorted(
                    self.frontier(),
                    key=lambda r: r.objectives.area,  # type: ignore[union-attr]
                )
            ],
            "meta": self.meta,
        }
