"""Per-client admission control: token buckets, quotas, HTTP 429 path."""

from __future__ import annotations

import threading

import pytest

from repro.batch.cache import ResultCache
from repro.dse.explorer import Explorer
from repro.service.admission import AdmissionController, AdmissionDenied
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import MappingService, make_server, run_server

pytestmark = pytest.mark.service


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle_with_exact_retry_after(self):
        clock = FakeClock()
        control = AdmissionController(rate=1.0, burst=2.0, clock=clock)
        control.admit("a")
        control.admit("a")
        with pytest.raises(AdmissionDenied) as info:
            control.admit("a")
        assert info.value.reason == "rate"
        assert info.value.client == "a"
        # An empty bucket refills at 1 token/s: the hint is exact.
        assert info.value.retry_after == pytest.approx(1.0)

    def test_refill_restores_admission(self):
        clock = FakeClock()
        control = AdmissionController(rate=2.0, burst=1.0, clock=clock)
        control.admit("a")
        with pytest.raises(AdmissionDenied):
            control.admit("a")
        clock.advance(0.5)  # one token at 2/s
        control.admit("a")

    def test_buckets_are_per_client(self):
        control = AdmissionController(rate=1.0, burst=1.0, clock=FakeClock())
        control.admit("greedy")
        with pytest.raises(AdmissionDenied):
            control.admit("greedy")
        control.admit("quiet")  # untouched bucket, sails through

    def test_no_rate_means_unlimited(self):
        control = AdmissionController(clock=FakeClock())
        for _ in range(100):
            control.admit("a")
        assert control.in_flight("a") == 100


class TestInFlightQuota:
    def test_cap_then_release_reopens(self):
        control = AdmissionController(max_in_flight=2, clock=FakeClock())
        control.admit("a")
        control.admit("a")
        with pytest.raises(AdmissionDenied) as info:
            control.admit("a")
        assert info.value.reason == "in_flight"
        assert info.value.retry_after is None  # service fills the hint
        control.release("a")
        control.admit("a")

    def test_restore_charges_quota_but_not_counters(self):
        control = AdmissionController(max_in_flight=1, clock=FakeClock())
        control.restore("a")  # a replayed unfinished job
        with pytest.raises(AdmissionDenied):
            control.admit("a")
        snapshot = control.snapshot()
        assert snapshot["clients"]["a"]["admitted"] == 0
        assert snapshot["clients"]["a"]["in_flight"] == 1

    def test_release_never_goes_negative(self):
        control = AdmissionController(clock=FakeClock())
        control.release("never-admitted")
        assert control.in_flight("never-admitted") == 0


class TestClientCardinality:
    def test_idle_clients_evicted_at_the_cap(self):
        control = AdmissionController(max_clients=3, clock=FakeClock())
        for index in range(10):
            control.admit(f"spoof-{index}")
            control.release(f"spoof-{index}")
        assert len(control.snapshot()["clients"]) <= 3

    def test_clients_with_in_flight_survive_eviction(self):
        control = AdmissionController(max_clients=2, clock=FakeClock())
        control.admit("busy")  # stays in flight
        for index in range(10):
            control.admit(f"spoof-{index}")
            control.release(f"spoof-{index}")
        assert control.in_flight("busy") == 1

    def test_snapshot_totals_sum_per_client_rows(self):
        control = AdmissionController(
            rate=1.0, burst=1.0, max_in_flight=5, clock=FakeClock()
        )
        control.admit("a")
        with pytest.raises(AdmissionDenied):
            control.admit("a")
        control.admit("b")
        snapshot = control.snapshot()
        clients = snapshot["clients"]
        assert snapshot["admitted"] == sum(c["admitted"] for c in clients.values())
        assert snapshot["throttled"] == sum(
            c["throttled"] for c in clients.values()
        )
        assert snapshot["admitted"] == 2
        assert snapshot["throttled"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(rate=0)
        with pytest.raises(ValueError):
            AdmissionController(burst=0.5)
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_clients=0)


@pytest.fixture
def throttled_service():
    """A live daemon whose clients get one submission each, ever."""
    explorer = Explorer(cache=ResultCache(), time_limit=5.0)
    service = MappingService(
        explorer,
        admission=AdmissionController(rate=0.001, burst=1.0),
    )
    server = make_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=run_server, args=(service, server), daemon=True)
    thread.start()
    try:
        yield service, port
    finally:
        server.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestAdmissionOverHTTP:
    def test_greedy_client_throttled_quiet_client_sails(
        self, throttled_service, tiny_scenario
    ):
        service, port = throttled_service
        url = f"http://127.0.0.1:{port}"
        greedy = ServiceClient(url, timeout=30.0, client="greedy")
        quiet = ServiceClient(url, timeout=30.0, client="quiet")

        first = greedy.submit(scenarios=[tiny_scenario], tier="greedy")
        assert first["client"] == "greedy"
        with pytest.raises(ServiceError) as info:
            greedy.submit(scenarios=[tiny_scenario], tier="greedy")
        assert info.value.status == 429
        assert info.value.retry_after is not None
        assert info.value.retry_after >= 1
        # The 429 is per-client backpressure: another identity goes through.
        assert quiet.submit(scenarios=[tiny_scenario], tier="greedy")["id"]

        metrics = quiet.metrics()
        admission = metrics["admission"]
        assert admission["clients"]["greedy"]["throttled"] == 1
        assert admission["clients"]["quiet"]["admitted"] == 1
        assert metrics["admission_throttled"] == 1
        health = quiet.health()
        assert health["admission"]["throttled"] == 1
        assert set(health["lanes"]) == {"high", "normal", "batch"}

    def test_invalid_client_header_is_a_400(self, throttled_service, tiny_scenario):
        _, port = throttled_service
        bad = ServiceClient(
            f"http://127.0.0.1:{port}", timeout=30.0, client="bad client!"
        )
        with pytest.raises(ServiceError) as info:
            bad.submit(scenarios=[tiny_scenario], tier="greedy")
        assert info.value.status == 400
        assert "client" in str(info.value)
