"""Rude-client hardening: body caps (413) and handler socket timeouts."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    HANDLER_TIMEOUT,
    MAX_BODY_BYTES,
    MappingService,
    make_server,
)

pytestmark = pytest.mark.service


@pytest.fixture
def http_only_server():
    """An HTTP front end with tight limits and *no* worker threads.

    These tests exercise the request plumbing, not the solver, so the
    service is never started — submissions would just sit queued.
    """
    service = MappingService()
    server = make_server(service, port=0, max_body_bytes=512, handler_timeout=0.5)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        service.stop(wait=True)


def _recv_all(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


class TestBodyCap:
    def test_oversized_declared_body_is_rejected_before_reading(
        self, http_only_server
    ):
        """A huge Content-Length gets a 413 without the body being sent.

        The server must reject on the *declared* size — if it tried to
        read the (never-sent) body first, this request would hang until
        the socket timeout instead of answering promptly.
        """
        host, port = http_only_server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 1048576\r\n"
                b"\r\n"
            )
            start = time.monotonic()
            response = _recv_all(sock)
        assert b" 413 " in response.split(b"\r\n", 1)[0]
        assert b"exceeds" in response
        assert time.monotonic() - start < 5.0

    def test_body_at_the_cap_still_parses(self, http_only_server):
        """The limit is exclusive of valid traffic: == cap must not 413."""
        host, port = http_only_server
        body = json.dumps({"pad": "x" * 400}).encode()  # < 512, > trivial
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\nHost: test\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            response = _recv_all(sock)
        # Not a wire-format job, so a 400 — the point is it was *read*.
        assert b" 400 " in response.split(b"\r\n", 1)[0]

    def test_client_surfaces_the_413(self, http_only_server):
        host, port = http_only_server
        client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(payload={"pad": "x" * 2048, "scenarios": []})
        assert excinfo.value.status == 413

    def test_garbled_content_length_is_a_400(self, http_only_server):
        host, port = http_only_server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\nHost: test\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            response = _recv_all(sock)
        assert b" 400 " in response.split(b"\r\n", 1)[0]


class TestHandlerTimeout:
    def test_silent_client_is_disconnected(self, http_only_server):
        """Connect-and-say-nothing must not pin a handler thread forever."""
        host, port = http_only_server
        with socket.create_connection((host, port), timeout=10) as sock:
            start = time.monotonic()
            # Never send a byte; the 0.5s handler timeout should close us.
            data = _recv_all(sock)
            elapsed = time.monotonic() - start
        assert data == b""  # server closed without a response
        assert 0.1 <= elapsed < 5.0

    def test_stalled_request_line_is_disconnected(self, http_only_server):
        """A partial request that stops mid-header is dropped, not waited on."""
        host, port = http_only_server
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"POST /jobs HTT")  # never finish the line
            start = time.monotonic()
            data = _recv_all(sock)
            elapsed = time.monotonic() - start
        assert data == b""
        assert elapsed < 5.0

    def test_defaults_are_sane(self):
        assert MAX_BODY_BYTES == 1 << 20
        assert HANDLER_TIMEOUT == 30.0
