"""Shared crash-tolerant JSONL primitives.

Three subsystems persist append-only JSONL with the same contract —
the run store (:mod:`repro.dse.store`), the service journals
(:mod:`repro.service.metrics`) and the trace span journals
(:mod:`repro.trace.journal`):

- appends go through a long-lived ``"a+b"`` handle under an advisory
  ``flock``, healing a crashed sibling's torn tail first, so concurrent
  writers never corrupt each other's lines;
- readers tolerate everything a crash can leave behind: torn tails,
  blank lines, non-object lines — every healthy line, nothing else.

This module is the single home of those primitives; the historical
copies in ``dse/store.py`` and ``service/metrics.py`` delegate here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator

try:  # advisory file locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


def heal_torn_tail(handle: IO[bytes]) -> None:
    """Terminate a torn final line left by a crashed writer.

    Must run under the exclusive lock.  If the file's last byte is not a
    newline, some sibling died mid-append; writing our entry straight
    after it would merge the two lines and lose *ours* too.  A lone
    ``\\n`` turns the torn tail into one unparseable line that the
    loader already skips, and keeps every later entry intact.
    """
    size = handle.seek(0, 2)
    if size == 0:
        return
    handle.seek(size - 1)
    if handle.read(1) != b"\n":
        handle.write(b"\n")


def flock(handle: IO[bytes], exclusive: bool = True) -> None:
    """Take the advisory lock (no-op where ``fcntl`` is unavailable)."""
    if fcntl is not None:
        fcntl.flock(handle, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)


def funlock(handle: IO[bytes]) -> None:
    """Release the advisory lock (no-op where ``fcntl`` is unavailable)."""
    if fcntl is not None:
        fcntl.flock(handle, fcntl.LOCK_UN)


def open_append(path: Path) -> IO[bytes]:
    """Open ``path`` for locked appends, creating parent directories.

    ``"a+b"``: O_APPEND keeps every write at end-of-file no matter which
    writer got there first; the read side lets the torn-tail check
    inspect the current last byte under lock.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    return path.open("a+b")


def dump_line(record: dict) -> bytes:
    """One record as a compact, newline-terminated JSONL line."""
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
        + b"\n"
    )


def append_records(handle: IO[bytes], data: bytes) -> None:
    """Append pre-encoded lines under the flock/heal protocol."""
    flock(handle, exclusive=True)
    try:
        heal_torn_tail(handle)
        handle.write(data)
        handle.flush()
    finally:
        funlock(handle)


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield every parseable JSON-object line of ``path`` (missing: none).

    Torn tails, blank lines and non-object lines are silently skipped —
    the journal/replay contract is "every healthy line, nothing else".
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                yield payload
