"""Tests for memristor non-ideality models."""

import pytest

from repro.mca.nonideal import (
    FidelityReport,
    NonidealityModel,
    apply_nonidealities,
    fidelity,
    quantize_weight,
)
from repro.snn.generators import layered_network


class TestModelValidation:
    def test_levels_minimum(self):
        with pytest.raises(ValueError):
            NonidealityModel(conductance_levels=1)

    def test_nonnegative_sigmas(self):
        with pytest.raises(ValueError):
            NonidealityModel(read_noise_sigma=-0.1)

    def test_stuck_fraction_range(self):
        with pytest.raises(ValueError):
            NonidealityModel(stuck_at_fraction=1.0)


class TestQuantizeWeight:
    def test_extremes_preserved(self):
        assert quantize_weight(1.0, 1.0, 5) == pytest.approx(1.0)
        assert quantize_weight(-1.0, 1.0, 5) == pytest.approx(-1.0)

    def test_zero_representable(self):
        assert quantize_weight(0.01, 1.0, 3) == pytest.approx(0.0)

    def test_snaps_to_grid(self):
        # 5 levels over [0, 1]: step 0.25.
        assert quantize_weight(0.3, 1.0, 5) == pytest.approx(0.25)
        assert quantize_weight(0.4, 1.0, 5) == pytest.approx(0.5)

    def test_clipping(self):
        assert quantize_weight(2.0, 1.0, 9) == pytest.approx(1.0)

    def test_zero_max(self):
        assert quantize_weight(0.5, 0.0, 4) == 0.0


@pytest.fixture
def network():
    return layered_network([4, 8, 4], connection_prob=0.6, seed=12)


@pytest.fixture
def assignment(network):
    # Two crossbars split by id parity (capacities irrelevant here).
    return {nid: nid % 2 for nid in network.neuron_ids()}


class TestApplyNonidealities:
    def test_ideal_model_only_quantizes(self, network, assignment):
        model = NonidealityModel(conductance_levels=4096)
        degraded = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
        for syn in network.synapses():
            new = degraded.synapse(syn.pre, syn.post)
            assert new.weight == pytest.approx(syn.weight, abs=1e-3)

    def test_structure_untouched(self, network, assignment):
        model = NonidealityModel(programming_sigma=0.2, seed=1)
        degraded = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
        assert degraded.num_synapses == network.num_synapses
        assert degraded.neuron_ids() == network.neuron_ids()

    def test_deterministic_given_seed(self, network, assignment):
        model = NonidealityModel(programming_sigma=0.3, read_noise_sigma=0.1, seed=5)
        a = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
        b = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
        assert list(a.synapses()) == list(b.synapses())

    def test_ir_drop_attenuates_far_columns(self, network):
        # All neurons in one wide crossbar; far columns must shrink.
        assignment = {nid: 0 for nid in network.neuron_ids()}
        model = NonidealityModel(wire_resistance=0.5)
        degraded = apply_nonidealities(
            network, assignment, {0: network.num_neurons}, model
        )
        ratios = []
        for syn in network.synapses():
            if abs(syn.weight) > 1e-9:
                new = degraded.synapse(syn.pre, syn.post).weight
                ratios.append(abs(new) / abs(syn.weight))
        assert min(ratios) < 0.8  # far columns attenuated
        assert max(ratios) <= 1.0 + 1e-6

    def test_stuck_at_changes_some_weights(self, network, assignment):
        model = NonidealityModel(stuck_at_fraction=0.5, seed=3)
        degraded = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
        changed = sum(
            1
            for syn in network.synapses()
            if degraded.synapse(syn.pre, syn.post).weight != pytest.approx(
                quantize_weight(
                    syn.weight,
                    max(abs(s.weight) for s in network.synapses()),
                    model.conductance_levels,
                )
            )
        )
        assert changed > 0


class TestFidelity:
    def test_identical_networks_perfect_fidelity(self, network):
        spikes = {nid: [0, 4, 8] for nid in network.input_ids()}
        report = fidelity(network, network.copy(), spikes, duration=16)
        assert isinstance(report, FidelityReport)
        assert report.spike_count_error == 0.0
        assert report.raster_jaccard == 1.0

    def test_degradation_reduces_fidelity(self, network, assignment):
        model = NonidealityModel(
            conductance_levels=2, programming_sigma=0.8, stuck_at_fraction=0.3, seed=9
        )
        degraded = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
        spikes = {nid: [0, 2, 4, 6] for nid in network.input_ids()}
        report = fidelity(network, degraded, spikes, duration=20)
        assert report.raster_jaccard < 1.0

    def test_monotone_in_noise(self, network, assignment):
        """More quantization error should not increase raster overlap."""
        spikes = {nid: [0, 3, 6, 9] for nid in network.input_ids()}
        overlaps = []
        for levels in (4096, 4, 2):
            model = NonidealityModel(conductance_levels=levels, seed=2)
            degraded = apply_nonidealities(network, assignment, {0: 8, 1: 8}, model)
            overlaps.append(
                fidelity(network, degraded, spikes, duration=20).raster_jaccard
            )
        assert overlaps[0] >= overlaps[-1]
