"""Unit tests for the tracing subsystem: ids, runtime, journals, exports.

Everything here is single-process; the cross-process propagation story
(fleet workers, SIGKILL survival, restart identity) lives in
``tests/service/test_trace_fleet.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import trace
from repro.jsonlio import read_jsonl
from repro.trace import (
    MERGED_NAME,
    Span,
    TraceRuntime,
    chrome_trace,
    merge_journal,
    mint_context,
    parse_context,
    read_trace_dir,
    render_tree,
    slowest_spans,
    valid_encoded,
)


@pytest.fixture
def runtime(tmp_path):
    """An installed runtime journaling into ``tmp_path``; auto-uninstalled."""
    installed = trace.install(TraceRuntime(tmp_path, "test-proc"))
    yield installed
    trace.uninstall()


# ----------------------------------------------------------------------
class TestContext:
    def test_mint_encode_parse_round_trip(self):
        context = mint_context()
        assert parse_context(context.encode()) == context

    def test_bare_trace_id_mints_a_span_id(self):
        context = parse_context("deadbeefdeadbeef")
        assert context.trace_id == "deadbeefdeadbeef"
        assert valid_encoded(context.encode())

    def test_child_keeps_trace_id(self):
        parent = mint_context()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "xyz",
            "DEADBEEFDEADBEEF",  # uppercase
            "abc",  # too short
            "a" * 33,  # too long
            "deadbeefdeadbeef:",
            "deadbeefdeadbeef:XYZ",
            ":deadbeef",
            "deadbeefdeadbeef:aaaa:bbbb",
        ],
    )
    def test_malformed_rejected(self, bad):
        assert not valid_encoded(bad)
        with pytest.raises(ValueError):
            parse_context(bad)

    def test_valid_encoded_rejects_non_strings(self):
        assert not valid_encoded(None)
        assert not valid_encoded(12345678)


# ----------------------------------------------------------------------
class TestRuntime:
    def test_helpers_are_noops_when_inactive(self, tmp_path):
        # No runtime installed at all: nothing raises, nothing is written.
        with trace.span("unseen") as context:
            assert context is None
        trace.record_span("unseen", start=0.0, duration=1.0)
        trace.event("unseen")
        trace.progress(objective=1.0, bound=0.5)
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_span_requires_active_context(self, runtime, tmp_path):
        with trace.span("orphan"):
            pass
        assert read_trace_dir(tmp_path) == []

    def test_nested_spans_parent_correctly(self, runtime, tmp_path):
        root = mint_context()
        with trace.activate(root):
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    pass
        records = read_trace_dir(tmp_path, root.trace_id)
        by_name = {record["name"]: record for record in records}
        assert by_name["outer"]["parent"] == root.span_id
        assert by_name["inner"]["parent"] == outer.span_id
        assert by_name["inner"]["span"] == inner.span_id
        assert all(record["trace"] == root.trace_id for record in records)

    def test_record_span_parents_to_explicit_context(self, runtime, tmp_path):
        context = mint_context()
        trace.record_span(
            "queue", context, start=100.0, duration=2.5, job="job-1"
        )
        (record,) = read_trace_dir(tmp_path, context.trace_id)
        assert record["parent"] == context.span_id
        assert record["span"] != context.span_id
        assert record["dur"] == 2.5
        assert record["attrs"]["job"] == "job-1"

    def test_progress_updates_gauge_and_journals_event(self, runtime, tmp_path):
        context = mint_context()
        with trace.activate(context, "job-7"):
            trace.progress("incumbent", objective=10.0, bound=8.0, nodes=3)
        progress = runtime.progress_for("job-7")
        assert progress["objective"] == 10.0
        assert progress["gap"] == pytest.approx(0.2)
        (record,) = read_trace_dir(tmp_path, context.trace_id)
        assert record["kind"] == "event"
        assert record["attrs"]["gap"] == pytest.approx(0.2)
        runtime.clear_progress("job-7")
        assert runtime.progress_for("job-7") is None

    def test_progress_observer_sees_updates(self, runtime):
        seen = {}
        runtime.on_progress = lambda job, payload: seen.update({job: payload})
        with trace.activate(mint_context(), "job-9"):
            trace.progress(bound=4.0)
        assert seen["job-9"]["bound"] == 4.0

    def test_slow_span_watchdog_counts(self, tmp_path):
        runtime = trace.install(
            TraceRuntime(tmp_path, "slowproc", slow_span_threshold=0.5)
        )
        try:
            context = mint_context()
            trace.record_span("fast", context, start=0.0, duration=0.1)
            trace.record_span("slow", context, start=0.0, duration=0.9)
            trace.record_span("slower", context, start=0.0, duration=2.0)
            assert runtime.slow_spans == 2
        finally:
            trace.uninstall()


# ----------------------------------------------------------------------
def _span_record(trace_id, span_id, name, start, dur, parent=None):
    span = Span(
        trace_id=trace_id,
        span_id=span_id,
        name=name,
        start=start,
        duration=dur,
        parent_id=parent,
        process="proc-1",
    )
    return span.payload()


class TestJournal:
    def test_read_trace_dir_dedups_merged_copies(self, tmp_path, runtime):
        context = mint_context()
        trace.record_span("hop", context, start=1.0, duration=0.5)
        runtime.flush()
        (source,) = tmp_path.glob("*.jsonl")
        merge_journal(source, tmp_path / MERGED_NAME)
        # The record now exists in both the per-process journal and the
        # merged file; readers must count it once.
        records = read_trace_dir(tmp_path, context.trace_id)
        assert len(records) == 1

    def test_merge_journal_offsets_and_torn_tail(self, tmp_path):
        source = tmp_path / "worker.jsonl"
        dest = tmp_path / MERGED_NAME
        line1 = json.dumps(_span_record("t1", "s1", "a", 1.0, 0.1)) + "\n"
        line2 = json.dumps(_span_record("t1", "s2", "b", 2.0, 0.1)) + "\n"
        torn = '{"format": 1, "kind": "span", "trace": "t1", "sp'

        source.write_text(line1)
        offset = merge_journal(source, dest)
        assert offset == len(line1.encode())
        assert len(list(read_jsonl(dest))) == 1

        # A torn tail (no newline yet) must stay behind...
        source.write_text(line1 + line2 + torn)
        offset = merge_journal(source, dest, offset)
        assert offset == len((line1 + line2).encode())
        assert [r["span"] for r in read_jsonl(dest)] == ["s1", "s2"]

        # ...and move once its newline lands, without re-copying others.
        healed = json.dumps(_span_record("t1", "s3", "c", 3.0, 0.1)) + "\n"
        source.write_text(line1 + line2 + healed)
        offset = merge_journal(source, dest, offset)
        assert [r["span"] for r in read_jsonl(dest)] == ["s1", "s2", "s3"]

    def test_merge_journal_missing_source_is_noop(self, tmp_path):
        dest = tmp_path / MERGED_NAME
        assert merge_journal(tmp_path / "absent.jsonl", dest, 7) == 7
        assert not dest.exists()

    def test_read_trace_dir_filters_by_trace_id(self, tmp_path, runtime):
        mine, other = mint_context(), mint_context()
        trace.record_span("mine", mine, start=1.0, duration=0.1)
        trace.record_span("other", other, start=1.0, duration=0.1)
        runtime.flush()
        records = read_trace_dir(tmp_path, mine.trace_id)
        assert [record["name"] for record in records] == ["mine"]


# ----------------------------------------------------------------------
class TestExport:
    def _records(self):
        records = [
            _span_record("t1", "root", "job", 0.0, 10.0),
            _span_record("t1", "q1", "queue", 0.5, 2.0, parent="root"),
            _span_record("t1", "w1", "worker-solve", 3.0, 6.0, parent="root"),
        ]
        records.append(
            {
                "format": 1,
                "kind": "event",
                "trace": "t1",
                "span": "w1",
                "name": "incumbent",
                "ts": 4.0,
                "proc": "proc-2",
                "attrs": {"objective": 7.0},
            }
        )
        return records

    def test_render_tree_nests_children(self):
        tree = render_tree(self._records())
        lines = tree.splitlines()
        assert lines[0] == "trace t1"
        job_indent = next(l for l in lines if "job" in l)
        queue_indent = next(l for l in lines if "queue" in l)
        assert len(queue_indent) - len(queue_indent.lstrip()) > len(
            job_indent
        ) - len(job_indent.lstrip())
        assert any("* incumbent" in line for line in lines)

    def test_chrome_trace_is_valid_json_with_all_kinds(self):
        chrome = chrome_trace(self._records())
        reparsed = json.loads(json.dumps(chrome))
        phases = {event["ph"] for event in reparsed["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        complete = [e for e in reparsed["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        job = next(e for e in complete if e["name"] == "job")
        assert job["dur"] == pytest.approx(10.0 * 1e6)

    def test_slowest_spans_orders_by_duration(self):
        slowest = slowest_spans(self._records(), 2)
        assert [span.name for span in slowest] == ["job", "worker-solve"]

    def test_render_tree_handles_junk_records(self):
        records = self._records() + [{"format": 99}, {"not": "a record"}]
        assert "job" in render_tree(records)
