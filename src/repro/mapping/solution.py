"""Mapping solutions: neuron placements plus every derived metric.

A :class:`Mapping` is an assignment of every neuron to a crossbar slot.
All paper metrics derive from it:

- **area** (objective 8): summed ``C_j`` of enabled slots;
- **routes** (objective 9): total distinct axonal inputs over crossbars,
  i.e. ``sum_j |Inputs_j|`` — the realized ``sum s[k, j]``;
- **global routes** (objective 11): routes whose source neuron lives on a
  different crossbar (``sum s - b``);
- **packets** (objective 12): routes weighted by profiled spike counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as MappingT

from .problem import MappingProblem


@dataclass(frozen=True)
class Mapping:
    """A complete placement of neurons onto crossbar slots."""

    problem: MappingProblem
    assignment: dict[int, int]
    _inputs_by_slot: dict[int, frozenset[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        missing = set(self.problem.network.neuron_ids()) - set(self.assignment)
        if missing:
            raise ValueError(f"assignment missing neurons {sorted(missing)[:5]}")
        extra = set(self.assignment) - set(self.problem.network.neuron_ids())
        if extra:
            raise ValueError(f"assignment names unknown neurons {sorted(extra)[:5]}")
        bad = {
            j for j in self.assignment.values()
            if not 0 <= j < self.problem.num_slots
        }
        if bad:
            raise ValueError(f"assignment targets unknown slots {sorted(bad)}")
        inputs: dict[int, set[int]] = {}
        for i, j in self.assignment.items():
            inputs.setdefault(j, set()).update(self.problem.preds(i))
        object.__setattr__(
            self,
            "_inputs_by_slot",
            {j: frozenset(ks) for j, ks in inputs.items()},
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def neurons_on(self, slot: int) -> frozenset[int]:
        """Neurons whose output line is on crossbar ``slot``."""
        return frozenset(
            i for i, j in self.assignment.items() if j == slot
        )

    def axon_inputs(self, slot: int) -> frozenset[int]:
        """Distinct axonal inputs crossbar ``slot`` receives (``Inputs_j``)."""
        return self._inputs_by_slot.get(slot, frozenset())

    def enabled_slots(self) -> list[int]:
        """Slots hosting at least one neuron, ascending."""
        return sorted(set(self.assignment.values()))

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Objective 8: summed area cost of enabled crossbars."""
        arch = self.problem.architecture
        return sum(arch.slot(j).area for j in self.enabled_slots())

    def memristor_count(self) -> int:
        """Enabled-crossbar device count (the paper's area unit)."""
        arch = self.problem.architecture
        return sum(arch.slot(j).ctype.memristors for j in self.enabled_slots())

    def total_routes(self) -> int:
        """Objective 9: ``sum_{k,j} s[k, j]`` — all axonal route endpoints."""
        return sum(len(self.axon_inputs(j)) for j in self.enabled_slots())

    def local_routes(self) -> int:
        """``sum b[k, j]``: axon inputs whose source lives on the same slot."""
        count = 0
        for j in self.enabled_slots():
            inputs = self.axon_inputs(j)
            count += sum(1 for k in inputs if self.assignment[k] == j)
        return count

    def global_routes(self) -> int:
        """Objective 11: inter-crossbar routes (``sum s - b``)."""
        return self.total_routes() - self.local_routes()

    def packet_count(self, spike_counts: MappingT[int, int]) -> tuple[int, int]:
        """(local, global) runtime packets under a spike profile.

        Objective 12's value is the global component: each spike of ``k``
        sends one packet per target crossbar, and the packet to ``k``'s own
        crossbar never crosses the router network.
        """
        local = 0
        global_ = 0
        for j in self.enabled_slots():
            for k in self.axon_inputs(j):
                fires = spike_counts.get(k, 0)
                if self.assignment[k] == j:
                    local += fires
                else:
                    global_ += fires
        return local, global_

    def crossbar_histogram(self) -> dict[str, int]:
        """Enabled crossbar count per dimension label (paper Fig. 3b-f)."""
        arch = self.problem.architecture
        hist: dict[str, int] = {}
        for j in self.enabled_slots():
            label = arch.slot(j).ctype.label
            hist[label] = hist.get(label, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Capacity violations (empty list = valid mapping).

        Checks constraint 4 (outputs per slot <= N_j) and constraint 7
        with true axon sharing (distinct inputs per slot <= A_j).
        """
        arch = self.problem.architecture
        violations: list[str] = []
        for j in self.enabled_slots():
            slot = arch.slot(j)
            outputs = len(self.neurons_on(j))
            inputs = len(self.axon_inputs(j))
            if outputs > slot.outputs:
                violations.append(
                    f"slot {j} ({slot.ctype.label}): {outputs} neurons exceed "
                    f"{slot.outputs} output lines"
                )
            if inputs > slot.inputs:
                violations.append(
                    f"slot {j} ({slot.ctype.label}): {inputs} axons exceed "
                    f"{slot.inputs} input lines"
                )
        return violations

    def is_valid(self) -> bool:
        return not self.validate()

    def summary(self) -> str:
        """One-line human-readable summary."""
        hist = ", ".join(f"{n}x{lbl}" for lbl, n in sorted(self.crossbar_histogram().items()))
        return (
            f"area={self.area():g} over {len(self.enabled_slots())} crossbars "
            f"[{hist}], routes={self.total_routes()} "
            f"(global {self.global_routes()})"
        )
