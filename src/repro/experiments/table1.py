"""Table I reproduction: attributes of the benchmark networks.

Regenerates the five statistical twins and reports their attributes next
to the paper's published values.  At scale 1.0 the node/edge/fan-in
columns match exactly by construction; densities and Gini indices match
to generator tolerance.
"""

from __future__ import annotations

from ..snn.stats import network_stats
from .networks import PAPER_EDGE_DENSITY, PAPER_NETWORK_SPECS, paper_network
from .runner import ExperimentConfig, format_table


def run_table1(config: ExperimentConfig) -> str:
    headers = [
        "Net",
        "Nodes",
        "(paper)",
        "Edges",
        "(paper)",
        "MaxFanIn",
        "(paper)",
        "Density",
        "(paper)",
        "GiniIn",
        "(paper)",
        "GiniOut",
        "(paper)",
    ]
    rows: list[tuple] = []
    for name, spec in PAPER_NETWORK_SPECS.items():
        net = paper_network(name, scale=config.scale)
        st = network_stats(net)
        rows.append(
            (
                name,
                st.node_count,
                spec.node_count,
                st.edge_count,
                spec.edge_count,
                st.max_fan_in,
                spec.max_fan_in,
                round(st.edge_density, 4),
                PAPER_EDGE_DENSITY[name],
                round(st.gini_incoming, 4),
                spec.gini_incoming,
                round(st.gini_outgoing, 4),
                spec.gini_outgoing,
            )
        )
    note = (
        f"(generated at scale={config.scale}; '(paper)' columns are the "
        "full-scale Table I targets)"
    )
    return format_table(headers, rows) + "\n" + note
