"""Table II reproduction: the allowed crossbar dimension set.

Reconstructs the multi-macro dimension table from the base square sizes
and stacking factors, verifying the 32-input-channel exclusion rule.
"""

from __future__ import annotations

from ..mca.architecture import BASE_DIMENSIONS, MACRO_FACTORS, table_ii_types
from .runner import ExperimentConfig, format_table


def run_table2(config: ExperimentConfig) -> str:  # config unused; uniform API
    types = table_ii_types()
    by_base: dict[int, dict[int, str]] = {base: {} for base in BASE_DIMENSIONS}
    for ctype in types:
        base = ctype.outputs
        factor = ctype.inputs // ctype.outputs
        by_base[base][factor] = ctype.label
    headers = ["Base Dimension"] + [f"Multi-Macro {f}x" for f in MACRO_FACTORS]
    rows: list[tuple] = []
    for base in BASE_DIMENSIONS:
        row = [by_base[base].get(1, "-")]
        for factor in MACRO_FACTORS:
            row.append(by_base[base].get(factor, "-"))
        rows.append(tuple(row))
    total = format_table(headers, rows)
    memristors = ", ".join(f"{t.label}={t.memristors}" for t in types)
    return total + f"\n({len(types)} types; memristor counts: {memristors})"
