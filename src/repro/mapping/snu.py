"""Static Network Utilization optimization (Section IV-C).

After area optimization, the paper freezes the solution's enabled-crossbar
set ("restricted the set of enabled crossbars to not increase area") and
re-optimizes placement to minimize routing:

- objective 9 minimizes *all* route endpoints, ``sum s[i, j]``;
- objective 11 minimizes *global* routes only, ``sum s[i, j] - b[i, j]``,
  with ``b = x AND s`` linearized by constraint set 10.

:class:`RouteModel` also accepts per-source spike weights, which turns
objective 11 into the PGO objective 12 (see :mod:`repro.mapping.pgo`);
weight-zero sources drop out of the objective and need no ``b`` variable —
the variable-elimination the paper credits for PGO's 1-3 orders-of-
magnitude solver-time advantage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping as MappingT, Sequence

from ..ilp.expr import Variable, lin_sum
from ..ilp.model import Model
from ..ilp.result import SolveResult
from .axon_sharing import b_name, s_name, x_name, y_name
from .problem import MappingProblem
from .solution import Mapping


class RouteObjective(enum.Enum):
    """Which routing quantity to minimize."""

    TOTAL = "total"  # objective 9: local + global endpoints
    GLOBAL = "global"  # objective 11 (or 12 when weighted)


@dataclass(frozen=True)
class RouteModelOptions:
    """Options for the route/packet formulation."""

    objective: RouteObjective = RouteObjective.GLOBAL
    include_b_lower: bool = True  # the b >= s + x - 1 row of constraint 10
    include_upper_link: bool = True  # constraint 5
    area_budget: float | None = None  # default: area of the allowed slots


class RouteModel:
    """Routing-optimal placement over a frozen set of allowed crossbars."""

    def __init__(
        self,
        problem: MappingProblem,
        allowed_slots: Sequence[int],
        options: RouteModelOptions | None = None,
        weights: MappingT[int, int] | None = None,
    ) -> None:
        """``weights`` maps source neuron -> profiled spike count (PGO);
        ``None`` means unweighted SNU (every route costs 1)."""
        if not allowed_slots:
            raise ValueError("allowed_slots must not be empty")
        seen = set()
        for j in allowed_slots:
            if not 0 <= j < problem.num_slots:
                raise ValueError(f"slot {j} not in architecture")
            if j in seen:
                raise ValueError(f"slot {j} listed twice")
            seen.add(j)
        total_outputs = sum(
            problem.architecture.slot(j).outputs for j in allowed_slots
        )
        if total_outputs < problem.num_neurons:
            raise ValueError(
                f"allowed slots provide {total_outputs} output lines for "
                f"{problem.num_neurons} neurons; no placement can exist"
            )
        self.problem = problem
        self.slots = sorted(allowed_slots)
        self.options = options or RouteModelOptions()
        self.weights = dict(weights) if weights is not None else None
        self.model = Model("routes")
        self.x: dict[tuple[int, int], Variable] = {}
        self.s: dict[tuple[int, int], Variable] = {}
        self.b: dict[tuple[int, int], Variable] = {}
        self.y: dict[int, Variable] = {}
        self._build()

    # ------------------------------------------------------------------
    def _weight(self, k: int) -> int:
        if self.weights is None:
            return 1
        return int(self.weights.get(k, 0))

    def _build(self) -> None:
        prob = self.problem
        model = self.model
        opts = self.options
        neurons = prob.network.neuron_ids()
        sources = prob.sources()
        slots = self.slots

        for j in slots:
            self.y[j] = model.add_binary(y_name(j))
        for i in neurons:
            for j in slots:
                self.x[(i, j)] = model.add_binary(x_name(i, j))
        for k in sources:
            for j in slots:
                self.s[(k, j)] = model.add_binary(s_name(k, j))

        for i in neurons:
            model.add(
                lin_sum(self.x[(i, j)] for j in slots) == 1, name=f"place_{i}"
            )
        for j in slots:
            slot = prob.architecture.slot(j)
            model.add(
                lin_sum(self.x[(i, j)] for i in neurons)
                <= slot.outputs * self.y[j],
                name=f"outputs_{j}",
            )
            model.add(
                lin_sum(self.s[(k, j)] for k in sources)
                <= slot.inputs * self.y[j],
                name=f"inputs_{j}",
            )
        for k, i in prob.edges():
            for j in slots:
                model.add(self.s[(k, j)] >= self.x[(i, j)], name=f"share_{k}_{i}_{j}")
        if opts.include_upper_link:
            for k in sources:
                succ = sorted(prob.succs(k))
                for j in slots:
                    model.add(
                        self.s[(k, j)] <= lin_sum(self.x[(i, j)] for i in succ),
                        name=f"uplink_{k}_{j}",
                    )

        # Area must not regress: the allowed set is frozen and disabling
        # slots can only reduce area, but a budget row keeps this explicit.
        budget = opts.area_budget
        if budget is None:
            budget = sum(prob.architecture.slot(j).area for j in slots)
        model.add(
            lin_sum(prob.architecture.slot(j).area * self.y[j] for j in slots)
            <= budget,
            name="area_budget",
        )

        if opts.objective is RouteObjective.TOTAL:
            # Objective 9: every route endpoint counts (weighted for PGO).
            model.minimize(
                lin_sum(
                    self._weight(k) * self.s[(k, j)]
                    for k in sources
                    for j in slots
                    if self._weight(k) > 0
                )
            )
            return

        # Objective 11/12: only global routes count.  b[k, j] = x AND s is
        # only materialized where its objective coefficient is nonzero —
        # silent sources (weight 0) vanish entirely (the PGO speedup).
        hot_sources = [k for k in sources if self._weight(k) > 0]
        for k in hot_sources:
            for j in slots:
                b = model.add_binary(b_name(k, j))
                self.b[(k, j)] = b
                model.add(b <= self.s[(k, j)], name=f"b_le_s_{k}_{j}")
                model.add(b <= self.x[(k, j)], name=f"b_le_x_{k}_{j}")
                if opts.include_b_lower:
                    model.add(
                        b >= self.s[(k, j)] + self.x[(k, j)] - 1,
                        name=f"b_ge_{k}_{j}",
                    )
        model.minimize(
            lin_sum(
                self._weight(k) * (self.s[(k, j)] - self.b[(k, j)])
                for k in hot_sources
                for j in slots
            )
        )

    # ------------------------------------------------------------------
    def warm_start_from(self, mapping: Mapping) -> dict[str, float]:
        """Consistent variable assignment from a mapping on allowed slots."""
        allowed = set(self.slots)
        outside = {j for j in mapping.assignment.values() if j not in allowed}
        if outside:
            raise ValueError(
                f"mapping uses slots {sorted(outside)} outside the allowed set"
            )
        values: dict[str, float] = {}
        for i, j in mapping.assignment.items():
            values[x_name(i, j)] = 1.0
        for j in mapping.enabled_slots():
            values[y_name(j)] = 1.0
            for k in mapping.axon_inputs(j):
                values[s_name(k, j)] = 1.0
                if (k, j) in self.b and mapping.assignment[k] == j:
                    values[b_name(k, j)] = 1.0
        return values

    def extract_mapping(self, result: SolveResult) -> Mapping:
        if not result.status.has_solution() or result.values is None:
            raise ValueError(f"no solution to extract (status {result.status})")
        return self.mapping_from_values(result.values)

    def mapping_from_values(self, values: MappingT[str, float]) -> Mapping:
        """Recover a placement from a raw variable assignment."""
        assignment: dict[int, int] = {}
        for (i, j), var in self.x.items():
            if values.get(var.name, 0.0) > 0.5:
                assignment[i] = j
        mapping = Mapping(self.problem, assignment)
        issues = mapping.validate()
        if issues:
            raise AssertionError(f"ILP produced an invalid mapping: {issues[:3]}")
        return mapping


def build_snu_model(
    problem: MappingProblem,
    base_mapping: Mapping,
    objective: RouteObjective = RouteObjective.GLOBAL,
    options: RouteModelOptions | None = None,
) -> RouteModel:
    """SNU post-optimization over ``base_mapping``'s enabled crossbars."""
    opts = options or RouteModelOptions(objective=objective)
    if opts.objective is not objective:
        opts = RouteModelOptions(
            objective=objective,
            include_b_lower=opts.include_b_lower,
            include_upper_link=opts.include_upper_link,
            area_budget=opts.area_budget,
        )
    if opts.area_budget is None:
        opts = RouteModelOptions(
            objective=opts.objective,
            include_b_lower=opts.include_b_lower,
            include_upper_link=opts.include_upper_link,
            area_budget=base_mapping.area(),
        )
    return RouteModel(problem, base_mapping.enabled_slots(), opts)
