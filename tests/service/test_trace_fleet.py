"""End-to-end tracing through the daemon and the multi-process fleet.

The contract: a traced job yields ONE trace — a single trace id whose
span tree stitches the HTTP accept, queue wait, lease, and worker solve
(with per-arm ILP phase spans and live branch-and-bound progress)
across every process it crossed, and that story survives worker murder
and daemon restarts exactly like the job itself does.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro import trace
from repro.batch.cache import ResultCache
from repro.dse.explorer import Explorer
from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    WorkloadSpec,
)
from repro.dse.store import RunStore
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import MappingService, make_server
from repro.service.jobs import JOB_DONE
from repro.service.wire import JobSpec, WireError
from repro.service.worker import FleetConfig
from repro.trace import MERGED_NAME, render_tree

pytestmark = pytest.mark.service

CHAOS = str(Path(__file__).resolve().parent / "chaos.py")


def _scenario(dimension: int = 12) -> Scenario:
    return Scenario(
        architecture=ArchitectureSpec(kind="homogeneous", dimension=dimension),
        workload=WorkloadSpec(network="C", scale=0.1, profile="uniform"),
        formulation=FormulationSpec(stages=("area",)),
    )


def _spec(*scenarios: Scenario, trace_context: str | None = None) -> JobSpec:
    return JobSpec(
        scenarios=tuple(scenarios),
        tier="ilp",
        time_limit=5.0,
        trace=trace_context,
    )


def _fleet_config(tmp_path: Path, **overrides) -> FleetConfig:
    settings = dict(
        store_path=str(tmp_path / "store"),
        store_shards=4,
        cache_dir=str(tmp_path / "cache"),
        time_limit=5.0,
        lease_ttl=5.0,
        heartbeat_interval=0.2,
        max_attempts=3,
        backoff_base=0.05,
        backoff_cap=0.2,
        drain_timeout=15.0,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


def _service(tmp_path: Path, fleet: int, config: FleetConfig, **kwargs):
    explorer = Explorer(
        store=RunStore(tmp_path / "store", shards=4), cache=ResultCache()
    )
    kwargs.setdefault("trace_dir", tmp_path / "trace")
    return MappingService(
        explorer,
        fleet=fleet,
        ledger_path=tmp_path / "ledger.jsonl",
        journal_path=tmp_path / "journal.jsonl",
        fleet_config=config,
        **kwargs,
    )


def _wait_finished(service: MappingService, job_id: str, timeout: float = 90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.registry.get(job_id)
        if job is not None and job.finished:
            return job
        time.sleep(0.05)
    pytest.fail(f"job {job_id} still unfinished after {timeout}s")


def _spans_by_name(records: list[dict]) -> dict[str, dict]:
    return {r["name"]: r for r in records if r.get("kind") == "span"}


# ----------------------------------------------------------------------
class TestFleetTraceEndToEnd:
    def test_traced_job_yields_single_cross_process_span_tree(self, tmp_path):
        """The acceptance walk: accept -> queue -> lease -> worker solve,
        one trace id, per-arm phase spans, live BnB progress events."""
        config = _fleet_config(
            tmp_path, mapper_factory=f"{CHAOS}:bnb_portfolio_mapper"
        )
        service = _service(tmp_path, fleet=1, config=config)
        try:
            service.start()
            job = service.submit(_spec(_scenario()))
            # The accept point minted a context and pinned it to the spec.
            assert job.spec.trace is not None
            trace_id = job.spec.trace.partition(":")[0]

            finished = _wait_finished(service, job.id)
            assert finished.status == JOB_DONE

            payload = service.trace_payload(job.id)
            records = payload["records"]
            assert records, "no spans journaled"
            # ONE trace: every record, from every process, shares the id.
            assert {r["trace"] for r in records} == {trace_id}

            spans = _spans_by_name(records)
            for name in (
                "job",
                "queue",
                "lease",
                "worker-solve",
                "cache-lookup",
                "arm:bnb",
                "stage:area",
                "phase:solve",
            ):
                assert name in spans, f"missing span {name!r}:\n" + render_tree(
                    records
                )
            # The hops parent to the root "job" span...
            root = spans["job"]
            assert root.get("parent") is None
            for hop in ("queue", "lease", "worker-solve"):
                assert spans[hop]["parent"] == root["span"]
            # ...and the tree really crosses the process boundary.
            assert spans["queue"]["proc"].startswith("daemon-")
            assert spans["worker-solve"]["proc"].startswith("worker-")
            assert spans["arm:bnb"]["proc"] == spans["worker-solve"]["proc"]

            # Live solver progress: at least one BnB incumbent/bound event.
            events = [r for r in records if r.get("kind") == "event"]
            assert any(e["name"] == "accepted" for e in events)
            progress = [
                e for e in events if e["name"] in ("incumbent", "bound")
            ]
            assert progress, "no BnB progress events:\n" + render_tree(records)
            assert any("det_time" in e.get("attrs", {}) for e in progress)
        finally:
            service.stop(wait=True)
        # The supervisor's merge left one consolidated journal behind.
        assert (tmp_path / "trace" / MERGED_NAME).exists()

    def test_sigkilled_workers_spans_survive_and_trace_id_sticks(
        self, tmp_path
    ):
        """Salvage: spans journaled before a kill -9 outlive their worker,
        and the retried attempt continues the SAME trace."""
        config = _fleet_config(
            tmp_path,
            mapper_factory=f"{CHAOS}:traced_stalling_mapper",
            mapper_kwargs=(
                ("attempts_dir", str(tmp_path / "attempts")),
                ("fail_first", 1),
                ("delay", 60.0),
            ),
        )
        service = _service(tmp_path, fleet=1, config=config)
        try:
            service.start()
            job = service.submit(_spec(_scenario()))
            trace_id = job.spec.trace.partition(":")[0]

            pid = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                workers = service.supervisor.snapshot()["workers"]
                busy = [w for w in workers if w["job"] == job.id and w["pid"]]
                if busy:
                    pid = busy[0]["pid"]
                    break
                time.sleep(0.05)
            assert pid is not None, "worker never picked the job up"
            # Let the mapper journal its pre-stall "attempt" span first.
            attempts = tmp_path / "attempts" / "traced-stall.attempts"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not attempts.exists():
                time.sleep(0.05)
            os.kill(pid, signal.SIGKILL)

            finished = _wait_finished(service, job.id)
            assert finished.status == JOB_DONE
            # The retry rode the original context, not a fresh one.
            assert finished.spec.trace == job.spec.trace

            records = service.trace_payload(job.id)["records"]
            assert {r["trace"] for r in records} == {trace_id}
            attempts_seen = sorted(
                r["attrs"]["attempt"]
                for r in records
                if r.get("name") == "attempt"
            )
            # Attempt 1's span came from the murdered worker; attempt 2's
            # from its replacement — both in one tree.
            assert attempts_seen == [1, 2]
            procs = {
                r["proc"] for r in records if r.get("name") == "attempt"
            }
            assert len(procs) == 2, procs
        finally:
            service.stop(wait=True)

    def test_restarted_daemon_resumes_job_under_original_trace_id(
        self, tmp_path
    ):
        """A journal-replayed job keeps its trace id, and the new daemon's
        spans land in the same tree as the old daemon's accept event."""
        before = _service(
            tmp_path, fleet=1, config=_fleet_config(tmp_path)
        )
        job_id = before.submit(_spec(_scenario())).id
        original = before.registry.get(job_id).spec.trace
        assert original is not None
        before.stop(wait=True)

        after = _service(tmp_path, fleet=1, config=_fleet_config(tmp_path))
        try:
            assert after.registry.get(job_id).spec.trace == original
            after.start()
            job = _wait_finished(after, job_id)
            assert job.status == JOB_DONE
            records = after.trace_payload(job_id)["records"]
            trace_id = original.partition(":")[0]
            assert {r["trace"] for r in records} == {trace_id}
            spans = _spans_by_name(records)
            assert "worker-solve" in spans
            # The pre-restart accept event is part of the same story.
            assert any(
                r.get("name") == "accepted"
                for r in records
                if r.get("kind") == "event"
            )
        finally:
            after.stop(wait=True)


# ----------------------------------------------------------------------
class TestTraceHTTP:
    def _serve(self, service):
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread, ServiceClient(
            f"http://127.0.0.1:{port}", timeout=30.0
        )

    def test_header_adopted_endpoint_serves_tree_bad_header_400(
        self, tmp_path
    ):
        service = _service(tmp_path, fleet=1, config=_fleet_config(tmp_path))
        server, thread, client = self._serve(service)
        try:
            service.start()
            # An inbound X-Repro-Trace context is adopted, not replaced.
            supplied = trace.mint_context().encode()
            accepted = client.submit(
                payload=_spec(_scenario()).payload(), trace=supplied
            )
            assert accepted["trace"] == supplied
            job_id = accepted["id"]
            client.wait(job_id, timeout=90.0)

            body = client.trace(job_id)
            assert body["trace"] == supplied
            trace_id = supplied.partition(":")[0]
            assert {r["trace"] for r in body["records"]} == {trace_id}
            assert "worker-solve" in _spans_by_name(body["records"])

            # A malformed header is a client error, not a silent drop.
            with pytest.raises(ServiceError) as excinfo:
                client.submit(
                    payload=_spec(_scenario(dimension=10)).payload(),
                    trace="NOT-HEX",
                )
            assert excinfo.value.status == 400

            # Unknown job ids 404 on the trace route too.
            with pytest.raises(ServiceError) as excinfo:
                client.trace("job-does-not-exist")
            assert excinfo.value.status == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.stop(wait=True)

    def test_metrics_exposes_trace_section_and_gap_gauge_lifecycle(
        self, tmp_path
    ):
        service = _service(tmp_path, fleet=1, config=_fleet_config(tmp_path))
        try:
            service.start()
            job = service.submit(_spec(_scenario()))
            _wait_finished(service, job.id)
            body = service.metrics_payload()
            assert body["trace"]["enabled"] is True
            assert body["trace"]["dir"] == str(tmp_path / "trace")
            # Terminal jobs release their gap gauge; the dict stays clean.
            assert body["solver_progress"] == {}
        finally:
            service.stop(wait=True)


# ----------------------------------------------------------------------
class TestTraceWire:
    def test_spec_round_trips_trace_context(self):
        context = trace.mint_context().encode()
        spec = _spec(_scenario(), trace_context=context)
        from repro.service.wire import parse_job

        assert parse_job(spec.payload()).trace == context

    def test_spec_rejects_malformed_trace(self):
        with pytest.raises(WireError):
            _spec(_scenario(), trace_context="NOT-HEX")
        with pytest.raises(WireError):
            _spec(_scenario(), trace_context="abc")  # too short

    def test_untraced_payload_omits_the_key(self):
        assert "trace" not in _spec(_scenario()).payload()


# ----------------------------------------------------------------------
class TestPhaseTimingsWithoutTracing:
    def test_classic_untraced_service_still_records_phase_histograms(
        self, tmp_path
    ):
        """Satellite: per-phase timings feed /metrics even with tracing off."""
        explorer = Explorer(
            store=RunStore(tmp_path / "store", shards=2), cache=ResultCache()
        )
        service = MappingService(explorer)  # no trace_dir anywhere
        try:
            service.start()
            job = service.submit(_spec(_scenario()))
            _wait_finished(service, job.id)
            body = service.metrics_payload()
            assert "trace" not in body
            latency = body["latency"]
            for phase in ("build", "lower", "solve"):
                key = f"solve_phase_{phase}"
                assert key in latency, sorted(latency)
                assert latency[key]["count"] >= 1
        finally:
            service.stop(wait=True)
