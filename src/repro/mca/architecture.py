"""Memristor crossbar architecture descriptions.

An :class:`Architecture` is a finite pool of crossbar *slots* the ILP can
enable — the index set ``j`` with dimensions ``(A_j, N_j)`` and costs
``C_j``.  Builders cover the paper's two configurations:

- **homogeneous**: identical square crossbars (16x16 in §V-C, the smallest
  power-of-two size fitting the most fan-in-intense network of Table I);
- **heterogeneous**: the Table II dimension set — power-of-two square bases
  4x4..32x32 plus *multi-macro* vertically stacked variants (2x/4x/8x)
  that trade taller input dimensions for the same output width, capped at
  32 input channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .crossbar import CrossbarSlot, CrossbarType

#: Paper §V-B: base square dimensions supported by [41]-[43].
BASE_DIMENSIONS = (4, 8, 16, 32)
#: Paper §V-B: multi-macro vertical stacking factors from [11].
MACRO_FACTORS = (2, 4, 8)
#: Paper §V-B: crossbars above 32 input channels are excluded.
MAX_INPUT_CHANNELS = 32


def table_ii_types(
    base_dimensions: Sequence[int] = BASE_DIMENSIONS,
    macro_factors: Sequence[int] = MACRO_FACTORS,
    max_inputs: int = MAX_INPUT_CHANNELS,
    overhead: float = 1.0,
) -> list[CrossbarType]:
    """The Table II crossbar dimension set.

    Each base ``b x b`` square contributes stacked variants
    ``(b * f) x b`` for every macro factor ``f``, excluding anything whose
    input dimension exceeds ``max_inputs``.
    """
    types: set[CrossbarType] = set()
    for base in base_dimensions:
        if base <= max_inputs:
            types.add(CrossbarType(base, base, overhead))
        for factor in macro_factors:
            stacked_inputs = base * factor
            if stacked_inputs <= max_inputs:
                types.add(CrossbarType(stacked_inputs, base, overhead))
    return sorted(types)


@dataclass(frozen=True)
class Architecture:
    """A named, finite pool of crossbar slots."""

    name: str
    slots: tuple[CrossbarSlot, ...]
    _areas: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for pos, slot in enumerate(self.slots):
            if slot.index != pos:
                raise ValueError(
                    f"slot at position {pos} has index {slot.index}; "
                    "slot indices must be contiguous"
                )

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def slot(self, index: int) -> CrossbarSlot:
        return self.slots[index]

    @property
    def slot_areas(self) -> np.ndarray:
        """Per-slot area costs ``C_j`` as one cached float array.

        Metric and energy reports index this instead of walking slot
        objects per query.
        """
        if self._areas is None:
            object.__setattr__(
                self,
                "_areas",
                np.asarray([s.area for s in self.slots], dtype=np.float64),
            )
        return self._areas

    def types(self) -> list[CrossbarType]:
        """Distinct crossbar types present, sorted."""
        return sorted({slot.ctype for slot in self.slots})

    def slots_of_type(self, ctype: CrossbarType) -> list[CrossbarSlot]:
        return [slot for slot in self.slots if slot.ctype == ctype]

    def total_output_capacity(self) -> int:
        return sum(slot.outputs for slot in self.slots)

    def total_area(self) -> float:
        return sum(slot.area for slot in self.slots)

    def is_homogeneous(self) -> bool:
        return len(self.types()) <= 1

    def identical_slot_groups(self) -> list[list[int]]:
        """Slot indices grouped by type — the symmetry classes the ILP's
        symmetry-breaking constraints order."""
        groups: dict[CrossbarType, list[int]] = {}
        for slot in self.slots:
            groups.setdefault(slot.ctype, []).append(slot.index)
        return [sorted(v) for _, v in sorted(groups.items())]

    def __repr__(self) -> str:
        counts: dict[str, int] = {}
        for slot in self.slots:
            counts[slot.ctype.label] = counts.get(slot.ctype.label, 0) + 1
        inventory = ", ".join(f"{n}x {lbl}" for lbl, n in sorted(counts.items()))
        return f"Architecture({self.name!r}, {inventory})"


def _make_slots(types_with_counts: Iterable[tuple[CrossbarType, int]]) -> tuple[CrossbarSlot, ...]:
    slots: list[CrossbarSlot] = []
    for ctype, count in types_with_counts:
        if count < 0:
            raise ValueError("slot counts must be non-negative")
        for _ in range(count):
            slots.append(CrossbarSlot(len(slots), ctype))
    return tuple(slots)


def homogeneous_architecture(
    num_neurons: int,
    dimension: int = 16,
    slack: float = 1.5,
    overhead: float = 1.0,
    name: str | None = None,
) -> Architecture:
    """Homogeneous pool of ``dimension x dimension`` crossbars.

    The pool holds ``ceil(slack * n / dimension)`` slots — enough output
    capacity to host every neuron with ``slack`` headroom so the packing is
    never artificially constrained (the optimizer decides how many slots to
    *enable*).
    """
    if num_neurons < 1:
        raise ValueError("num_neurons must be positive")
    if slack < 1.0:
        raise ValueError("slack must be >= 1 or the network cannot fit")
    count = math.ceil(slack * num_neurons / dimension)
    ctype = CrossbarType(dimension, dimension, overhead)
    arch_name = name or f"homogeneous-{ctype.label}"
    return Architecture(arch_name, _make_slots([(ctype, count)]))


def heterogeneous_architecture(
    num_neurons: int,
    types: Sequence[CrossbarType] | None = None,
    slack: float = 1.0,
    max_slots_per_type: int = 64,
    name: str | None = None,
) -> Architecture:
    """Heterogeneous pool over the Table II types.

    Every type receives enough slots to host the whole network alone
    (``ceil(slack * n / outputs)``, capped), so the solver's choice of
    sizes is unconstrained by pool composition — matching the paper's
    "arbitrarily heterogeneous" premise while keeping the ILP finite.
    """
    if num_neurons < 1:
        raise ValueError("num_neurons must be positive")
    chosen = list(types) if types is not None else table_ii_types()
    if not chosen:
        raise ValueError("need at least one crossbar type")
    with_counts = []
    for ctype in sorted(chosen):
        count = min(max_slots_per_type, math.ceil(slack * num_neurons / ctype.outputs))
        with_counts.append((ctype, count))
    return Architecture(name or "heterogeneous-tableII", _make_slots(with_counts))


def custom_architecture(
    types_with_counts: Sequence[tuple[CrossbarType, int]],
    name: str = "custom",
) -> Architecture:
    """Arbitrary pool from explicit (type, count) pairs."""
    return Architecture(name, _make_slots(types_with_counts))
