"""Network linting: structural problems worth flagging before mapping.

The mapping ILP happily places pathological networks (dead neurons still
occupy crossbar columns; unreachable subgraphs still cost area).  The
linter surfaces those issues so users can prune before paying hardware
for them — mirroring the paper's emphasis that sparsity/pruning quality
directly drives area.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from .network import Network


class LintLevel(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class LintIssue:
    """One finding, with a stable code for programmatic filtering."""

    level: LintLevel
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.level.value}] {self.code}: {self.message}"


def _reachable_from(network: Network, seeds: set[int], forward: bool) -> set[int]:
    step = network.successors if forward else network.predecessors
    seen = set(seeds)
    queue = deque(seeds)
    while queue:
        nid = queue.popleft()
        for nxt in step(nid):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def lint_network(network: Network) -> list[LintIssue]:
    """Run every check; returns findings sorted by (level, code)."""
    issues: list[LintIssue] = []
    ids = network.neuron_ids()
    inputs = set(network.input_ids())
    outputs = set(network.output_ids())

    if not ids:
        return [LintIssue(LintLevel.ERROR, "empty", "network has no neurons")]
    if not inputs:
        issues.append(
            LintIssue(LintLevel.ERROR, "no-inputs", "no neuron is marked as input")
        )
    if not outputs:
        issues.append(
            LintIssue(LintLevel.ERROR, "no-outputs", "no neuron is marked as output")
        )

    if inputs:
        reachable = _reachable_from(network, inputs, forward=True)
        dead = sorted(set(ids) - reachable)
        if dead:
            issues.append(
                LintIssue(
                    LintLevel.WARNING,
                    "unreachable",
                    f"{len(dead)} neuron(s) unreachable from any input "
                    f"(e.g. {dead[:5]}) — they still cost crossbar columns",
                )
            )
    if outputs:
        useful = _reachable_from(network, outputs, forward=False)
        inert = sorted(set(ids) - useful)
        if inert:
            issues.append(
                LintIssue(
                    LintLevel.WARNING,
                    "inert",
                    f"{len(inert)} neuron(s) cannot influence any output "
                    f"(e.g. {inert[:5]})",
                )
            )

    zero_weight = [
        (s.pre, s.post) for s in network.synapses() if s.weight == 0.0
    ]
    if zero_weight:
        issues.append(
            LintIssue(
                LintLevel.WARNING,
                "zero-weight",
                f"{len(zero_weight)} synapse(s) carry zero weight "
                f"(e.g. {zero_weight[:5]}) — prunable for free",
            )
        )

    self_loops = [
        (s.pre, s.post) for s in network.synapses() if s.pre == s.post
    ]
    if self_loops:
        issues.append(
            LintIssue(
                LintLevel.WARNING,
                "self-loop",
                f"{len(self_loops)} self-loop(s) (e.g. {self_loops[:5]})",
            )
        )

    never_fire = []
    for neuron in network.neurons():
        if neuron.is_input:
            continue
        positive = sum(
            max(network.synapse(pre, neuron.id).weight, 0.0)
            for pre in network.predecessors(neuron.id)
        )
        if positive < neuron.threshold and network.neuron(neuron.id).leak == 1.0:
            # Perfect integrator: can still accumulate over time unless
            # it has NO positive drive at all.
            if positive == 0.0:
                never_fire.append(neuron.id)
        elif positive < neuron.threshold and neuron.leak < 1.0:
            # Leaky and under-driven per step: may never reach threshold
            # if leak loses more than one step's drive can replace.
            if positive * (1.0 / max(1.0 - neuron.leak, 1e-9)) < neuron.threshold:
                never_fire.append(neuron.id)
    if never_fire:
        issues.append(
            LintIssue(
                LintLevel.WARNING,
                "never-fires",
                f"{len(never_fire)} neuron(s) can never reach threshold "
                f"(e.g. {sorted(never_fire)[:5]})",
            )
        )

    return sorted(issues, key=lambda i: (i.level.value, i.code))


def has_errors(issues: list[LintIssue]) -> bool:
    return any(i.level is LintLevel.ERROR for i in issues)
