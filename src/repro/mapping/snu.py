"""Static Network Utilization optimization (Section IV-C).

After area optimization, the paper freezes the solution's enabled-crossbar
set ("restricted the set of enabled crossbars to not increase area") and
re-optimizes placement to minimize routing:

- objective 9 minimizes *all* route endpoints, ``sum s[i, j]``;
- objective 11 minimizes *global* routes only, ``sum s[i, j] - b[i, j]``,
  with ``b = x AND s`` linearized by constraint set 10.

:class:`RouteModel` also accepts per-source spike weights, which turns
objective 11 into the PGO objective 12 (see :mod:`repro.mapping.pgo`);
weight-zero sources drop out of the objective and need no ``b`` variable —
the variable-elimination the paper credits for PGO's 1-3 orders-of-
magnitude solver-time advantage.

Like :class:`~repro.mapping.axon_sharing.AreaModel`, every constraint
family — including the per-(hot source, slot) linearization rows (10) —
is emitted as a columnar :meth:`~repro.ilp.model.Model.add_block` over
index arrays, and warm starts / extraction are dense-vector end to end.
The y/x/s layout and the families shared with the area model come from
:class:`~repro.mapping.axon_sharing._SlotFormulation` (one copy of the
index arithmetic); this module only owns the area budget, the b
variables and the routing objectives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Mapping as MappingT, Sequence

import numpy as np

from ..ilp.expr import LinExpr, Variable
from ..ilp.model import Model, Sense
from ..ilp.result import SolveResult
from .axon_sharing import _SlotFormulation, b_name
from .problem import MappingProblem
from .solution import Mapping


class RouteObjective(enum.Enum):
    """Which routing quantity to minimize."""

    TOTAL = "total"  # objective 9: local + global endpoints
    GLOBAL = "global"  # objective 11 (or 12 when weighted)


@dataclass(frozen=True)
class RouteModelOptions:
    """Options for the route/packet formulation.

    ``symmetry`` applies slot-permutation symmetry breaking over the
    allowed-slot set (see :mod:`repro.mapping.symmetry`); it defaults to
    ``"off"`` because route stages are warm-started and historically ran
    unconstrained — :class:`~repro.mapping.pipeline.MappingPipeline`
    threads the formulation-level ``"lex"`` opt-in through here.
    """

    objective: RouteObjective = RouteObjective.GLOBAL
    include_b_lower: bool = True  # the b >= s + x - 1 row of constraint 10
    include_upper_link: bool = True  # constraint 5
    area_budget: float | None = None  # default: area of the allowed slots
    symmetry: str = "off"  # "off" | "order" | "lex"

    def __post_init__(self) -> None:
        from .symmetry import check_level

        check_level(self.symmetry)


class RouteModel:
    """Routing-optimal placement over a frozen set of allowed crossbars."""

    def __init__(
        self,
        problem: MappingProblem,
        allowed_slots: Sequence[int],
        options: RouteModelOptions | None = None,
        weights: MappingT[int, int] | None = None,
    ) -> None:
        """``weights`` maps source neuron -> profiled spike count (PGO);
        ``None`` means unweighted SNU (every route costs 1)."""
        if not allowed_slots:
            raise ValueError("allowed_slots must not be empty")
        seen = set()
        for j in allowed_slots:
            if not 0 <= j < problem.num_slots:
                raise ValueError(f"slot {j} not in architecture")
            if j in seen:
                raise ValueError(f"slot {j} listed twice")
            seen.add(j)
        total_outputs = sum(
            problem.architecture.slot(j).outputs for j in allowed_slots
        )
        if total_outputs < problem.num_neurons:
            raise ValueError(
                f"allowed slots provide {total_outputs} output lines for "
                f"{problem.num_neurons} neurons; no placement can exist"
            )
        self.problem = problem
        self.slots = sorted(allowed_slots)
        self.options = options or RouteModelOptions()
        self.weights = dict(weights) if weights is not None else None
        self.model = Model("routes")
        self.x: dict[tuple[int, int], Variable] = {}
        self.s: dict[tuple[int, int], Variable] = {}
        self.b: dict[tuple[int, int], Variable] = {}
        self.y: dict[int, Variable] = {}
        self._build()

    # ------------------------------------------------------------------
    def _weight(self, k: int) -> int:
        if self.weights is None:
            return 1
        return int(self.weights.get(k, 0))

    def _build(self) -> None:
        prob = self.problem
        model = self.model
        opts = self.options
        sources = prob.sources()
        slots = self.slots

        # Shared y/x/s layout over the frozen allowed-slot set, plus a b
        # block (hot-source-major) appended after it.
        layout = _SlotFormulation(prob, slots)
        self._layout = layout
        self.y, self.x, self.s = layout.register_variables(model)
        m, p = layout.num_model_slots, layout.num_sources
        xb, sb = layout.x_base, layout.s_base
        kpos_of = layout.kpos_of
        all_j = np.arange(m, dtype=np.int64)

        layout.emit_place(model)  # (3)
        layout.emit_outputs(model)  # (4)
        layout.emit_inputs(model)  # (7)
        layout.emit_share(model)  # (6) per-edge
        if opts.include_upper_link:
            layout.emit_uplink(model)  # (5)

        # Area must not regress: the allowed set is frozen and disabling
        # slots can only reduce area, but a budget row keeps this explicit.
        budget = opts.area_budget
        if budget is None:
            budget = float(layout.areas.sum())
        model.add_block(
            rows=np.zeros(m, dtype=np.int64),
            cols=all_j,
            coefs=layout.areas,
            sense=Sense.LE,
            rhs=float(budget),
            num_rows=1,
            name="area_budget",
        )

        # Slot-permutation symmetry breaking over the allowed set: slots of
        # one crossbar type are interchangeable in every row and objective
        # of this model, so orbit-ordering rows only discard duplicates.
        from .rounding import MappingRoundingGuide
        from .symmetry import emit_symmetry, slot_orbits

        if opts.symmetry != "off":
            emit_symmetry(
                model,
                slot_orbits(prob.architecture, slots),
                layout.num_neurons,
                xb,
                m,
                opts.symmetry,
            )

        # Duck-typed hook for the LP-rounding backend (see
        # repro.mapping.rounding): route models repair/improve incumbents
        # under the global-routes score within the frozen area budget.
        model.rounding_guide = MappingRoundingGuide(
            handle=self, objective="routes", symmetry=opts.symmetry
        )

        # Objective support: sources with nonzero weight ("hot").  Silent
        # sources (weight 0) vanish from the objective — and, below, need
        # no b variables at all (the PGO variable-elimination speedup).
        hot = [k for k in sources if self._weight(k) > 0]
        hot_arr = np.asarray(hot, dtype=np.int64)
        h = hot_arr.size
        w_hot = np.array([self._weight(k) for k in hot], dtype=np.float64)
        hot_s_cols = (
            sb + kpos_of[hot_arr].repeat(m) * m + np.tile(all_j, h)
            if h
            else np.empty(0, dtype=np.int64)
        )

        if opts.objective is RouteObjective.TOTAL:
            # Objective 9: every route endpoint counts (weighted for PGO).
            model.minimize(
                LinExpr(dict(zip(hot_s_cols.tolist(), np.repeat(w_hot, m).tolist())))
            )
            return

        # Objective 11/12: only global routes count.  b[k, j] = x AND s is
        # only materialized where its objective coefficient is nonzero.
        bb = sb + p * m
        self._b_base = bb
        self._hot = hot_arr
        self._hpos_of = {int(k): hpos for hpos, k in enumerate(hot)}
        bs = model.add_binaries(b_name(k, j) for k in hot for j in slots)
        self.b = dict(zip(((k, j) for k in hot for j in slots), bs))
        if h:
            b_rows = np.arange(h * m, dtype=np.int64)
            b_cols = bb + np.arange(h * m, dtype=np.int64)
            hot_x_cols = xb + hot_arr.repeat(m) * m + np.tile(all_j, h)
            ones = np.ones(h * m)
            # (10a) b <= s:  b[k, j] - s[k, j] <= 0.
            model.add_block(
                rows=np.concatenate([b_rows, b_rows]),
                cols=np.concatenate([b_cols, hot_s_cols]),
                coefs=np.concatenate([ones, -ones]),
                sense=Sense.LE,
                rhs=0.0,
                num_rows=h * m,
                name="b_le_s",
            )
            # (10b) b <= x:  b[k, j] - x[k, j] <= 0.
            model.add_block(
                rows=np.concatenate([b_rows, b_rows]),
                cols=np.concatenate([b_cols, hot_x_cols]),
                coefs=np.concatenate([ones, -ones]),
                sense=Sense.LE,
                rhs=0.0,
                num_rows=h * m,
                name="b_le_x",
            )
            if opts.include_b_lower:
                # (10c) b >= s + x - 1:  b[k, j] - s[k, j] - x[k, j] >= -1.
                model.add_block(
                    rows=np.concatenate([b_rows, b_rows, b_rows]),
                    cols=np.concatenate([b_cols, hot_s_cols, hot_x_cols]),
                    coefs=np.concatenate([ones, -ones, -ones]),
                    sense=Sense.GE,
                    rhs=-1.0,
                    num_rows=h * m,
                    name="b_ge",
                )
        obj_cols = np.concatenate(
            [hot_s_cols, bb + np.arange(h * m, dtype=np.int64)]
        )
        obj_coefs = np.concatenate([np.repeat(w_hot, m), -np.repeat(w_hot, m)])
        model.minimize(LinExpr(dict(zip(obj_cols.tolist(), obj_coefs.tolist()))))

    # ------------------------------------------------------------------
    def warm_start_from(self, mapping: Mapping) -> np.ndarray:
        """Dense consistent assignment from a mapping on allowed slots.

        Under a symmetry-broken model the mapping is first canonicalized
        (within the allowed set) so the seed satisfies the ordering rows;
        the relabeling preserves area, routes and packets.
        """
        allowed = set(self.slots)
        outside = {j for j in mapping.assignment.values() if j not in allowed}
        if outside:
            raise ValueError(
                f"mapping uses slots {sorted(outside)} outside the allowed set"
            )
        if self.options.symmetry != "off":
            from .symmetry import canonicalize

            mapping = canonicalize(mapping, self.options.symmetry, self.slots)
        x0 = self._layout.warm_vector(self.model, mapping)
        # b[k, j] = x AND s: set where the hot source itself sits on the
        # slot its axon is routed to.
        hpos_of = getattr(self, "_hpos_of", {})
        if hpos_of:
            pos = self._layout.slot_pos_of
            m = self._layout.num_model_slots
            for j in mapping.enabled_slots():
                for k in mapping.axon_inputs(j):
                    hpos = hpos_of.get(int(k))
                    if hpos is not None and mapping.assignment[k] == j:
                        x0[self._b_base + hpos * m + pos[j]] = 1.0
        return x0

    def extract_mapping(self, result: SolveResult) -> Mapping:
        if not result.status.has_solution():
            raise ValueError(f"no solution to extract (status {result.status})")
        if result.x is not None:
            return self.mapping_from_x(result.x)
        if result.values is None:
            raise ValueError(f"no solution to extract (status {result.status})")
        return self.mapping_from_values(result.values)

    def mapping_from_x(self, x: np.ndarray) -> Mapping:
        """Recover a placement from a dense index-ordered assignment.

        Unlike the area model this does not police double placements (the
        name-keyed path never did either); ``Mapping.validate`` still
        rejects anything structurally inconsistent.
        """
        assignment, _counts = self._layout.placement_from_x(x)
        return self._validated(assignment)

    def mapping_from_values(self, values: MappingT[str, float]) -> Mapping:
        """Recover a placement from a raw name-keyed assignment."""
        assignment: dict[int, int] = {}
        for (i, j), var in self.x.items():
            if values.get(var.name, 0.0) > 0.5:
                assignment[i] = j
        return self._validated(assignment)

    def _validated(self, assignment: dict[int, int]) -> Mapping:
        mapping = Mapping(self.problem, assignment)
        issues = mapping.validate()
        if issues:
            raise AssertionError(f"ILP produced an invalid mapping: {issues[:3]}")
        return mapping


def build_snu_model(
    problem: MappingProblem,
    base_mapping: Mapping,
    objective: RouteObjective = RouteObjective.GLOBAL,
    options: RouteModelOptions | None = None,
) -> RouteModel:
    """SNU post-optimization over ``base_mapping``'s enabled crossbars."""
    opts = options or RouteModelOptions(objective=objective)
    if opts.objective is not objective:
        opts = replace(opts, objective=objective)
    if opts.area_budget is None:
        opts = replace(opts, area_budget=base_mapping.area())
    return RouteModel(problem, base_mapping.enabled_slots(), opts)
