#!/usr/bin/env python
"""Non-ideality and precision study: the physics behind crossbar sizing.

The paper's §II-B premise — "analog ReRAM crossbars face non-idealities
that limit crossbar dimensions" — in action:

1. map a network twice: ignoring weight precision, then bit-slicing-aware
   (8-bit weights on 2-bit cells = 4 columns per neuron) and report the
   area cost of precision;
2. execute the mapping under increasing IR-drop / quantization noise and
   measure spike-raster fidelity, showing why big crossbars degrade and
   small heterogeneous tiles win.

Run:  python examples/nonideal_precision_study.py
"""

from repro.experiments.report import percent_bar
from repro.ilp import HighsBackend, HighsOptions
from repro.mapping import (
    MappingProblem,
    PrecisionAreaModel,
    PrecisionSpec,
    greedy_first_fit,
)
from repro.mapping.axon_sharing import AreaModel
from repro.mca import (
    NonidealityModel,
    apply_nonidealities,
    fidelity,
    heterogeneous_architecture,
)
from repro.snn import layered_network


def main() -> None:
    network = layered_network([5, 12, 10, 4], connection_prob=0.4, seed=21)
    architecture = heterogeneous_architecture(network.num_neurons)
    problem = MappingProblem(network, architecture)
    solver = HighsBackend(HighsOptions(time_limit=10))

    # --- precision-aware area -------------------------------------------
    base_handle = AreaModel(problem)
    base = solver.solve(
        base_handle.model,
        warm_start=base_handle.warm_start_from(greedy_first_fit(problem)),
    )
    print(f"precision-unaware area : {base.objective:g} memristors")

    for bits in (4, 8):
        spec = PrecisionSpec(weight_bits=bits, cell_bits=2)
        handle = PrecisionAreaModel(problem, spec)
        result = solver.solve(handle.model)
        overhead = (result.objective - base.objective) / base.objective
        print(f"{bits}-bit weights on 2-bit cells ({spec.slices} slices/neuron): "
              f"area {result.objective:g} (+{100 * overhead:.0f}%)")

    # --- non-ideal execution fidelity -----------------------------------
    mapping = base_handle.extract_mapping(base)
    outputs = {
        j: architecture.slot(j).outputs for j in mapping.enabled_slots()
    }
    spikes = {nid: list(range(0, 32, 3)) for nid in network.input_ids()}

    print("\nexecution fidelity vs device/array non-idealities:")
    scenarios = [
        ("ideal devices", NonidealityModel(conductance_levels=4096)),
        ("4-bit cells", NonidealityModel(conductance_levels=16)),
        ("4-bit + write noise",
         NonidealityModel(conductance_levels=16, programming_sigma=0.15, seed=1)),
        ("4-bit + IR drop",
         NonidealityModel(conductance_levels=16, wire_resistance=0.4, seed=1)),
        ("harsh (2-bit, noise, faults)",
         NonidealityModel(conductance_levels=4, programming_sigma=0.3,
                          stuck_at_fraction=0.05, seed=1)),
    ]
    for name, model in scenarios:
        degraded = apply_nonidealities(network, mapping.assignment, outputs, model)
        report = fidelity(network, degraded, spikes, duration=32)
        print(f"  {name:30s} raster overlap {percent_bar(report.raster_jaccard)}")

    print("\n(decreasing overlap with harsher analog behaviour is the reason"
          "\n the paper's architectures cap crossbar input channels at 32)")


if __name__ == "__main__":
    main()
