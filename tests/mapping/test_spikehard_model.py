"""Structural tests of the SpikeHard bin-packing ILP itself."""

import pytest

from repro.ilp.highs_backend import HighsBackend
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mapping.spikehard import (
    SpikeHardPacker,
    form_mccs,
    make_mcc,
    singleton_mccs,
)
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network
from repro.snn.network import Network


@pytest.fixture
def problem():
    net = random_network(12, 24, seed=51, max_fan_in=5)
    arch = custom_architecture([(CrossbarType(8, 8), 8)])
    return MappingProblem(net, arch)


class TestBinPackingModel:
    def test_variable_count(self, problem):
        packer = SpikeHardPacker(problem)
        mccs = singleton_mccs(problem)
        model, z, y = packer.build_model(mccs)
        slots = problem.num_slots
        assert len(z) == len(mccs) * slots
        assert len(y) == slots
        assert model.num_vars == len(z) + len(y)

    def test_capacity_rows_use_aggregate_dims(self, problem):
        """The input-capacity row must sum MCC input demands — the
        documented Fig.-1 double counting."""
        packer = SpikeHardPacker(problem)
        mccs = form_mccs(problem, greedy_first_fit(problem))
        model, z, _ = packer.build_model(mccs)
        # Find the inputs row for slot 0 and check its coefficients equal
        # each MCC's aggregate input count.
        row = next(c for c in model.constraints if c.name == "inputs_0")
        for m, mcc in enumerate(mccs):
            var = z[(m, 0)]
            assert row.expr.coeffs.get(var.index, 0.0) == mcc.inputs

    def test_solution_places_every_mcc_once(self, problem):
        packer = SpikeHardPacker(problem)
        mccs = form_mccs(problem, greedy_first_fit(problem))
        model, z, _ = packer.build_model(mccs)
        result = HighsBackend().solve(model)
        for m in range(len(mccs)):
            placed = sum(
                1 for j in range(problem.num_slots)
                if result.value(z[(m, j)].name) > 0.5
            )
            assert placed == 1

    def test_symmetry_toggle(self, problem):
        mccs = singleton_mccs(problem)
        with_sym, _, _ = SpikeHardPacker(problem, symmetry_breaking=True).build_model(mccs)
        without, _, _ = SpikeHardPacker(problem, symmetry_breaking=False).build_model(mccs)
        assert with_sym.num_constraints > without.num_constraints


class TestMccSemantics:
    def test_shared_axon_counted_once_within_mcc(self):
        """INSIDE an MCC, axon sharing is honoured — the flaw is only in
        packing multiple MCCs together."""
        net = Network()
        for i in range(3):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(0, 2)
        arch = custom_architecture([(CrossbarType(4, 4), 2)])
        problem = MappingProblem(net, arch)
        together = make_mcc(problem, frozenset([1, 2]))
        assert together.inputs == 1  # one shared axon
        apart = [make_mcc(problem, frozenset([i])) for i in (1, 2)]
        assert sum(m.inputs for m in apart) == 2  # double counted
