"""Metrics spine: lock-consistent counters, histograms, the JSONL writer,
and the ``GET /metrics`` scrape end to end."""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.service.jobs import JobRegistry
from repro.service.metrics import (
    HISTOGRAM_WINDOW,
    JsonlWriter,
    ServiceMetrics,
    read_jsonl,
)
from repro.service.wire import JobSpec

pytestmark = pytest.mark.service


class TestServiceMetricsCounters:
    def test_multithreaded_hammer_counts_exactly(self):
        """Concurrent updates through one lock lose nothing.

        Each thread submits and finishes a matched number of job events,
        so a scrape at the end must balance to the sample — any drift
        means an increment was lost or a snapshot tore.
        """
        metrics = ServiceMetrics()
        threads_n, rounds = 8, 250
        barrier = threading.Barrier(threads_n)

        def hammer() -> None:
            barrier.wait()
            for _ in range(rounds):
                metrics.job_event({"event": "queued"})
                metrics.job_event({"event": "running"})
                metrics.job_event({"event": "result", "status": "ok"})
                metrics.job_event({"event": "done"})
                metrics.gauge_add("solves_in_flight", 1)
                metrics.gauge_add("solves_in_flight", -1)
                metrics.observe("queue_wait", 0.01)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            sys.setswitchinterval(old_interval)
        assert not any(thread.is_alive() for thread in threads)

        total = threads_n * rounds
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["jobs_submitted"] == total
        assert counters["jobs_started"] == total
        assert counters["jobs_finished"] == total
        assert counters["jobs_done"] == total
        assert counters["scenarios_total"] == total
        assert counters["scenarios_ok"] == total
        assert snapshot["gauges"]["solves_in_flight"] == 0
        assert snapshot["latency"]["queue_wait"]["count"] == total

    def test_job_event_classifies_every_transition(self):
        metrics = ServiceMetrics()
        metrics.job_event({"event": "queued"})
        metrics.job_event({"event": "running"})
        metrics.job_event({"event": "result", "status": "ok", "cached": True})
        metrics.job_event({"event": "result", "status": "error"})
        metrics.job_event({"event": "error"})
        counters = metrics.snapshot()["counters"]
        assert counters["scenarios_total"] == 2
        assert counters["scenarios_ok"] == 1
        assert counters["scenarios_error"] == 1
        assert counters["scenarios_cached"] == 1
        assert counters["jobs_finished"] == 1
        assert counters["jobs_error"] == 1
        assert "jobs_done" not in counters


class TestSolveHooks:
    def test_solve_finished_parses_portfolio_arms(self):
        """Worker payloads carry the winner as a backend tag; both pooled
        and serial runs are counted from that same wire shape."""
        metrics = ServiceMetrics()
        metrics.solves_dispatched(3)
        assert metrics.gauge("solves_in_flight") == 3
        metrics.solve_finished(
            {
                "status": "ok",
                "wall_time": 0.5,
                "stages": [
                    {"solve": {"backend": "portfolio[highs]"}},
                    {"solve": {"backend": "portfolio[bnb-interrupted]"}},
                ],
            }
        )
        metrics.solve_finished(
            {
                "status": "ok",
                "wall_time": 0.25,
                "stages": [{"solve": {"backend": "highs"}}, {"solve": None}],
            }
        )
        metrics.solve_finished({"status": "error", "stages": None})
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert metrics.gauge("solves_in_flight") == 0
        assert counters["mapper_jobs"] == 3
        assert counters["mapper_jobs_ok"] == 2
        assert counters["mapper_jobs_error"] == 1
        assert counters["ilp_solves"] == 3  # the None stage is not a solve
        assert snapshot["portfolio"]["races"] == 2
        assert snapshot["portfolio"]["wins"] == {"highs": 1, "bnb": 1}
        assert snapshot["portfolio"]["win_rates"] == {"highs": 0.5, "bnb": 0.5}
        assert snapshot["latency"]["solve_wall_time"]["count"] == 2

    def test_interrupted_jobs_get_their_own_counter(self):
        metrics = ServiceMetrics()
        metrics.solve_finished({"status": "ok", "interrupted": True, "stages": []})
        counters = metrics.snapshot()["counters"]
        assert counters["mapper_jobs_interrupted"] == 1
        assert "mapper_jobs_ok" not in counters

    def test_abandoned_solves_release_the_gauge(self):
        metrics = ServiceMetrics()
        metrics.solves_dispatched(5)
        metrics.solve_finished({"status": "ok", "stages": []})
        metrics.solves_abandoned(4)  # batch cancelled mid-flight
        assert metrics.gauge("solves_in_flight") == 0


class TestHistograms:
    def test_percentiles_over_a_known_population(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):  # 1..100, uniform
            metrics.observe("lag", float(value))
        body = metrics.snapshot()["latency"]["lag"]
        assert body["count"] == 100
        assert body["sum"] == pytest.approx(5050.0)
        assert body["max"] == 100.0
        assert body["p50"] == pytest.approx(51.0)
        assert body["p90"] == pytest.approx(91.0)
        assert body["p99"] == pytest.approx(100.0)

    def test_window_bounds_memory_but_count_is_lifetime(self):
        metrics = ServiceMetrics()
        for value in range(HISTOGRAM_WINDOW + 500):
            metrics.observe("lag", float(value))
        body = metrics.snapshot()["latency"]["lag"]
        assert body["count"] == HISTOGRAM_WINDOW + 500
        # Percentiles slide with the window: old cheap samples aged out.
        assert body["p50"] >= 500.0

    def test_empty_snapshot_has_no_histograms(self):
        assert ServiceMetrics().snapshot()["latency"] == {}


class TestJsonlWriter:
    def test_append_flush_read_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            for index in range(50):
                writer.append({"index": index})
            assert writer.flush(timeout=30)
        records = list(read_jsonl(path))
        assert [record["index"] for record in records] == list(range(50))

    def test_appends_after_close_are_dropped_not_raised(self, tmp_path):
        writer = JsonlWriter(tmp_path / "log.jsonl")
        writer.append({"index": 0})
        writer.close()
        writer.append({"index": 1})  # a racing worker must not crash
        assert [r["index"] for r in read_jsonl(writer.path)] == [0]

    def test_reader_skips_torn_and_garbage_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"ok": 1}\n'
            "not json at all\n"
            "\n"
            '["a", "list", "not", "an", "object"]\n'
            '{"ok": 2}\n'
            '{"torn": '  # no newline: a crashed writer's tail
        )
        assert [record["ok"] for record in read_jsonl(path)] == [1, 2]

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert list(read_jsonl(tmp_path / "never-written.jsonl")) == []

    def test_writer_heals_a_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"torn": ')  # crashed sibling, no newline
        with JsonlWriter(path) as writer:
            writer.append({"fresh": True})
            assert writer.flush(timeout=30)
        lines = path.read_text().splitlines()
        assert lines[0] == '{"torn": '  # terminated, not merged into ours
        assert json.loads(lines[1]) == {"fresh": True}

    def test_concurrent_appenders_never_tear_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlWriter(path) as writer:
            threads = [
                threading.Thread(
                    target=lambda worker=worker: [
                        writer.append({"worker": worker, "index": index})
                        for index in range(100)
                    ]
                )
                for worker in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert writer.flush(timeout=30)
        records = list(read_jsonl(path))
        assert len(records) == 400  # every line parsed — nothing torn


class TestRegistryObservers:
    def test_observers_see_one_record_per_transition(self, tiny_scenario):
        """The --log-jobs seam: observers get the journal-shaped records."""
        seen: list[dict] = []
        registry = JobRegistry(observers=(seen.append,))
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(job)
        registry.add_result(job, {"status": "ok", "scenario": "s"})
        registry.finish(job, "done")
        events = [record["event"] for record in seen]
        assert events == ["queued", "running", "result", "done"]
        assert all(record["job"] == job.id for record in seen)
        assert all("ts" in record for record in seen)
        # The queued record carries the resubmittable wire spec.
        assert seen[0]["spec"]["scenarios"]

    def test_observer_exceptions_are_the_observers_problem(self, tiny_scenario):
        """Registry calls observers synchronously; they must be cheap and
        non-throwing — this documents that a metrics sink (counter bumps,
        queue appends) satisfies the contract."""
        metrics = ServiceMetrics()
        registry = JobRegistry(observers=(metrics.job_event,))
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(job)
        registry.finish(job, "done")
        counters = metrics.snapshot()["counters"]
        assert counters["jobs_submitted"] == 1
        assert counters["jobs_finished"] == 1


class TestMetricsEndpoint:
    def test_scrape_is_consistent_after_real_work(
        self, live_service, tiny_scenario
    ):
        """End to end: two submissions (one a cache hit), then a scrape
        whose sections balance exactly — the acceptance invariants."""
        _, client = live_service
        first = client.wait(
            client.submit(scenarios=[tiny_scenario])["id"], timeout=60
        )
        second = client.wait(
            client.submit(scenarios=[tiny_scenario])["id"], timeout=60
        )
        assert first["status"] == "done" and second["status"] == "done"

        body = client.metrics()
        assert body["status"] == "ok"
        assert body["uptime"] > 0
        assert body["queue_depth"] == 0
        assert body["solves_in_flight"] == 0

        jobs = body["jobs"]
        assert jobs["submitted"] == 2
        assert jobs["started"] == 2
        assert jobs["finished"]["total"] == 2
        assert jobs["finished"]["done"] == 2
        assert jobs["by_state"] == {"done": 2}

        scenarios = body["scenarios"]
        assert scenarios["total"] == 2
        assert scenarios["ok"] == 2
        assert scenarios["cached"] == 1  # the repeat was a zero-solve hit

        cache = body["cache"]
        assert cache["hits"] + cache["misses"] == cache["lookups"]
        # The repeat was answered upstream, from the shared run store, so
        # the result cache saw exactly the first run's miss-then-store.
        assert cache["misses"] >= 1
        assert cache["stores"] >= 1

        solves = body["solves"]
        assert solves["mapper_jobs"] == solves["mapper_jobs_ok"] == 1
        assert solves["ilp_solves"] >= 1

        latency = body["latency"]
        for name in ("queue_wait", "job_duration", "solve_wall_time"):
            assert latency[name]["count"] >= 1
        assert latency["loop_lag"]["count"] >= 1  # the probe is alive
        assert body["store_entries"] >= 1

    def test_scrape_on_an_idle_daemon_is_all_zeros(self, live_service):
        _, client = live_service
        body = client.metrics()
        assert body["jobs"]["submitted"] == 0
        assert body["jobs"]["by_state"] == {}
        assert body["scenarios"]["total"] == 0
        assert body["portfolio"] == {"races": 0, "wins": {}, "win_rates": {}}
        assert body["solves_in_flight"] == 0
