"""Shared helpers for the exhibit reproductions."""

from __future__ import annotations

from dataclasses import dataclass

from ..batch.engine import BatchJob, BatchMapper, JobRecord
from ..ilp.highs_backend import HighsBackend, HighsOptions
from ..ilp.result import SolveResult
from ..mapping.axon_sharing import AreaModel
from ..mapping.greedy import greedy_first_fit
from ..mapping.pgo import SpikeProfile, build_pgo_model
from ..mapping.problem import MappingProblem
from ..mapping.snu import RouteObjective, build_snu_model
from ..mapping.solution import Mapping
from ..mca.architecture import (
    heterogeneous_architecture,
    homogeneous_architecture,
)
from ..snn.network import Network
from .runner import ExperimentConfig


def homo_problem(network: Network, config: ExperimentConfig) -> MappingProblem:
    """The §V-C homogeneous target: a pool of 16x16 crossbars."""
    arch = homogeneous_architecture(
        network.num_neurons, dimension=config.homo_dim, slack=config.homo_slack
    )
    return MappingProblem(network, arch)


def het_problem(network: Network, config: ExperimentConfig) -> MappingProblem:
    """The Table-II heterogeneous target."""
    arch = heterogeneous_architecture(
        network.num_neurons, max_slots_per_type=config.het_slots_per_type
    )
    return MappingProblem(network, arch)


def spikehard_problem(
    network: Network, config: ExperimentConfig, heterogeneous: bool
) -> MappingProblem:
    """A pool sized for SpikeHard's pessimistic axon arithmetic.

    MCC packing *sums* per-MCC input demands, so in the worst case
    (singleton MCCs) it needs ``sum_i fan_in(i)`` input lines across the
    pool — far more slots than the exact formulation ever enables.  The
    area objective only counts *enabled* slots, so the larger pool changes
    nothing except feasibility.
    """
    total_fan_in = sum(network.fan_in(i) for i in network.neuron_ids())
    if heterogeneous:
        per_type = max(
            config.het_slots_per_type,
            -(-total_fan_in // 4),  # ceil: every axon on a 4-input slot
        )
        arch = heterogeneous_architecture(
            network.num_neurons, max_slots_per_type=per_type
        )
        return MappingProblem(network, arch)
    demand = max(network.num_neurons, total_fan_in)
    # homogeneous_architecture opens ceil(slack * n / dim) slots; scale
    # slack so the pool covers the summed-input worst case with headroom.
    slack = max(config.homo_slack, 1.25 * demand / network.num_neurons)
    arch = homogeneous_architecture(
        network.num_neurons, dimension=config.homo_dim, slack=slack
    )
    return MappingProblem(network, arch)


@dataclass(frozen=True)
class OptimizedMapping:
    """A mapping plus the solve that produced it."""

    mapping: Mapping
    solve: SolveResult

    @property
    def det_time(self) -> float:
        return self.solve.det_time


def stage_backend(config: ExperimentConfig, time_limit: float | None):
    """The solver an exhibit stage should use under ``config``.

    Plain HiGHS by default; a racing portfolio when ``config.portfolio``
    is set.  (The evolution-trace exhibits are the exception — time-sliced
    re-solves are HiGHS-specific, see :func:`repro.ilp.highs_backend.
    solve_with_trace`.)
    """
    if config.portfolio:
        from ..batch.portfolio import portfolio_solver_factory

        return portfolio_solver_factory()(time_limit)
    return HighsBackend(HighsOptions(time_limit=time_limit))


def area_optimize(
    problem: MappingProblem,
    config: ExperimentConfig,
    warm: Mapping | None = None,
) -> OptimizedMapping:
    """Axon-sharing area optimization with a greedy warm start."""
    warm = warm if warm is not None else greedy_first_fit(problem)
    handle = AreaModel(problem)
    backend = stage_backend(config, config.area_time_limit)
    solve = backend.solve(handle.model, warm_start=handle.warm_start_from(warm))
    return OptimizedMapping(handle.extract_mapping(solve), solve)


def snu_optimize(
    problem: MappingProblem,
    base: Mapping,
    config: ExperimentConfig,
) -> OptimizedMapping:
    """SNU (global-route) post-optimization over a frozen crossbar set."""
    handle = build_snu_model(problem, base, RouteObjective.GLOBAL)
    backend = stage_backend(config, config.route_time_limit)
    solve = backend.solve(handle.model, warm_start=handle.warm_start_from(base))
    return OptimizedMapping(handle.extract_mapping(solve), solve)


def pgo_optimize(
    problem: MappingProblem,
    base: Mapping,
    profile: SpikeProfile,
    config: ExperimentConfig,
) -> OptimizedMapping:
    """PGO (packet) post-optimization over a frozen crossbar set."""
    handle = build_pgo_model(problem, base, profile)
    backend = stage_backend(config, config.route_time_limit)
    solve = backend.solve(handle.model, warm_start=handle.warm_start_from(base))
    return OptimizedMapping(handle.extract_mapping(solve), solve)


def batch_pipeline_records(
    named_problems: list[tuple[str, MappingProblem]],
    config: ExperimentConfig,
    stages: tuple[str, ...],
    profiles: dict[str, dict[int, int]] | None = None,
) -> dict[str, JobRecord]:
    """Run a multi-network pipeline sweep through the batch engine.

    Honors ``config.jobs`` (process pool width) and ``config.portfolio``
    (backend racing); with the defaults this is exactly the serial loop the
    exhibits used to run inline.  Per-job failures are re-raised — an
    exhibit's sweep is all-or-nothing.
    """
    jobs = [
        BatchJob.from_problem(
            name,
            problem,
            stages=stages,
            profile=(profiles or {}).get(name),
            area_time_limit=config.area_time_limit,
            route_time_limit=config.route_time_limit,
        )
        for name, problem in named_problems
    ]
    result = BatchMapper(jobs=config.jobs, portfolio=config.portfolio).map_all(jobs)
    failed = result.failed()
    if failed:
        details = "; ".join(f"{rec.name}: {rec.error}" for rec in failed)
        raise RuntimeError(f"batch sweep failed for {len(failed)} job(s): {details}")
    return {rec.name: rec for rec in result}


@dataclass(frozen=True)
class ExhibitResult:
    """A reproduced exhibit: text report plus machine-readable rows."""

    report: str
    rows: list[tuple]
