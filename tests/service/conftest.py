"""Shared fixtures for the service suite: one in-process daemon per test."""

from __future__ import annotations

import threading

import pytest

from repro.batch.cache import ResultCache
from repro.dse.explorer import Explorer
from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    WorkloadSpec,
)
from repro.service.client import ServiceClient
from repro.service.daemon import MappingService, make_server, run_server


@pytest.fixture
def tiny_scenario() -> Scenario:
    """A scenario whose area ILP solves in well under a second."""
    return Scenario(
        architecture=ArchitectureSpec(kind="homogeneous", dimension=12),
        workload=WorkloadSpec(network="C", scale=0.1, profile="uniform"),
        formulation=FormulationSpec(stages=("area",)),
    )


@pytest.fixture
def live_service():
    """A running daemon on a free port; yields (service, client)."""
    explorer = Explorer(cache=ResultCache(), time_limit=5.0)
    service = MappingService(explorer)
    server = make_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=run_server, args=(service, server), daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
    try:
        yield service, client
    finally:
        server.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
