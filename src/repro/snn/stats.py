"""Network attribute statistics (paper Table I).

Implements the columns of Table I: node/edge counts, maximum fan-in, edge
density, and the incoming/outgoing *Gini sparsity index* of Goswami et al.
[40] — the Gini coefficient of the in-/out-degree distribution, which the
paper uses to quantify structural sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import Network


def gini_index(values) -> float:
    """Gini coefficient of a non-negative sample.

    ``G = sum_ij |x_i - x_j| / (2 n^2 mean)``; 0 = perfectly uniform,
    -> 1 = maximally concentrated.  Zero-mean samples return 0.
    """
    x = np.sort(np.asarray(values, dtype=float))
    if x.size == 0:
        return 0.0
    if np.any(x < 0):
        raise ValueError("Gini index requires non-negative values")
    total = x.sum()
    if total == 0:
        return 0.0
    n = x.size
    # Equivalent O(n log n) form using the sorted cumulative sum.
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * x).sum() - (n + 1) * total) / (n * total))


def edge_density(network: Network) -> float:
    """Directed edge density E / (N * (N - 1)) (self-loops excluded)."""
    n = network.num_neurons
    if n < 2:
        return 0.0
    return network.num_synapses / (n * (n - 1))


def max_fan_in(network: Network) -> int:
    """Largest in-degree — the minimum crossbar input width needed."""
    return max((network.fan_in(i) for i in network.neuron_ids()), default=0)


def max_fan_out(network: Network) -> int:
    return max((network.fan_out(i) for i in network.neuron_ids()), default=0)


@dataclass(frozen=True)
class NetworkStats:
    """One row of Table I."""

    name: str
    node_count: int
    edge_count: int
    max_fan_in: int
    edge_density: float
    gini_incoming: float
    gini_outgoing: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.node_count,
            self.edge_count,
            self.max_fan_in,
            self.edge_density,
            self.gini_incoming,
            self.gini_outgoing,
        )


def network_stats(network: Network) -> NetworkStats:
    """Compute the full Table-I attribute row for a network."""
    ids = network.neuron_ids()
    in_degrees = [network.fan_in(i) for i in ids]
    out_degrees = [network.fan_out(i) for i in ids]
    return NetworkStats(
        name=network.name,
        node_count=network.num_neurons,
        edge_count=network.num_synapses,
        max_fan_in=max(in_degrees, default=0),
        edge_density=edge_density(network),
        gini_incoming=gini_index(in_degrees),
        gini_outgoing=gini_index(out_degrees),
    )
