"""Fig. 3 bench: heterogeneous area evolution + crossbar-size breakdown.

Shape checks: the incumbent stream is monotonically improving, and the
best solutions prefer tall multi-macro crossbars (the paper's key
observation about structural sparsity).
"""

from bench_config import SMALL, once
from repro.experiments.fig3 import run_network
from repro.experiments.networks import NETWORK_NAMES


def test_benchmark_fig3(benchmark):
    def run():
        return [run_network(name, SMALL) for name in NETWORK_NAMES]

    results = once(benchmark, run)
    tall_seen = 0
    for res in results:
        areas = [p.area for p in res.evolution]
        assert areas == sorted(areas, reverse=True), res.network
        assert res.best_mapping.is_valid()
        hist = res.best_mapping.crossbar_histogram()
        if any(_is_tall(label) for label in hist):
            tall_seen += 1
    # Sparse networks should pull most solutions toward stacked macros.
    assert tall_seen >= 3, f"only {tall_seen}/5 networks used tall crossbars"


def _is_tall(label: str) -> bool:
    inputs, outputs = map(int, label.split("x"))
    return inputs > outputs
