#!/usr/bin/env python
"""Area study: homogeneous vs heterogeneous pools vs every baseline.

For one Table-I twin network, compares the area (memristor count) of:

- greedy first-fit, spectral clustering, and KL-refined mappings,
- the SpikeHard MCC bin-packing baseline (iterated to convergence),
- the paper's axon-sharing ILP,

on both the 16x16 homogeneous pool and the Table-II heterogeneous pool —
the paper's Fig. 2 in miniature, with all baselines in one table.

Run:  python examples/heterogeneous_area_study.py [scale]
"""

import sys

from repro.experiments import ExperimentConfig, format_table, paper_network
from repro.experiments.common import (
    area_optimize,
    het_problem,
    homo_problem,
    spikehard_problem,
)
from repro.ilp import HighsOptions
from repro.mapping import (
    greedy_first_fit,
    iterate_spikehard,
    kl_refine,
    spectral_mapping,
)


def study(problem, sh_problem, config) -> dict[str, float]:
    greedy = greedy_first_fit(problem)
    results = {"greedy first-fit": greedy.area()}
    results["spectral clustering"] = spectral_mapping(problem, seed=1).area()
    results["KL refinement"] = kl_refine(problem, greedy).area()
    spikehard = iterate_spikehard(
        sh_problem,
        solver_options=HighsOptions(time_limit=config.area_time_limit),
    )
    results["SpikeHard (MCC, iterated)"] = spikehard.mapping.area()
    results["axon-sharing ILP (ours)"] = area_optimize(problem, config).mapping.area()
    return results


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    config = ExperimentConfig(scale=scale, area_time_limit=15)
    network = paper_network("A", scale=scale)
    print(f"network A twin at scale {scale}: "
          f"{network.num_neurons} neurons / {network.num_synapses} synapses\n")

    homo = study(
        homo_problem(network, config),
        spikehard_problem(network, config, heterogeneous=False),
        config,
    )
    het = study(
        het_problem(network, config),
        spikehard_problem(network, config, heterogeneous=True),
        config,
    )

    rows = [
        (method, homo[method], het[method],
         f"{100 * (1 - het[method] / homo[method]):.1f}%")
        for method in homo
    ]
    print(format_table(
        ["method", "homogeneous area", "heterogeneous area", "het saves"], rows
    ))
    best_h = min(homo.values())
    best_t = min(het.values())
    print(f"\nbest homogeneous {best_h:g} -> best heterogeneous {best_t:g} "
          f"({100 * (1 - best_t / best_h):.1f}% further reduction; "
          "paper reports 66.9-72.7%)")


if __name__ == "__main__":
    main()
