"""Tests for solve_with_trace details and HighsOptions plumbing."""

import pytest

from repro.ilp.expr import lin_sum
from repro.ilp.highs_backend import HighsBackend, HighsOptions, solve_with_trace
from repro.ilp.model import Model
from repro.ilp.result import SolveStatus


def cover_model():
    m = Model("cover")
    sets = {"a": ([0, 1, 2], 3), "b": ([1, 3], 4), "c": ([3, 4], 2), "d": ([0, 4], 4)}
    xs = {name: m.add_binary(name) for name in sets}
    for element in range(5):
        covering = [xs[n] for n, (members, _) in sets.items() if element in members]
        m.add(lin_sum(covering) >= 1)
    m.minimize(lin_sum(cost * xs[n] for n, (_, cost) in sets.items()))
    return m


class TestHighsOptions:
    def test_to_scipy_passes_limits(self):
        opts = HighsOptions(time_limit=3.5, mip_rel_gap=0.01, node_limit=7)
        scipy_opts = opts.to_scipy()
        assert scipy_opts["time_limit"] == 3.5
        assert scipy_opts["mip_rel_gap"] == 0.01
        assert scipy_opts["node_limit"] == 7
        assert scipy_opts["disp"] is False

    def test_defaults_omit_limits(self):
        scipy_opts = HighsOptions().to_scipy()
        assert "time_limit" not in scipy_opts
        assert "node_limit" not in scipy_opts

    def test_gap_option_accepts_suboptimal_stop(self):
        # A generous gap still returns a solution with status optimal-or-
        # feasible; both are usable downstream.
        res = HighsBackend(HighsOptions(mip_rel_gap=0.5)).solve(cover_model())
        assert res.status.has_solution()


class TestSolveWithTrace:
    def test_warm_start_is_time_zero_incumbent(self):
        warm = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}  # cost 13
        res = solve_with_trace(cover_model(), total_time=2.0, num_slices=3,
                               warm_start=warm)
        assert res.incumbents[0].det_time == 0.0
        assert res.incumbents[0].objective == pytest.approx(13.0)
        assert res.incumbents[-1].objective == pytest.approx(5.0)

    def test_trace_det_times_nondecreasing(self):
        res = solve_with_trace(cover_model(), total_time=1.0, num_slices=3)
        stamps = [inc.det_time for inc in res.incumbents]
        assert stamps == sorted(stamps)

    def test_stops_early_on_optimal(self):
        res = solve_with_trace(cover_model(), total_time=60.0, num_slices=4)
        assert res.status is SolveStatus.OPTIMAL
        assert res.wall_time < 30.0  # nowhere near the nominal budget

    def test_incumbent_values_usable(self):
        model = cover_model()
        res = solve_with_trace(model, total_time=1.0, num_slices=2)
        for inc in res.incumbents:
            assert inc.values is not None
            assert model.check_feasible(dict(inc.values)) == []


class TestResultHelpers:
    def test_gap_and_value(self):
        res = HighsBackend().solve(cover_model())
        assert res.gap() == pytest.approx(0.0, abs=1e-6)
        assert res.value("a") in (0.0, 1.0)

    def test_value_without_solution_raises(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 0.4)
        m.add(x <= 0.6)
        m.minimize(x)
        res = HighsBackend().solve(m)
        with pytest.raises(ValueError):
            res.value("x")
