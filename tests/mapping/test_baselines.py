"""Tests for the baselines: greedy, SpikeHard, KL refinement, spectral."""

import pytest

from repro.ilp.highs_backend import HighsBackend
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.kl_partition import kl_refine
from repro.mapping.problem import MappingProblem
from repro.mapping.spectral import spectral_mapping
from repro.mapping.spikehard import (
    SpikeHardPacker,
    form_mccs,
    iterate_spikehard,
    make_mcc,
    singleton_mccs,
)
from repro.mca.architecture import custom_architecture, homogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network
from repro.snn.network import Network


@pytest.fixture
def problem():
    net = random_network(16, 32, seed=9, max_fan_in=6)
    arch = homogeneous_architecture(16, dimension=8, slack=3.0)
    return MappingProblem(net, arch)


class TestGreedy:
    def test_produces_valid_mapping(self, problem):
        mapping = greedy_first_fit(problem)
        assert mapping.is_valid()

    def test_all_orderings_valid(self, problem):
        for order in ("bfs", "fan_in", "id"):
            assert greedy_first_fit(problem, order=order).is_valid()

    def test_unknown_order_rejected(self, problem):
        with pytest.raises(ValueError, match="unknown ordering"):
            greedy_first_fit(problem, order="zigzag")

    def test_deterministic(self, problem):
        a = greedy_first_fit(problem)
        b = greedy_first_fit(problem)
        assert a.assignment == b.assignment

    def test_raises_when_pool_exhausted(self):
        net = random_network(10, 20, seed=2, max_fan_in=4)
        arch = custom_architecture([(CrossbarType(4, 4), 1)])
        prob = MappingProblem(net, arch)
        with pytest.raises(RuntimeError, match="greedy packing failed"):
            greedy_first_fit(prob)


class TestSpikeHard:
    def test_mcc_dimensions(self, problem):
        mcc = make_mcc(problem, frozenset([0, 1]))
        assert mcc.outputs == 2
        assert mcc.inputs == problem.axon_demand({0, 1})

    def test_empty_mcc_rejected(self):
        from repro.mapping.spikehard import MCC

        with pytest.raises(ValueError):
            MCC(frozenset(), 0, 0)

    def test_form_mccs_partitions_neurons(self, problem):
        initial = greedy_first_fit(problem)
        mccs = form_mccs(problem, initial)
        covered = sorted(n for m in mccs for n in m.neurons)
        assert covered == problem.network.neuron_ids()

    def test_mccs_respect_initial_crossbars(self, problem):
        initial = greedy_first_fit(problem)
        for mcc in form_mccs(problem, initial):
            slots = {initial.assignment[n] for n in mcc.neurons}
            assert len(slots) == 1

    def test_singleton_mccs(self, problem):
        mccs = singleton_mccs(problem)
        assert len(mccs) == problem.num_neurons
        assert all(m.outputs == 1 for m in mccs)

    def test_packing_produces_valid_mapping(self, problem):
        result = SpikeHardPacker(problem).pack(
            form_mccs(problem, greedy_first_fit(problem))
        )
        assert result.mapping.is_valid()

    def test_double_counting_never_beats_axon_sharing(self, problem):
        """SpikeHard's area can never be below the exact optimum."""
        sh = iterate_spikehard(problem)
        handle = AreaModel(problem)
        exact = HighsBackend().solve(
            handle.model,
            warm_start=handle.warm_start_from(greedy_first_fit(problem)),
        )
        assert sh.mapping.area() >= exact.objective - 1e-9

    def test_iteration_monotone_until_convergence(self, problem):
        result = iterate_spikehard(problem, max_iterations=6)
        improving = result.area_history[: result.iterations]
        assert improving == sorted(improving, reverse=True)

    def test_singleton_start_is_pessimistic(self):
        """Fig.-1 motif: singleton MCCs double-count the shared axon."""
        net = Network("fig1")
        for i in range(4):
            net.add_neuron(i, is_input=(i == 0))
        for consumer in (1, 2, 3):
            net.add_synapse(0, consumer)
        arch = custom_architecture([(CrossbarType(2, 4), 4)])
        problem = MappingProblem(net, arch)
        packer = SpikeHardPacker(problem)
        singleton_result = packer.pack(singleton_mccs(problem))
        # Exact optimum: everything in ONE 2x4 crossbar (shared axon).
        handle = AreaModel(problem)
        exact = HighsBackend().solve(handle.model)
        assert exact.objective == pytest.approx(8.0)
        # Singletons claim 1 input line *each* for the same axon: the three
        # consumers alone need 3 summed input lines > 2 per crossbar.
        assert singleton_result.mapping.area() > exact.objective

    def test_max_iterations_validated(self, problem):
        with pytest.raises(ValueError):
            iterate_spikehard(problem, max_iterations=0)


class TestKlRefine:
    def test_never_increases_global_routes(self, problem):
        initial = greedy_first_fit(problem)
        refined = kl_refine(problem, initial)
        assert refined.global_routes() <= initial.global_routes()
        assert refined.is_valid()

    def test_area_never_increases(self, problem):
        initial = greedy_first_fit(problem)
        refined = kl_refine(problem, initial)
        assert refined.area() <= initial.area() + 1e-9

    def test_max_passes_validated(self, problem):
        with pytest.raises(ValueError):
            kl_refine(problem, max_passes=0)


class TestSpectral:
    def test_produces_valid_mapping(self, problem):
        mapping = spectral_mapping(problem, seed=3)
        assert mapping.is_valid()

    def test_respects_cluster_count_hint(self, problem):
        mapping = spectral_mapping(problem, num_clusters=4, seed=3)
        assert mapping.is_valid()
        assert len(mapping.enabled_slots()) >= 1

    def test_deterministic_given_seed(self, problem):
        a = spectral_mapping(problem, seed=5)
        b = spectral_mapping(problem, seed=5)
        assert a.assignment == b.assignment
