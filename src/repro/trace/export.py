"""Trace exporters: span-tree text, Chrome trace-event JSON, slow-span view.

Everything here is pure functions over the plain record dicts the
journals store, so the ``repro trace`` CLI and the daemon's
``GET /jobs/<id>/trace`` endpoint share one implementation.

The Chrome export emits the `Trace Event Format`_ ("X" complete events
plus process-name metadata), which loads directly in Perfetto or
``chrome://tracing``.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from .spans import Span, TraceEvent, parse_record


def parse_records(records: list[dict]) -> tuple[list[Span], list[TraceEvent]]:
    """Split raw journal dicts into typed spans and events (junk dropped)."""
    spans: list[Span] = []
    events: list[TraceEvent] = []
    for record in records:
        parsed = parse_record(record)
        if isinstance(parsed, Span):
            spans.append(parsed)
        elif isinstance(parsed, TraceEvent):
            events.append(parsed)
    return spans, events


def trace_ids(records: list[dict]) -> list[str]:
    """Distinct trace ids in first-appearance order."""
    seen: list[str] = []
    for record in records:
        trace_id = record.get("trace")
        if isinstance(trace_id, str) and trace_id not in seen:
            seen.append(trace_id)
    return seen


def render_tree(records: list[dict]) -> str:
    """Human-readable span tree with inline events.

    Spans nest under their parents (orphans — parents lost to a torn
    journal — render at the root); events attach to the span they were
    recorded against.  Durations are milliseconds, offsets are relative
    to the trace's earliest span start.
    """
    spans, events = parse_records(records)
    if not spans and not events:
        return "(no trace records)"
    by_parent: dict[str | None, list[Span]] = {}
    span_ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in span_ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start)
    events_by_span: dict[str | None, list[TraceEvent]] = {}
    for trace_event in events:
        key = trace_event.span_id if trace_event.span_id in span_ids else None
        events_by_span.setdefault(key, []).append(trace_event)
    origin = min(
        [span.start for span in spans] + [e.ts for e in events]
    )
    lines: list[str] = []
    for trace_id in sorted({span.trace_id for span in spans} | {e.trace_id for e in events}):
        lines.append(f"trace {trace_id}")

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = _format_attrs(span.attrs)
        lines.append(
            f"{indent}{span.name}  +{(span.start - origin) * 1e3:.1f}ms "
            f"{span.duration * 1e3:.1f}ms  [{span.process}]{attrs}"
        )
        for trace_event in sorted(
            events_by_span.get(span.span_id, ()), key=lambda e: e.ts
        ):
            lines.append(
                f"{indent}  * {trace_event.name}  "
                f"+{(trace_event.ts - origin) * 1e3:.1f}ms"
                f"{_format_attrs(trace_event.attrs)}"
            )
        for child in by_parent.get(span.span_id, ()):  # noqa: B023
            emit(child, depth + 1)

    for root in by_parent.get(None, ()):
        emit(root, 1)
    for trace_event in sorted(events_by_span.get(None, ()), key=lambda e: e.ts):
        lines.append(
            f"  * {trace_event.name}  +{(trace_event.ts - origin) * 1e3:.1f}ms"
            f"{_format_attrs(trace_event.attrs)}"
        )
    return "\n".join(lines)


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return "  {" + ", ".join(parts) + "}"


def slowest_spans(records: list[dict], limit: int = 10) -> list[Span]:
    """The ``limit`` longest spans, descending by duration."""
    spans, _ = parse_records(records)
    spans.sort(key=lambda s: s.duration, reverse=True)
    return spans[: max(0, limit)]


def chrome_trace(records: list[dict]) -> dict:
    """Records -> Chrome trace-event JSON (Perfetto-loadable).

    Spans become ``"X"`` complete events (timestamps/durations in
    microseconds); progress events become ``"i"`` instants.  Process
    names map to synthetic integer pids, labelled via ``"M"`` metadata
    events so the viewer shows ``daemon-1234`` / ``worker-0-5678`` rows.
    """
    spans, events = parse_records(records)
    pids: dict[str, int] = {}

    def pid_of(process: str) -> int:
        if process not in pids:
            pids[process] = len(pids) + 1
        return pids[process]

    trace_events: list[dict] = []
    for span in spans:
        trace_events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "span",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid_of(span.process),
                "tid": 1,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    **span.attrs,
                },
            }
        )
    for trace_event in events:
        trace_events.append(
            {
                "ph": "i",
                "s": "p",
                "name": trace_event.name,
                "cat": "event",
                "ts": trace_event.ts * 1e6,
                "pid": pid_of(trace_event.process),
                "tid": 1,
                "args": {"trace_id": trace_event.trace_id, **trace_event.attrs},
            }
        )
    metadata = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "args": {"name": process or "unknown"},
        }
        for process, pid in pids.items()
    ]
    return {"displayTimeUnit": "ms", "traceEvents": metadata + trace_events}
