"""Result-cache semantics: identical hits, disk tier, invalidation keys."""

from __future__ import annotations

import json
import sys
import threading

import pytest

from repro.batch.cache import CACHE_FORMAT, CacheStats, ResultCache
from repro.batch.engine import BatchJob, BatchMapper

pytestmark = pytest.mark.batch


class TestCacheStatsConcurrency:
    def test_multithreaded_hammer_counts_exactly(self):
        """N threads of get/put traffic must lose zero counter updates.

        The regression this guards: bare ``+= 1`` increments are a
        read-modify-write race, so concurrent service worker threads
        silently dropped counts and ``/healthz`` drifted under load.
        """
        cache = ResultCache()
        cache.put("warm", {"answer": 1})  # 1 store up front
        threads_n, rounds = 8, 300
        barrier = threading.Barrier(threads_n)

        def hammer(worker: int) -> None:
            barrier.wait()
            for index in range(rounds):
                assert cache.get("warm") is not None  # hit
                assert cache.get(f"miss-{worker}-{index}") is None  # miss
                cache.put(f"key-{worker}-{index}", {"worker": worker})  # store

        # Force frequent preemption so lost updates would actually show.
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [
                threading.Thread(target=hammer, args=(worker,))
                for worker in range(threads_n)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            sys.setswitchinterval(old_interval)
        assert not any(thread.is_alive() for thread in threads)

        total = threads_n * rounds
        assert cache.stats.hits == total
        assert cache.stats.misses == total
        assert cache.stats.stores == total + 1
        assert cache.stats.lookups == 2 * total

    def test_reclassify_hit_as_miss_moves_both_counters(self):
        stats = CacheStats()
        stats.record_hit()
        stats.reclassify_hit_as_miss()
        assert (stats.hits, stats.misses) == (0, 1)
        assert stats.lookups == 1

    def test_snapshot_is_consistent(self):
        stats = CacheStats()
        stats.record_hit()
        stats.record_miss()
        stats.record_store()
        snapshot = stats.snapshot()
        assert snapshot["hits"] + snapshot["misses"] == snapshot["lookups"]
        assert snapshot == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "lookups": 2,
            "hit_rate": 0.5,
        }


class TestCacheHits:
    def test_hit_returns_identical_mapping(self, batch_jobs):
        cache = ResultCache()
        mapper = BatchMapper(jobs=1, cache=cache)
        first = mapper.map_all(batch_jobs)
        second = mapper.map_all(batch_jobs)
        assert all(not r.from_cache for r in first)
        assert all(r.from_cache for r in second)
        for fresh, cached in zip(first, second):
            for stage_name, stage in fresh.stages.items():
                hit = cached.stages[stage_name]
                assert hit.mapping.assignment == stage.mapping.assignment
                assert hit.metrics == stage.metrics
                assert hit.det_time == stage.det_time
                assert hit.mapping.is_valid()
        assert cache.stats.hits == len(batch_jobs)
        assert cache.stats.misses == len(batch_jobs)

    def test_failed_jobs_are_not_cached(self, batch_jobs):
        from repro.mca.architecture import custom_architecture
        from repro.mca.crossbar import CrossbarType
        from repro.snn.generators import random_network

        hub = random_network(8, 20, seed=9, max_fan_in=6, name="hub")
        bad = BatchJob(
            name="bad",
            network=hub,
            architecture=custom_architecture([(CrossbarType(4, 4), 8)]),
            stages=("area",),
        )
        cache = ResultCache()
        mapper = BatchMapper(jobs=1, cache=cache)
        mapper.map_all([bad])
        rerun = mapper.map_all([bad]).records[0]
        assert not rerun.from_cache
        assert cache.stats.stores == 0

    def test_portfolio_mode_keys_separately(self, batch_jobs):
        job = batch_jobs[0]
        assert job.fingerprint(portfolio=False) != job.fingerprint(portfolio=True)
        cache = ResultCache()
        BatchMapper(jobs=1, cache=cache).map_all([job])
        record = BatchMapper(jobs=1, portfolio=True, cache=cache).map_all([job])
        assert not record.records[0].from_cache

    def test_solver_specs_key_separately(self, batch_jobs):
        """Per-rung arm tuning must not collide with untuned (or other
        rungs') cache entries — the specs are part of the job key."""
        from repro.ilp.solve import SolverSpec

        job = batch_jobs[0]
        tuned = BatchJob(
            job.name, job.network, job.architecture, stages=job.stages,
            solver_specs=(SolverSpec("lp_round", time_limit=5.0),),
        )
        other = BatchJob(
            job.name, job.network, job.architecture, stages=job.stages,
            solver_specs=(SolverSpec("highs", emphasis="speed"),),
        )
        assert tuned.fingerprint() != job.fingerprint()
        assert tuned.fingerprint() != other.fingerprint()
        # Absent specs reproduce the historical key exactly.
        plain = BatchJob(
            job.name, job.network, job.architecture, stages=job.stages
        )
        assert plain.fingerprint() == job.fingerprint()

    def test_budgets_do_not_change_the_key(self, batch_jobs):
        job = batch_jobs[0]
        cheap = BatchJob(
            job.name, job.network, job.architecture, stages=job.stages,
            area_time_limit=0.5, route_time_limit=0.5,
        )
        assert cheap.fingerprint() == job.fingerprint()

    def test_limit_bound_entry_is_resolved_under_a_bigger_budget(self, batch_jobs):
        """A cached non-optimal (budget-starved) answer must not pin quality."""
        job = batch_jobs[0]
        starved = BatchJob(
            job.name, job.network, job.architecture, stages=("area",),
            area_time_limit=1e-4,  # HiGHS limits out -> warm-start fallback
        )
        cache = ResultCache()
        first = BatchMapper(jobs=1, cache=cache).map_all([starved]).records[0]
        assert first.stages["area"].solve_result.status.value == "feasible"

        generous = BatchJob(
            job.name, job.network, job.architecture, stages=("area",),
            area_time_limit=10.0,
        )
        rerun = BatchMapper(jobs=1, cache=cache).map_all([generous]).records[0]
        assert not rerun.from_cache  # bigger budget -> real re-solve
        assert (
            rerun.stages["area"].mapping.area()
            <= first.stages["area"].mapping.area() + 1e-9
        )

        # The optimal re-solve replaces the entry and is budget-independent.
        small_again = BatchMapper(jobs=1, cache=cache).map_all([starved]).records[0]
        assert small_again.from_cache


class TestDiskTier:
    def test_survives_across_cache_instances(self, batch_jobs, tmp_path):
        first = BatchMapper(
            jobs=1, cache=ResultCache(tmp_path / "cache")
        ).map_all(batch_jobs)
        reloaded = ResultCache(tmp_path / "cache")
        assert len(reloaded) == len(batch_jobs)
        second = BatchMapper(jobs=1, cache=reloaded).map_all(batch_jobs)
        assert all(r.from_cache for r in second)
        for fresh, cached in zip(first, second):
            assert (
                cached.final().mapping.assignment
                == fresh.final().mapping.assignment
            )

    def test_corrupt_entries_degrade_to_misses(self, batch_jobs, tmp_path):
        cache_dir = tmp_path / "cache"
        BatchMapper(jobs=1, cache=ResultCache(cache_dir)).map_all(batch_jobs[:1])
        (entry,) = cache_dir.glob("*.json")
        entry.write_text("{ not json")
        record = (
            BatchMapper(jobs=1, cache=ResultCache(cache_dir))
            .map_all(batch_jobs[:1])
            .records[0]
        )
        assert record.ok and not record.from_cache

    def test_stale_format_entries_are_ignored(self, batch_jobs, tmp_path):
        cache_dir = tmp_path / "cache"
        BatchMapper(jobs=1, cache=ResultCache(cache_dir)).map_all(batch_jobs[:1])
        (entry,) = cache_dir.glob("*.json")
        payload = json.loads(entry.read_text())
        payload["format"] = CACHE_FORMAT + 1
        entry.write_text(json.dumps(payload))
        cache = ResultCache(cache_dir)
        assert cache.get(payload["key"]) is None

    def test_contains_and_clear(self, batch_jobs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        mapper = BatchMapper(jobs=1, cache=cache)
        mapper.map_all(batch_jobs[:1])
        key = batch_jobs[0].fingerprint()
        assert key in cache
        cache.clear()
        assert key not in cache
        assert len(cache) == 0
