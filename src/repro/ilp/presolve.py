"""Model presolve: cheap reductions applied before a solve.

Real MILP solvers spend much of their effort in presolve; this module
implements the classic safe reductions on our :class:`Model` so the
pure-Python branch-and-bound backend starts from a smaller, tighter
instance (and so tests can reason about the transformations explicitly):

- **empty / tautological rows** (no variables, constant satisfies) drop;
- **singleton rows** tighten the single variable's bounds, then drop;
- **binary fixing**: bounds tightened into {0} or {1} fix the variable;
- **duplicate rows** (identical normalized coefficient vectors with
  compatible senses) keep only the tightest;
- **fixed-variable substitution** folds ``lb == ub`` variables into row
  constants.

All reductions are *safe*: the reduced model has exactly the same set of
feasible completions and optimal objective value.  :func:`presolve`
returns a new model plus a report of what happened; solutions of the
reduced model extend to the original by re-adding fixed variables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .expr import Constraint, LinExpr, Sense, VarType
from .model import Model


@dataclass
class PresolveReport:
    """What presolve changed."""

    rows_dropped: int = 0
    singleton_rows: int = 0
    duplicate_rows: int = 0
    vars_fixed: int = 0
    bounds_tightened: int = 0
    fixed_values: dict[str, float] = field(default_factory=dict)

    def total_reductions(self) -> int:
        return self.rows_dropped + self.vars_fixed + self.bounds_tightened


class InfeasibleModelError(ValueError):
    """Presolve proved the model infeasible."""


def _tighten_from_singleton(
    model: Model, con: Constraint, report: PresolveReport
) -> None:
    """Apply ``a*x (<=|>=|==) rhs`` to x's bounds."""
    ((idx, coef),) = con.expr.coeffs.items()
    var = model.variables[idx]
    rhs = -con.expr.constant
    bound = rhs / coef
    senses: list[Sense]
    if con.sense is Sense.EQ:
        senses = [Sense.LE, Sense.GE]
    else:
        senses = [con.sense]
    for sense in senses:
        # a*x <= rhs: upper bound if a > 0 else lower bound (and dually).
        upper = (sense is Sense.LE) == (coef > 0)
        if upper:
            if bound < var.ub - 1e-12:
                var.ub = bound
                report.bounds_tightened += 1
        else:
            if bound > var.lb + 1e-12:
                var.lb = bound
                report.bounds_tightened += 1
    if var.is_integer():
        var.lb = math.ceil(var.lb - 1e-9)
        var.ub = math.floor(var.ub + 1e-9)
    if var.lb > var.ub + 1e-9:
        raise InfeasibleModelError(
            f"singleton row on {var.name} empties its domain"
        )


def _row_signature(con: Constraint) -> tuple:
    """Normalized coefficient signature for duplicate detection."""
    items = sorted(con.expr.coeffs.items())
    if not items:
        return ()
    # Scale so the first coefficient is +1 (sign-normalized).
    scale = items[0][1]
    return tuple((i, round(c / scale, 12)) for i, c in items)


def presolve(model: Model) -> tuple[Model, PresolveReport]:
    """Produce a reduced, equivalent model.

    Raises :class:`InfeasibleModelError` when a reduction proves the
    model infeasible outright.
    """
    report = PresolveReport()

    # Pass 1: singleton rows tighten bounds on the ORIGINAL model's
    # variables (Variable objects are shared), then get dropped.
    survivors: list[Constraint] = []
    for con in model.constraints:
        nonzero = {i: c for i, c in con.expr.coeffs.items() if c != 0.0}
        if not nonzero:
            lhs = con.expr.constant
            ok = (
                (con.sense is Sense.LE and lhs <= 1e-9)
                or (con.sense is Sense.GE and lhs >= -1e-9)
                or (con.sense is Sense.EQ and abs(lhs) <= 1e-9)
            )
            if not ok:
                raise InfeasibleModelError(
                    f"constant constraint {con.name or con!r} is violated"
                )
            report.rows_dropped += 1
            continue
        if len(nonzero) == 1:
            _tighten_from_singleton(model, con, report)
            report.singleton_rows += 1
            report.rows_dropped += 1
            continue
        survivors.append(con)

    # Pass 2: collect fixed variables (including freshly fixed binaries).
    fixed: dict[int, float] = {}
    for var in model.variables:
        if var.ub - var.lb <= 1e-9:
            fixed[var.index] = var.lb
            report.fixed_values[var.name] = var.lb
    report.vars_fixed = len(fixed)

    # Pass 3: rebuild with fixed variables substituted into constants.
    reduced = Model(f"{model.name}-presolved")
    index_map: dict[int, int] = {}
    for var in model.variables:
        if var.index in fixed:
            continue
        new = reduced.add_var(var.name, var.lb, var.ub, var.vartype)
        index_map[var.index] = new.index

    def translate(expr: LinExpr) -> LinExpr:
        coeffs: dict[int, float] = {}
        constant = expr.constant
        for idx, coef in expr.coeffs.items():
            if idx in fixed:
                constant += coef * fixed[idx]
            elif coef != 0.0:
                coeffs[index_map[idx]] = coef
        return LinExpr(coeffs, constant)

    seen: dict[tuple, Constraint] = {}
    for con in survivors:
        expr = translate(con.expr)
        if not expr.coeffs:
            lhs = expr.constant
            ok = (
                (con.sense is Sense.LE and lhs <= 1e-9)
                or (con.sense is Sense.GE and lhs >= -1e-9)
                or (con.sense is Sense.EQ and abs(lhs) <= 1e-9)
            )
            if not ok:
                raise InfeasibleModelError(
                    f"constraint {con.name or con!r} violated after fixing"
                )
            report.rows_dropped += 1
            continue
        new_con = Constraint(expr, con.sense, con.name)
        sig = (_row_signature(new_con), con.sense)
        prior = seen.get(sig)
        if prior is not None and prior.sense is con.sense:
            # Keep the tighter of two parallel rows.
            scale_new = sorted(expr.coeffs.items())[0][1]
            scale_old = sorted(prior.expr.coeffs.items())[0][1]
            rhs_new = -expr.constant / scale_new
            rhs_old = -prior.expr.constant / scale_old
            tighter_new = rhs_new < rhs_old if con.sense is Sense.LE else rhs_new > rhs_old
            if con.sense is Sense.EQ:
                if abs(rhs_new - rhs_old) > 1e-9:
                    raise InfeasibleModelError(
                        "conflicting duplicate equality rows"
                    )
                tighter_new = False
            if tighter_new:
                prior.expr.coeffs, prior.expr.constant = expr.coeffs, expr.constant
            report.duplicate_rows += 1
            report.rows_dropped += 1
            continue
        seen[sig] = new_con
        reduced.add(new_con)

    objective = translate(model.objective)
    if model.objective_sense.value == "minimize":
        reduced.minimize(objective)
    else:
        reduced.maximize(objective)
    return reduced, report


def extend_solution(
    report: PresolveReport, reduced_values: dict[str, float]
) -> dict[str, float]:
    """Lift a reduced-model solution back to the original variable set."""
    full = dict(reduced_values)
    full.update(report.fixed_values)
    return full
