"""Declarative ILP model container with columnar constraint storage.

:class:`Model` plays the role PuLP / OR-Tools' CpModel played for the paper:
formulations are stated as named variables plus constraints, then lowered
once into sparse-matrix form for whichever backend solves them.

Constraints are stored *columnarly*: every row — whether added one
expression at a time through :meth:`Model.add` or thousands at a time
through :meth:`Model.add_block` — lands in shared COO triplet buffers
(row/col/coef arrays) plus per-row sense and right-hand-side arrays.
:meth:`Model.lower` assembles those buffers into one CSR matrix in O(nnz)
NumPy work; there is no per-constraint Python loop anywhere on the
lowering path, and the assembled system is cached until the model mutates,
so warm-start feasibility checks and portfolio racers share a single
assembly.

Two construction styles, one storage format:

- **Block API** (:meth:`add_block`, :meth:`add_vars`) — the fast path.
  Formulation builders that can phrase a constraint *family* as index
  arithmetic (``rows``/``cols``/``coefs`` NumPy arrays) should use it; the
  mapping builders (:mod:`repro.mapping.axon_sharing`, ``snu``, ``pgo``)
  emit their constraint families this way.
- **Per-expression API** (:meth:`add` with ``x + y <= 1``) — the thin
  compatibility path, unchanged in behavior.  Right for small models,
  tests and one-off rows; each call appends a single row to the same
  buffers.

Both styles lower to identical :class:`MatrixForm`s (enforced by the
block/expression equivalence property suite).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from .expr import Constraint, LinExpr, Sense, Variable, VarType, lin_sum

#: Stable integer codes for constraint senses in the columnar buffers.
SENSE_CODES: dict[Sense, int] = {Sense.LE: 0, Sense.GE: 1, Sense.EQ: 2}
#: Inverse of :data:`SENSE_CODES` (index with a code).
CODE_SENSES: tuple[Sense, ...] = (Sense.LE, Sense.GE, Sense.EQ)


class ObjectiveSense(enum.Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class MatrixForm:
    """A model lowered to ``min c.x  s.t.  lb <= A.x <= ub`` plus bounds.

    ``integrality`` follows :func:`scipy.optimize.milp` conventions
    (0 continuous, 1 integer).  ``offset`` is the constant dropped from the
    objective; add it back when reporting objective values.  ``sign`` is
    +1 for minimization models and -1 when a maximization objective was
    negated during lowering.
    """

    c: np.ndarray
    a_matrix: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    integrality: np.ndarray
    offset: float
    sign: float

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_rows(self) -> int:
        return self.a_matrix.shape[0]

    def objective_value(self, x: np.ndarray) -> float:
        """User-facing objective value of assignment ``x``."""
        return self.sign * (float(self.c @ x) + self.offset)


@dataclass(frozen=True)
class RowSystem:
    """The assembled constraint system of a model.

    ``a_matrix`` is canonical CSR (duplicates summed, explicit zeros
    eliminated, indices sorted); ``sense_code`` holds :data:`SENSE_CODES`
    entries per row and ``rhs`` the right-hand sides (a row reads
    ``A[r] . x  <sense>  rhs[r]``).
    """

    a_matrix: sparse.csr_matrix
    sense_code: np.ndarray
    rhs: np.ndarray


def _owned(array, source) -> np.ndarray:
    """Ensure ``array`` does not share memory with the caller's ``source``.

    The columnar buffers retain every array they are handed; a caller
    reusing its scratch buffers after ``add_block`` must not be able to
    mutate the stored constraint data.
    """
    if isinstance(source, np.ndarray) and np.shares_memory(array, source):
        return array.copy()
    return array


def _coerce_sense_codes(sense, num_rows: int) -> np.ndarray:
    """Normalize a sense spec (scalar or per-row) to an int8 code array."""

    def one(item) -> int:
        if isinstance(item, Sense):
            return SENSE_CODES[item]
        if isinstance(item, str):
            return SENSE_CODES[Sense(item)]
        code = int(item)
        if not 0 <= code <= 2:
            raise ValueError(f"invalid sense code {item!r}")
        return code

    if isinstance(sense, (Sense, str)):
        return np.full(num_rows, one(sense), dtype=np.int8)
    if isinstance(sense, np.ndarray) and sense.dtype.kind in "iu":
        codes = np.asarray(sense, dtype=np.int8)
        if codes.shape != (num_rows,):
            raise ValueError(
                f"sense array has shape {codes.shape}, expected ({num_rows},)"
            )
        if codes.size and (codes.min() < 0 or codes.max() > 2):
            raise ValueError("sense codes must be 0 (<=), 1 (>=) or 2 (==)")
        return codes
    codes = np.fromiter((one(item) for item in sense), dtype=np.int8)
    if codes.shape != (num_rows,):
        raise ValueError(
            f"got {codes.size} senses for {num_rows} rows"
        )
    return codes


class Model:
    """An integer linear program under construction.

    Example
    -------
    >>> m = Model("demo")
    >>> x = m.add_binary("x")
    >>> y = m.add_binary("y")
    >>> m.add(x + y <= 1, name="at_most_one")
    >>> m.minimize(-x - 2 * y)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._vars: list[Variable] = []
        self._by_name: dict[str, Variable] = {}
        self._objective: LinExpr = LinExpr()
        self._sense = ObjectiveSense.MINIMIZE
        # Columnar constraint store: COO triplet chunks plus parallel
        # per-row sense/rhs chunks.  One chunk per add()/add_block() call.
        self._coo_rows: list[np.ndarray] = []
        self._coo_cols: list[np.ndarray] = []
        self._coo_data: list[np.ndarray] = []
        self._sense_chunks: list[np.ndarray] = []
        self._rhs_chunks: list[np.ndarray] = []
        self._num_rows = 0
        # Row-name segments: (base_row, count, prefix_or_None, names_or_None).
        self._segments: list[tuple[int, int, str | None, list[str] | None]] = []
        self._seg_starts: list[int] = []
        # Structure version: bumped on any variable/constraint addition so
        # the assembled system (and the materialized-constraint view) can
        # be cached and shared across backends and feasibility checks.
        self._version = 0
        self._system_cache: tuple[int, RowSystem] | None = None
        self._cons_cache: tuple[int, tuple[Constraint, ...]] | None = None

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        vartype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a variable; names must be unique."""
        if name in self._by_name:
            raise ValueError(f"duplicate variable name {name!r}")
        if lb > ub:
            raise ValueError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(name, len(self._vars), float(lb), float(ub), vartype)
        self._vars.append(var)
        self._by_name[name] = var
        self._version += 1
        return var

    def add_vars(
        self,
        names: Iterable[str],
        lb: float = 0.0,
        ub: float = float("inf"),
        vartype: VarType = VarType.CONTINUOUS,
    ) -> list[Variable]:
        """Bulk :meth:`add_var`: register every name with shared bounds.

        Returns the new :class:`~repro.ilp.expr.Variable` objects in
        ``names`` order; their column indices are consecutive, starting
        at the model's current :attr:`num_vars`.  Formulation builders
        rely on that contiguity to address whole variable families by
        index arithmetic in :meth:`add_block` (e.g. the y/x/s layout of
        the mapping formulations), so call it once per family, in layout
        order, before emitting any constraint block over the family.
        """
        if lb > ub:
            raise ValueError(f"variable block has lb {lb} > ub {ub}")
        lb, ub = float(lb), float(ub)
        vars_, by_name = self._vars, self._by_name
        out: list[Variable] = []
        for name in names:
            if name in by_name:
                raise ValueError(f"duplicate variable name {name!r}")
            var = Variable(name, len(vars_), lb, ub, vartype)
            vars_.append(var)
            by_name[name] = var
            out.append(var)
        self._version += 1
        return out

    def add_binary(self, name: str) -> Variable:
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def add_binaries(self, names: Iterable[str]) -> list[Variable]:
        """Bulk :meth:`add_binary`: consecutive 0/1 columns, ``names`` order."""
        return self.add_vars(names, 0.0, 1.0, VarType.BINARY)

    def add_integer(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Variable:
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def add_continuous(
        self, name: str, lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def var(self, name: str) -> Variable:
        """Look up a variable by name."""
        return self._by_name[name]

    def has_var(self, name: str) -> bool:
        return name in self._by_name

    def var_names(self) -> list[str]:
        """All variable names in index order."""
        return [v.name for v in self._vars]

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._vars)

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    # ------------------------------------------------------------------
    # constraints and objective
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with <=, >= or == (compat path).

        The constraint is decomposed into one columnar row; the original
        ``Constraint`` object is not retained (reading
        :attr:`constraints` materializes an equivalent view).
        """
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "Model.add expects a Constraint; build one with <=, >= or =="
            )
        if name:
            constraint.named(name)
        coeffs = constraint.expr.coeffs
        k = len(coeffs)
        self._append_chunk(
            np.zeros(k, dtype=np.int64),
            np.fromiter(coeffs.keys(), dtype=np.int64, count=k),
            np.fromiter(coeffs.values(), dtype=np.float64, count=k),
            np.full(1, SENSE_CODES[constraint.sense], dtype=np.int8),
            np.full(1, -constraint.expr.constant, dtype=np.float64),
            1,
            constraint.name or None,
            None,
        )
        return constraint

    def add_all(self, constraints: Iterable[Constraint]) -> None:
        for con in constraints:
            self.add(con)

    def add_block(
        self,
        rows,
        cols,
        coefs,
        sense,
        rhs,
        *,
        num_rows: int | None = None,
        name: str | Sequence[str] = "",
    ) -> int:
        """Add a family of constraints from COO triplets in one call.

        ``rows``/``cols``/``coefs`` are parallel arrays of matrix entries
        (``rows`` are block-local, 0-based); duplicate ``(row, col)``
        entries are summed during assembly.  ``sense`` is a
        :class:`~repro.ilp.expr.Sense` (or ``"<="``/``">="``/``"=="``, or
        a per-row array of sense codes) and ``rhs`` a scalar or per-row
        array, giving rows ``sum(coefs) <sense> rhs``.  ``num_rows`` makes
        trailing entry-free rows explicit (default: ``rows.max() + 1``).
        ``name`` is either a family prefix (rows report as
        ``name[<local>]``) or a per-row name sequence.

        Returns the global index of the block's first row.  This is the
        fast path: cost is O(entries) in NumPy, independent of row count.
        """
        rows = _owned(np.ascontiguousarray(rows, dtype=np.int64), rows)
        cols = _owned(np.ascontiguousarray(cols, dtype=np.int64), cols)
        coefs = _owned(np.ascontiguousarray(coefs, dtype=np.float64), coefs)
        if not (rows.shape == cols.shape == coefs.shape) or rows.ndim != 1:
            raise ValueError(
                "rows, cols and coefs must be 1-D arrays of equal length"
            )
        if num_rows is None:
            num_rows = int(rows.max()) + 1 if rows.size else 0
        else:
            num_rows = int(num_rows)
        if rows.size and (rows.min() < 0 or rows.max() >= num_rows):
            raise ValueError(
                f"block row indices must lie in [0, {num_rows})"
            )
        n = len(self._vars)
        if cols.size and (cols.min() < 0 or cols.max() >= n):
            raise ValueError(
                f"column indices must lie in [0, {n}); add variables first"
            )
        codes = _owned(_coerce_sense_codes(sense, num_rows), sense)
        rhs_arr = _owned(
            np.ascontiguousarray(
                np.broadcast_to(np.asarray(rhs, dtype=np.float64), (num_rows,))
            ),
            rhs,
        )
        prefix: str | None = None
        names: list[str] | None = None
        if isinstance(name, str):
            prefix = name or None
        else:
            names = list(name)
            if len(names) != num_rows:
                raise ValueError(
                    f"got {len(names)} row names for {num_rows} rows"
                )
        base = self._num_rows
        self._append_chunk(rows, cols, coefs, codes, rhs_arr, num_rows, prefix, names)
        return base

    def _append_chunk(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        codes: np.ndarray,
        rhs: np.ndarray,
        num_rows: int,
        prefix: str | None,
        names: list[str] | None,
    ) -> None:
        base = self._num_rows
        self._coo_rows.append(rows + base if base else rows)
        self._coo_cols.append(cols)
        self._coo_data.append(data)
        self._sense_chunks.append(codes)
        self._rhs_chunks.append(rhs)
        self._segments.append((base, num_rows, prefix, names))
        self._seg_starts.append(base)
        self._num_rows += num_rows
        self._version += 1

    def row_name(self, row: int) -> str:
        """Name of global constraint row ``row`` ("" when unnamed).

        Rows from a prefix-named block report as ``prefix[<local>]``.
        """
        if not 0 <= row < self._num_rows:
            raise IndexError(f"row {row} out of range")
        base, count, prefix, names = self._segments[
            bisect_right(self._seg_starts, row) - 1
        ]
        if names is not None:
            return names[row - base]
        if prefix is None:
            return ""
        return prefix if count == 1 else f"{prefix}[{row - base}]"

    @property
    def constraints(self) -> Sequence[Constraint]:
        """Materialized per-row :class:`Constraint` view (compat path).

        Built on demand from the columnar store; rows reflect canonical
        assembly (duplicate entries summed, zero coefficients dropped).
        """
        cached = self._cons_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        system = self.row_system()
        indptr = system.a_matrix.indptr
        indices = system.a_matrix.indices
        data = system.a_matrix.data
        out = []
        for r in range(self._num_rows):
            lo, hi = indptr[r], indptr[r + 1]
            expr = LinExpr(
                dict(zip(indices[lo:hi].tolist(), data[lo:hi].tolist())),
                -float(system.rhs[r]),
            )
            out.append(
                Constraint(expr, CODE_SENSES[system.sense_code[r]], self.row_name(r))
            )
        view = tuple(out)
        self._cons_cache = (self._version, view)
        return view

    @property
    def num_constraints(self) -> int:
        return self._num_rows

    def minimize(self, expr) -> None:
        self._objective = lin_sum([expr])
        self._sense = ObjectiveSense.MINIMIZE

    def maximize(self, expr) -> None:
        self._objective = lin_sum([expr])
        self._sense = ObjectiveSense.MAXIMIZE

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._sense

    # ------------------------------------------------------------------
    # solution utilities
    # ------------------------------------------------------------------
    def fix_var(self, name: str, value: float) -> None:
        """Clamp a variable's bounds to a single value (e.g. freeze y_j)."""
        var = self._by_name[name]
        var.lb = float(value)
        var.ub = float(value)

    def values_by_index(self, values: Mapping[str, float]) -> dict[int, float]:
        """Convert a name-keyed assignment to an index-keyed one.

        Missing variables default to their lower bound, which matches how
        sparse warm starts are usually specified (only nonzeros listed).
        """
        out: dict[int, float] = {}
        for var in self._vars:
            out[var.index] = float(values.get(var.name, var.lb))
        return out

    def dense_values(self, values: Mapping[str, float] | np.ndarray) -> np.ndarray:
        """Assignment as a dense index-ordered vector.

        Accepts either a name-keyed mapping (missing variables default to
        their lower bound; unknown names are ignored) or an already-dense
        vector, which is validated for length and passed through.
        """
        n = len(self._vars)
        if isinstance(values, np.ndarray):
            x = np.asarray(values, dtype=np.float64)
            if x.shape != (n,):
                raise ValueError(
                    f"dense assignment has shape {x.shape}, expected ({n},)"
                )
            return x
        x = np.fromiter((v.lb for v in self._vars), dtype=np.float64, count=n)
        by_name = self._by_name
        for name, val in values.items():
            var = by_name.get(name)
            if var is not None:
                x[var.index] = val
        return x

    def values_dict(self, x: np.ndarray) -> dict[str, float]:
        """Dense vector back to a name-keyed assignment."""
        return dict(zip(self.var_names(), np.asarray(x, dtype=np.float64).tolist()))

    def check_feasible(
        self, values: Mapping[str, float] | np.ndarray, tol: float = 1e-6
    ) -> list[str]:
        """Return human-readable violations of ``values`` (empty = feasible).

        Checks bounds, integrality and every constraint row against the
        assembled sparse system (one mat-vec, no per-constraint Python).
        Accepts name-keyed mappings or dense index-ordered vectors.
        """
        x = self.dense_values(values)
        violations: list[str] = []
        n = len(self._vars)
        lb = np.fromiter((v.lb for v in self._vars), dtype=np.float64, count=n)
        ub = np.fromiter((v.ub for v in self._vars), dtype=np.float64, count=n)
        for i in np.flatnonzero((x < lb - tol) | (x > ub + tol)):
            var = self._vars[i]
            violations.append(
                f"variable {var.name}={float(x[i])} outside [{var.lb}, {var.ub}]"
            )
        is_int = np.fromiter(
            (v.is_integer() for v in self._vars), dtype=bool, count=n
        )
        off_grid = np.abs(x - np.round(x)) > tol
        for i in np.flatnonzero(is_int & off_grid):
            violations.append(
                f"variable {self._vars[i].name}={float(x[i])} not integral"
            )
        system = self.row_system()
        if self._num_rows:
            lhs = system.a_matrix @ x - system.rhs
            code = system.sense_code
            bad = (
                ((code == 0) & (lhs > tol))
                | ((code == 1) & (lhs < -tol))
                | ((code == 2) & (np.abs(lhs) > tol))
            )
            for r in np.flatnonzero(bad):
                label = self.row_name(r) or f"#{r}"
                violations.append(
                    f"constraint {label} violated: {lhs[r]:g} "
                    f"{CODE_SENSES[code[r]].value} 0"
                )
        return violations

    def objective_of(self, values: Mapping[str, float] | np.ndarray) -> float:
        """Objective value of a name-keyed or dense assignment."""
        x = self.dense_values(values)
        coeffs = self._objective.coeffs
        if not coeffs:
            return self._objective.constant
        k = len(coeffs)
        idx = np.fromiter(coeffs.keys(), dtype=np.int64, count=k)
        vals = np.fromiter(coeffs.values(), dtype=np.float64, count=k)
        return float(vals @ x[idx]) + self._objective.constant

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def row_system(self) -> RowSystem:
        """Assemble (and cache) the canonical CSR constraint system.

        O(nnz) NumPy/SciPy work; the result is reused until the model
        gains variables or rows, so repeated lowers (warm-start checks,
        portfolio racers, presolve) pay for assembly once.
        """
        cached = self._system_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        n = len(self._vars)
        if self._coo_rows:
            rows = np.concatenate(self._coo_rows)
            cols = np.concatenate(self._coo_cols)
            data = np.concatenate(self._coo_data)
            codes = np.concatenate(self._sense_chunks)
            rhs = np.concatenate(self._rhs_chunks)
        else:
            rows = cols = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
            codes = np.empty(0, dtype=np.int8)
            rhs = np.empty(0, dtype=np.float64)
        a_matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(self._num_rows, n)
        )
        a_matrix.eliminate_zeros()
        a_matrix.sort_indices()
        system = RowSystem(a_matrix=a_matrix, sense_code=codes, rhs=rhs)
        self._system_cache = (self._version, system)
        return system

    def lower(self) -> MatrixForm:
        """Lower the model to sparse-matrix form for the backends.

        Maximization is converted to minimization by negating the
        objective; :attr:`MatrixForm.sign` undoes this in reports.  The
        constraint matrix comes from the cached :meth:`row_system`;
        variable bounds are re-read on every call so direct ``Variable``
        bound mutations (``fix_var``, presolve tightening) always land.
        """
        system = self.row_system()
        n = len(self._vars)
        sign = 1.0 if self._sense is ObjectiveSense.MINIMIZE else -1.0

        c = np.zeros(n)
        coeffs = self._objective.coeffs
        if coeffs:
            k = len(coeffs)
            idx = np.fromiter(coeffs.keys(), dtype=np.int64, count=k)
            vals = np.fromiter(coeffs.values(), dtype=np.float64, count=k)
            c[idx] = sign * vals
        offset = sign * self._objective.constant

        code = system.sense_code
        row_lb = np.where(code == 0, -np.inf, system.rhs)
        row_ub = np.where(code == 1, np.inf, system.rhs)
        var_lb = np.fromiter((v.lb for v in self._vars), dtype=np.float64, count=n)
        var_ub = np.fromiter((v.ub for v in self._vars), dtype=np.float64, count=n)
        integrality = np.fromiter(
            (1 if v.is_integer() else 0 for v in self._vars),
            dtype=np.int8,
            count=n,
        )
        # Note: MatrixForm.offset stores the minimized-form constant, so
        # objective_value computes sign * (c.x + offset) = original objective.
        return MatrixForm(
            c=c,
            a_matrix=system.a_matrix,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            integrality=integrality,
            offset=offset,
            sign=sign,
        )

    def stats(self) -> dict[str, int]:
        """Model size summary (variables by type, constraints, nonzeros)."""
        by_type = {t: 0 for t in VarType}
        for var in self._vars:
            by_type[var.vartype] += 1
        return {
            "binary": by_type[VarType.BINARY],
            "integer": by_type[VarType.INTEGER],
            "continuous": by_type[VarType.CONTINUOUS],
            "constraints": self._num_rows,
            "nonzeros": int(self.row_system().a_matrix.nnz),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"[{s['binary']}b/{s['integer']}i/{s['continuous']}c], "
            f"cons={s['constraints']}, nnz={s['nonzeros']})"
        )
