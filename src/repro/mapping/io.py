"""Mapping serialization.

Persists a placement (plus enough architecture metadata to validate it on
load) so expensive solver runs can be cached and exchanged.  The format
deliberately stores the *assignment*, not solver state: any tool that can
produce a neuron->slot map can interoperate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..mca.architecture import Architecture
from ..mca.crossbar import CrossbarSlot, CrossbarType
from ..snn.io import network_from_dict, network_to_dict
from ..snn.network import Network
from .problem import MappingProblem
from .solution import Mapping

FORMAT_VERSION = 1


def architecture_to_dict(arch: Architecture) -> dict[str, Any]:
    """Serialize an architecture pool (types are stored per slot run)."""
    runs: list[dict[str, Any]] = []
    for slot in arch.slots:
        if runs and _same_type(runs[-1], slot.ctype):
            runs[-1]["count"] += 1
        else:
            runs.append(
                {
                    "inputs": slot.ctype.inputs,
                    "outputs": slot.ctype.outputs,
                    "overhead": slot.ctype.overhead,
                    "count": 1,
                }
            )
    return {"name": arch.name, "slot_runs": runs}


def _same_type(run: dict[str, Any], ctype: CrossbarType) -> bool:
    return (
        run["inputs"] == ctype.inputs
        and run["outputs"] == ctype.outputs
        and run["overhead"] == ctype.overhead
    )


def architecture_from_dict(data: dict[str, Any]) -> Architecture:
    slots: list[CrossbarSlot] = []
    for run in data["slot_runs"]:
        ctype = CrossbarType(run["inputs"], run["outputs"], run.get("overhead", 1.0))
        for _ in range(run["count"]):
            slots.append(CrossbarSlot(len(slots), ctype))
    return Architecture(data.get("name", "loaded"), tuple(slots))


def mapping_to_dict(mapping: Mapping) -> dict[str, Any]:
    """Serialize a mapping with its network and architecture context."""
    return {
        "format_version": FORMAT_VERSION,
        "network": network_to_dict(mapping.problem.network),
        "architecture": architecture_to_dict(mapping.problem.architecture),
        "assignment": {str(i): j for i, j in sorted(mapping.assignment.items())},
        "metrics": {
            "area": mapping.area(),
            "total_routes": mapping.total_routes(),
            "global_routes": mapping.global_routes(),
        },
    }


def mapping_from_dict(data: dict[str, Any]) -> Mapping:
    """Deserialize and re-validate a mapping (raises if invalid)."""
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported mapping format version {version}")
    network: Network = network_from_dict(data["network"])
    arch = architecture_from_dict(data["architecture"])
    problem = MappingProblem(network, arch)
    assignment = {int(i): int(j) for i, j in data["assignment"].items()}
    mapping = Mapping(problem, assignment)
    issues = mapping.validate()
    if issues:
        raise ValueError(f"stored mapping is invalid: {issues[:3]}")
    stored = data.get("metrics", {})
    if stored and abs(stored.get("area", mapping.area()) - mapping.area()) > 1e-6:
        raise ValueError(
            "stored area metric disagrees with the recomputed mapping; "
            "the file was edited inconsistently"
        )
    return mapping


def save_mapping(mapping: Mapping, path: str | Path) -> None:
    Path(path).write_text(json.dumps(mapping_to_dict(mapping), indent=2))


def load_mapping(path: str | Path) -> Mapping:
    return mapping_from_dict(json.loads(Path(path).read_text()))
