"""Property-based invariants of the problem fingerprint.

The cache key must be *stable* — identical content fingerprints the same
across rebuilds, pickling and process boundaries — and *sensitive* — any
change to the network, the pool, or the formulation options changes it.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.axon_sharing import FormulationOptions
from repro.mapping.fingerprint import (
    architecture_fingerprint,
    network_fingerprint,
    options_fingerprint,
)
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network
from repro.snn.io import network_from_dict, network_to_dict

pytestmark = pytest.mark.batch


@st.composite
def fingerprint_instance(draw):
    n = draw(st.integers(6, 14))
    m = min(int(n * draw(st.floats(0.8, 2.0))), n * 4)
    seed = draw(st.integers(0, 10_000))
    net = random_network(n, m, seed=seed, max_fan_in=4)
    pool = draw(
        st.sampled_from(
            [
                [(CrossbarType(4, 4), n), (CrossbarType(8, 8), (n + 7) // 8)],
                [(CrossbarType(8, 4), n // 2 + 2), (CrossbarType(8, 8), n // 2 + 2)],
                [(CrossbarType(16, 16), (n + 3) // 4)],
            ]
        )
    )
    options = FormulationOptions(
        symmetry_breaking=draw(st.booleans()),
        disaggregate_sharing=draw(st.booleans()),
    )
    return net, custom_architecture(pool), options


@settings(max_examples=25, deadline=None)
@given(instance=fingerprint_instance())
def test_fingerprint_survives_serialization_roundtrip(instance):
    """JSON- and pickle-rebuilt copies fingerprint identically."""
    net, arch, options = instance
    problem = MappingProblem(net, arch)
    original = problem.fingerprint(options)

    json_clone = network_from_dict(network_to_dict(net))
    assert MappingProblem(json_clone, arch).fingerprint(options) == original

    pickled = pickle.loads(pickle.dumps(problem))
    assert pickled.fingerprint(options) == original


@settings(max_examples=25, deadline=None)
@given(instance=fingerprint_instance())
def test_fingerprint_ignores_display_names(instance):
    net, arch, options = instance
    renamed = net.copy(name="something-else")
    assert network_fingerprint(renamed) == network_fingerprint(net)


@settings(max_examples=25, deadline=None)
@given(instance=fingerprint_instance(), delta=st.floats(0.25, 2.0))
def test_fingerprint_changes_when_network_changes(instance, delta):
    net, arch, options = instance
    fp = network_fingerprint(net)

    # Changing any synapse weight changes the fingerprint.
    syn = next(iter(net.synapses()))
    reweighted = net.copy()
    reweighted.replace_synapse(replace(syn, weight=syn.weight + delta))
    assert network_fingerprint(reweighted) != fp

    # Removing a synapse changes it too.
    trimmed = net.copy()
    trimmed.remove_synapse(syn.pre, syn.post)
    assert network_fingerprint(trimmed) != fp


@settings(max_examples=25, deadline=None)
@given(instance=fingerprint_instance(), extra=st.integers(1, 4))
def test_fingerprint_changes_when_pool_changes(instance, extra):
    net, arch, options = instance
    fp = architecture_fingerprint(arch)
    grown = custom_architecture(
        [(slot.ctype, 1) for slot in arch.slots] + [(CrossbarType(4, 4), extra)]
    )
    assert architecture_fingerprint(grown) != fp


@settings(max_examples=10, deadline=None)
@given(instance=fingerprint_instance())
def test_fingerprint_changes_when_options_change(instance):
    net, arch, options = instance
    problem = MappingProblem(net, arch)
    flipped = replace(options, symmetry_breaking=not options.symmetry_breaking)
    assert problem.fingerprint(options) != problem.fingerprint(flipped)
    assert options_fingerprint(options) != options_fingerprint(flipped)
    # And "no options" is its own key.
    assert problem.fingerprint(None) != problem.fingerprint(options)


def _fingerprints_in_child(problems):
    """Module-level worker: fingerprint each problem in a fresh process."""
    return [problem.fingerprint(options) for problem, options in problems]


def test_fingerprint_stable_across_process_boundaries():
    """The cache key computed in a worker equals the parent's."""
    problems = []
    for seed in (1, 7, 42):
        net = random_network(10, 20, seed=seed, max_fan_in=4)
        arch = custom_architecture([(CrossbarType(8, 8), 4)])
        problems.append(
            (MappingProblem(net, arch), FormulationOptions(symmetry_breaking=bool(seed % 2)))
        )
    parent = [problem.fingerprint(options) for problem, options in problems]
    with ProcessPoolExecutor(max_workers=1) as pool:
        child = pool.submit(_fingerprints_in_child, problems).result(timeout=60)
    assert child == parent
    assert len(set(parent)) == len(parent)  # distinct instances, distinct keys
