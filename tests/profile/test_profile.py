"""Tests for the synthetic SmartPixel dataset and the profiler."""

import numpy as np
import pytest

from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import homogeneous_architecture
from repro.profile.profiler import collect_profile, evaluate_packets
from repro.profile.smartpixel import (
    SmartPixelConfig,
    generate_dataset,
    split_dataset,
)
from repro.snn.generators import random_network


class TestSmartPixelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SmartPixelConfig(rows=1)
        with pytest.raises(ValueError):
            SmartPixelConfig(num_samples=0)
        with pytest.raises(ValueError):
            SmartPixelConfig(num_classes=1)
        with pytest.raises(ValueError):
            SmartPixelConfig(noise=1.0)


class TestGenerateDataset:
    def test_shapes_and_labels(self):
        cfg = SmartPixelConfig(rows=6, cols=6, num_samples=40, seed=2)
        data = generate_dataset(cfg)
        assert len(data) == 40
        for sample in data:
            assert sample.frame.shape == (6, 6)
            assert 0 <= sample.label < cfg.num_classes
            assert sample.frame.min() >= 0.0
            assert sample.frame.max() <= 1.0 + 1e-12

    def test_deterministic(self):
        cfg = SmartPixelConfig(num_samples=10, seed=5)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        assert all(np.array_equal(x.frame, y.frame) for x, y in zip(a, b))
        assert [x.label for x in a] == [y.label for y in b]

    def test_tracks_have_structure(self):
        # A track frame concentrates charge: its Gini over pixels is
        # clearly above a pure-noise frame's.
        cfg = SmartPixelConfig(num_samples=20, noise=0.0, seed=1)
        data = generate_dataset(cfg)
        for sample in data:
            bright = (sample.frame > 0.5).sum()
            assert bright < sample.frame.size * 0.6

    def test_all_classes_present(self):
        cfg = SmartPixelConfig(num_samples=60, seed=3)
        labels = {s.label for s in generate_dataset(cfg)}
        assert labels == {0, 1, 2}


class TestSplitDataset:
    def test_disjoint_and_complete(self):
        data = generate_dataset(SmartPixelConfig(num_samples=100, seed=1))
        profile, evaluation = split_dataset(data, 0.1, seed=2)
        assert len(profile) == 10
        assert len(profile) + len(evaluation) == 100

    def test_one_percent_protocol(self):
        data = generate_dataset(SmartPixelConfig(num_samples=200, seed=1))
        profile, evaluation = split_dataset(data, 0.01, seed=0)
        assert len(profile) == 2
        assert len(evaluation) == 198

    def test_min_profile_floor(self):
        data = generate_dataset(SmartPixelConfig(num_samples=20, seed=1))
        profile, _ = split_dataset(data, 0.01, seed=0)
        assert len(profile) >= 1

    def test_fraction_validated(self):
        data = generate_dataset(SmartPixelConfig(num_samples=10, seed=1))
        with pytest.raises(ValueError):
            split_dataset(data, 0.0)
        with pytest.raises(ValueError):
            split_dataset([], 0.5)


class TestProfiler:
    @pytest.fixture
    def network(self):
        from repro.snn.generators import layered_network

        # Layer 0 (4 neurons) is the input layer -> fits 2x2 frames.
        net = layered_network([4, 10, 4], connection_prob=0.5, seed=21)
        assert len(net.input_ids()) == 4
        return net

    def test_collect_profile_counts(self, network):
        data = generate_dataset(
            SmartPixelConfig(rows=2, cols=2, num_samples=6, seed=4)
        )
        profile = collect_profile(network, data, window=12)
        assert set(profile.counts) == set(network.neuron_ids())
        assert profile.total_spikes > 0
        assert profile.num_samples == 6
        assert profile.duration == 72

    def test_window_validated(self, network):
        with pytest.raises(ValueError):
            collect_profile(network, [], window=0)

    def test_no_inputs_rejected(self):
        from repro.snn.network import Network

        net = Network()
        net.add_neuron(0)
        with pytest.raises(ValueError, match="input neurons"):
            collect_profile(net, [], window=4)

    def test_evaluate_packets_statistics(self, network):
        arch = homogeneous_architecture(network.num_neurons, dimension=8)
        problem = MappingProblem(network, arch)
        mapping = greedy_first_fit(problem)
        data = generate_dataset(
            SmartPixelConfig(rows=2, cols=2, num_samples=8, seed=6)
        )
        evaluation = evaluate_packets(mapping, data, window=12)
        assert len(evaluation.per_sample) == 8
        assert evaluation.total == sum(evaluation.per_sample)
        low, high = evaluation.band()
        assert low <= evaluation.mean <= high

    def test_profile_eval_consistency(self, network):
        """Packets from per-sample evaluation must sum to the packet count
        of the aggregated profile (linearity of the packet rule)."""
        arch = homogeneous_architecture(network.num_neurons, dimension=8)
        problem = MappingProblem(network, arch)
        mapping = greedy_first_fit(problem)
        data = generate_dataset(
            SmartPixelConfig(rows=2, cols=2, num_samples=5, seed=7)
        )
        profile = collect_profile(network, data, window=10)
        _, global_total = mapping.packet_count(profile.counts)
        evaluation = evaluate_packets(mapping, data, window=10)
        assert evaluation.total == global_total
