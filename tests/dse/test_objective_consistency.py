"""The DSE objective vector must agree with the underlying libraries.

A frontier is only trustworthy if the numbers it ranks are the *same*
numbers the rest of the repo reports: ``area`` from
:func:`repro.mca.energy.enabled_area`, ``energy`` from
:func:`repro.mca.energy.cost_summary` over statically synthesized
traffic, ``latency`` from
:func:`repro.mapping.latency.critical_path_latency`.  Property-tested
over small random networks and greedy placements, plus the processor
cross-check that static traffic equals the TrafficCounter path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.objectives import evaluate_objectives
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.latency import critical_path_latency
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture, homogeneous_architecture
from repro.mca.energy import cost_summary, enabled_area
from repro.mca.noc import MeshNoC
from repro.mca.processor import MappedProcessor, static_traffic
from repro.snn.generators import random_network

pytestmark = pytest.mark.dse


@st.composite
def mapped_instance(draw):
    n = draw(st.integers(8, 20))
    m = min(int(n * draw(st.floats(1.0, 2.0))), n * 3)
    seed = draw(st.integers(0, 10_000))
    network = random_network(n, m, seed=seed, max_fan_in=5)
    if draw(st.booleans()):
        arch = homogeneous_architecture(n, dimension=8)
    else:
        arch = heterogeneous_architecture(n, max_slots_per_type=8)
    mapping = greedy_first_fit(MappingProblem(network, arch))
    counts = {
        nid: draw(st.integers(0, 5)) for nid in network.neuron_ids()
    }
    return mapping, counts


class TestObjectiveConsistency:
    @settings(max_examples=25, deadline=None)
    @given(mapped_instance())
    def test_point_matches_the_libraries(self, instance):
        mapping, counts = instance
        arch = mapping.problem.architecture
        noc = MeshNoC(arch.num_slots)
        point = evaluate_objectives(mapping, counts, noc=noc)

        count, area = enabled_area(arch, mapping.assignment)
        assert point.area == pytest.approx(area)
        assert point.enabled_crossbars == count

        traffic = static_traffic(
            mapping.problem.network, mapping.assignment, counts, noc=noc
        )
        summary = cost_summary(arch, mapping.assignment, traffic, duration=1)
        assert point.energy == pytest.approx(summary.total_energy_pj)
        assert point.global_packets == traffic.global_packets

        assert point.latency == pytest.approx(
            float(critical_path_latency(mapping, noc=noc))
        )

    @settings(max_examples=15, deadline=None)
    @given(mapped_instance())
    def test_static_traffic_matches_the_processor_path(self, instance):
        """The DSE energy axis uses the exact processor accounting."""
        mapping, counts = instance
        processor = MappedProcessor(
            mapping.problem.network,
            mapping.assignment,
            mapping.problem.architecture,
        )
        via_processor = processor.traffic_from_counts(counts)
        via_static = static_traffic(
            mapping.problem.network,
            mapping.assignment,
            counts,
            noc=processor.noc,
        )
        assert via_static == via_processor

    def test_zero_spike_profile_still_scores(self):
        network = random_network(10, 15, seed=1, max_fan_in=4)
        mapping = greedy_first_fit(
            MappingProblem(network, homogeneous_architecture(10, dimension=8))
        )
        point = evaluate_objectives(
            mapping, {nid: 0 for nid in network.neuron_ids()}
        )
        assert point.global_packets == 0
        assert point.area > 0  # static area survives an idle profile
