"""Rung-indexed solver fidelity ladders for the adaptive driver."""

from __future__ import annotations

import pytest

from repro.dse.fidelity import rung_solver_specs


def test_every_rung_leads_with_the_lp_round_racer():
    for rung in range(1, 5):
        specs = rung_solver_specs(rung, 4)
        assert specs[0].backend == "lp_round"
        assert specs[-1].backend == "highs"


def test_top_rung_is_full_fidelity():
    _, exact = rung_solver_specs(3, 3)
    assert exact.emphasis == "quality"
    assert exact.node_limit is None
    assert exact.effective_gap() == 0.0


def test_cheap_rungs_tighten_monotonically():
    gaps, caps = [], []
    for rung in range(1, 4):
        _, exact = rung_solver_specs(rung, 4)
        assert exact.emphasis == "speed"
        assert exact.node_limit is not None
        gaps.append(exact.effective_gap())
        caps.append(exact.node_limit)
    # Later rungs never run looser arms than earlier ones.
    assert gaps == sorted(gaps, reverse=True)
    assert caps == sorted(caps)
    assert len(set(caps)) == len(caps)


def test_single_rung_ladder_goes_straight_to_full_fidelity():
    _, exact = rung_solver_specs(1, 1)
    assert exact.emphasis == "quality"
    assert exact.node_limit is None


def test_rungs_are_one_based():
    with pytest.raises(ValueError, match="1-based"):
        rung_solver_specs(0, 3)
