"""Fig. 6 bench: SNU route minimization, heterogeneous target.

Shape: routes never increase at frozen area; most networks improve
strictly (paper: 11.9-26.4% reduction).
"""

from bench_config import SMALL, once
from repro.experiments.fig6 import run_fig6


def test_benchmark_fig6(benchmark):
    result = once(benchmark, lambda: run_fig6(SMALL))
    strict = 0
    for net, _area, before, after, gain in result.rows:
        assert after <= before, (net, before, after)
        if after < before:
            strict += 1
    assert strict >= 3, f"only {strict}/5 networks improved routes"
