"""Deterministic work-time accounting.

The paper reports *deterministic timing* from CP-SAT: a machine-independent
measure of solver effort reflecting "only the number, type, and complexity
of each solver operation".  Our backends reproduce the idea with a
:class:`DeterministicClock` that converts countable solver operations
(simplex iterations, matrix non-zeros touched, nodes expanded) into abstract
work units.  The absolute scale is arbitrary; only ratios between runs are
meaningful, exactly as in the paper's break-even analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Cost weights, loosely modelled on the relative cost of the operations in a
# simplex-based branch-and-bound.  The absolute values are a calibration
# convention, not a measurement.
LP_ITERATION_COST = 1.0  # one dual-simplex pivot
NODE_OVERHEAD_COST = 5.0  # bound bookkeeping, branching decision
PER_NNZ_SETUP_COST = 0.001  # touching one matrix nonzero during setup
HEURISTIC_ROUND_COST = 0.5  # rounding-pass over one variable


@dataclass
class DeterministicClock:
    """Accumulates deterministic work units for one solve."""

    units: float = 0.0
    _events: dict[str, float] = field(default_factory=dict)

    def charge(self, kind: str, amount: float) -> None:
        """Record ``amount`` work units attributed to ``kind``."""
        if amount < 0:
            raise ValueError("work amounts must be non-negative")
        self.units += amount
        self._events[kind] = self._events.get(kind, 0.0) + amount

    def charge_lp(self, iterations: int, nnz: int) -> None:
        """Charge one LP relaxation solve: pivots plus matrix setup."""
        self.charge("lp_iterations", LP_ITERATION_COST * max(iterations, 1))
        self.charge("lp_setup", PER_NNZ_SETUP_COST * nnz)

    def charge_node(self) -> None:
        """Charge branch-and-bound node overhead."""
        self.charge("node_overhead", NODE_OVERHEAD_COST)

    def charge_heuristic(self, num_vars: int) -> None:
        """Charge one primal-heuristic rounding pass."""
        self.charge("heuristic", HEURISTIC_ROUND_COST * num_vars)

    def breakdown(self) -> dict[str, float]:
        """Work units per operation kind (a copy)."""
        return dict(self._events)

    def now(self) -> float:
        """Current deterministic time."""
        return self.units
