"""Tests for the mesh NoC, the mapped-processor traffic model and energy."""

import pytest

from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.mca.energy import EnergyModel, cost_summary, enabled_area
from repro.mca.noc import LinkLoad, MeshNoC, hop_weighted_packets
from repro.mca.processor import MappedProcessor, count_packets, target_crossbars
from repro.snn.network import Network


class TestMeshNoC:
    def test_positions_row_major(self):
        noc = MeshNoC(6, width=3)
        assert (noc.position(0).x, noc.position(0).y) == (0, 0)
        assert (noc.position(5).x, noc.position(5).y) == (2, 1)

    def test_square_default_width(self):
        noc = MeshNoC(9)
        assert noc.width == 3
        assert noc.height == 3

    def test_hops_manhattan(self):
        noc = MeshNoC(9, width=3)
        assert noc.hops(0, 8) == 4
        assert noc.hops(4, 4) == 0

    def test_route_endpoints_and_length(self):
        noc = MeshNoC(9, width=3)
        route = noc.route(0, 8)
        assert route[0] == 0 and route[-1] == 8
        assert len(route) == noc.hops(0, 8) + 1

    def test_route_is_xy(self):
        noc = MeshNoC(9, width=3)
        assert noc.route(0, 4) == [0, 1, 4]  # x first, then y

    def test_tile_bounds(self):
        with pytest.raises(IndexError):
            MeshNoC(4).position(4)
        with pytest.raises(ValueError):
            MeshNoC(0)

    def test_link_load_accumulates(self):
        load = LinkLoad()
        load.add_route([0, 1, 2], packets=3)
        load.add_route([1, 2], packets=2)
        assert load.loads[(1, 2)] == 5
        assert load.max_link_load == 5
        assert load.total_link_traversals == 8

    def test_hop_weighted_packets(self):
        noc = MeshNoC(4, width=2)
        total, load = hop_weighted_packets(noc, {(0, 3): 2, (1, 1): 9})
        assert total == 4  # 2 packets x 2 hops; self-pair ignored
        assert load.max_link_load == 2


def fan_out_network():
    """0 -> {1, 2}; 3 isolated."""
    net = Network("fanout")
    for i in range(4):
        net.add_neuron(i, is_input=(i == 0))
    net.add_synapse(0, 1)
    net.add_synapse(0, 2)
    return net


class TestPacketAccounting:
    def test_target_crossbars(self):
        net = fan_out_network()
        assignment = {0: 0, 1: 1, 2: 1, 3: 0}
        targets = target_crossbars(net, assignment)
        assert targets[0] == {1}
        assert targets[1] == set()

    def test_axon_sharing_one_packet_per_crossbar(self):
        # Both consumers on one crossbar: one packet per spike, not two.
        net = fan_out_network()
        assignment = {0: 0, 1: 1, 2: 1, 3: 0}
        local, global_, pairs = count_packets(net, assignment, {0: 5})
        assert global_ == 5
        assert local == 0
        assert pairs == {(0, 1): 5}

    def test_split_consumers_two_packets(self):
        net = fan_out_network()
        assignment = {0: 0, 1: 1, 2: 2, 3: 0}
        local, global_, pairs = count_packets(net, assignment, {0: 5})
        assert global_ == 10
        assert pairs == {(0, 1): 5, (0, 2): 5}

    def test_local_when_colocated(self):
        net = fan_out_network()
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        local, global_, _ = count_packets(net, assignment, {0: 4})
        assert local == 4
        assert global_ == 4

    def test_silent_neurons_send_nothing(self):
        net = fan_out_network()
        assignment = {0: 0, 1: 1, 2: 1, 3: 0}
        local, global_, pairs = count_packets(net, assignment, {0: 0, 1: 7})
        assert (local, global_) == (0, 0)
        assert pairs == {}


class TestMappedProcessor:
    @pytest.fixture
    def arch(self):
        return custom_architecture([(CrossbarType(4, 4), 3)])

    def test_validates_assignment(self, arch):
        net = fan_out_network()
        with pytest.raises(ValueError, match="missing"):
            MappedProcessor(net, {0: 0}, arch)
        with pytest.raises(ValueError, match="unknown crossbars"):
            MappedProcessor(net, {0: 9, 1: 0, 2: 0, 3: 0}, arch)

    def test_run_counts_traffic(self, arch):
        net = fan_out_network()
        proc = MappedProcessor(net, {0: 0, 1: 1, 2: 2, 3: 0}, arch)
        sim, traffic = proc.run(4, input_spikes={0: [0, 1]})
        assert sim.spike_counts[0] == 2
        assert traffic.global_packets == 4  # 2 spikes x 2 target crossbars
        assert traffic.local_packets == 0
        assert traffic.total_packets == 4
        assert traffic.hop_packets >= traffic.global_packets

    def test_traffic_from_counts_matches_run(self, arch):
        net = fan_out_network()
        proc = MappedProcessor(net, {0: 0, 1: 1, 2: 1, 3: 0}, arch)
        sim, traffic = proc.run(4, input_spikes={0: [0]})
        again = proc.traffic_from_counts(sim.spike_counts)
        assert again.global_packets == traffic.global_packets
        assert again.per_crossbar_packets == traffic.per_crossbar_packets


class TestEnergy:
    def test_enabled_area(self):
        arch = custom_architecture(
            [(CrossbarType(4, 4), 2), (CrossbarType(8, 8), 1)]
        )
        count, area = enabled_area(arch, {0: 0, 1: 2})
        assert count == 2
        assert area == 16 + 64

    def test_cost_summary_components(self):
        arch = custom_architecture([(CrossbarType(4, 4), 2)])
        net = fan_out_network()
        proc = MappedProcessor(net, {0: 0, 1: 1, 2: 1, 3: 0}, arch)
        _, traffic = proc.run(4, input_spikes={0: [0]})
        summary = cost_summary(arch, proc.assignment, traffic, duration=4)
        assert summary.enabled_crossbars == 2
        assert summary.area_memristors == 32
        assert summary.total_energy_pj == pytest.approx(
            summary.static_energy_pj + summary.communication_energy_pj
        )
        assert summary.communication_energy_pj > 0

    def test_energy_model_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(router_hop_pj=-1.0)
