"""Table I bench: regenerate the benchmark-network attribute table."""

from bench_config import once
from repro.experiments.networks import PAPER_NETWORK_SPECS, paper_network
from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import run_table1
from repro.snn.stats import network_stats

FULL = ExperimentConfig(scale=1.0)


def test_benchmark_table1(benchmark):
    report = once(benchmark, lambda: run_table1(FULL))
    assert "GiniIn" in report
    # Exact columns must match the paper at full scale.
    for name, spec in PAPER_NETWORK_SPECS.items():
        stats = network_stats(paper_network(name, scale=1.0))
        assert stats.node_count == spec.node_count
        assert stats.edge_count == spec.edge_count
        assert stats.max_fan_in == spec.max_fan_in
        # Gini targets are generator-approximate.
        assert abs(stats.gini_incoming - spec.gini_incoming) < 0.1
        assert abs(stats.gini_outgoing - spec.gini_outgoing) < 0.1
