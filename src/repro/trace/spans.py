"""Span and event records: the tracing subsystem's on-disk schema.

One JSONL line per record, two kinds:

``span``
    A timed interval: ``{"format", "kind": "span", "trace", "span",
    "parent", "name", "start", "dur", "proc", "attrs"}``.  ``start`` is
    wall-clock epoch seconds (so records from different processes line
    up), ``dur`` is seconds.
``event``
    A point-in-time observation (BnB incumbents, bound updates):
    ``{"format", "kind": "event", "trace", "span", "name", "ts",
    "proc", "attrs"}``.

Records are tolerant on the way in — :func:`parse_record` returns
``None`` for anything torn, stale or foreign, mirroring every other
journal in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bump when the span record schema changes; stale lines are skipped.
SPAN_FORMAT = 1

KIND_SPAN = "span"
KIND_EVENT = "event"


@dataclass
class Span:
    """One timed hop of a trace."""

    trace_id: str
    span_id: str
    name: str
    start: float  # epoch seconds
    duration: float  # seconds
    parent_id: str | None = None
    process: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def payload(self) -> dict:
        body: dict = {
            "format": SPAN_FORMAT,
            "kind": KIND_SPAN,
            "trace": self.trace_id,
            "span": self.span_id,
            "name": self.name,
            "start": self.start,
            "dur": self.duration,
            "proc": self.process,
        }
        if self.parent_id is not None:
            body["parent"] = self.parent_id
        if self.attrs:
            body["attrs"] = self.attrs
        return body


@dataclass
class TraceEvent:
    """One point-in-time observation inside a trace."""

    trace_id: str
    name: str
    ts: float  # epoch seconds
    span_id: str | None = None
    process: str = ""
    attrs: dict = field(default_factory=dict)

    def payload(self) -> dict:
        body: dict = {
            "format": SPAN_FORMAT,
            "kind": KIND_EVENT,
            "trace": self.trace_id,
            "name": self.name,
            "ts": self.ts,
            "proc": self.process,
        }
        if self.span_id is not None:
            body["span"] = self.span_id
        if self.attrs:
            body["attrs"] = self.attrs
        return body


def parse_record(record: dict) -> "Span | TraceEvent | None":
    """One journal dict -> Span/TraceEvent, or ``None`` for junk."""
    if not isinstance(record, dict) or record.get("format") != SPAN_FORMAT:
        return None
    kind = record.get("kind")
    trace_id = record.get("trace")
    name = record.get("name")
    if not isinstance(trace_id, str) or not isinstance(name, str):
        return None
    attrs = record.get("attrs")
    attrs = attrs if isinstance(attrs, dict) else {}
    try:
        if kind == KIND_SPAN:
            span_id = record.get("span")
            if not isinstance(span_id, str):
                return None
            return Span(
                trace_id=trace_id,
                span_id=span_id,
                name=name,
                start=float(record.get("start") or 0.0),
                duration=float(record.get("dur") or 0.0),
                parent_id=record.get("parent"),
                process=str(record.get("proc") or ""),
                attrs=attrs,
            )
        if kind == KIND_EVENT:
            return TraceEvent(
                trace_id=trace_id,
                name=name,
                ts=float(record.get("ts") or 0.0),
                span_id=record.get("span"),
                process=str(record.get("proc") or ""),
                attrs=attrs,
            )
    except (TypeError, ValueError):
        return None
    return None
