"""Discrete-time leaky-integrate-and-fire SNN simulator.

This is the simulation substrate the paper added to the TENNLab framework:
it executes a :class:`~repro.snn.network.Network` over discrete timesteps,
honouring synaptic delays, and records per-neuron spike counts — the
profile data ``W[i]`` consumed by the PGO formulation (§IV-D) and the spike
streams consumed by the multi-crossbar processor model
(:mod:`repro.mca.processor`).

Dynamics per timestep (TENNLab RISP-style):

1. membrane potentials decay by each neuron's ``leak`` factor,
2. charges scheduled for this timestep (delayed synaptic deliveries and
   external injections) are accumulated,
3. every neuron at or above threshold fires: the spike is recorded,
   outgoing charges are scheduled at ``t + delay``, and the potential
   resets to zero.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .network import Network


@dataclass
class SimulationResult:
    """Outcome of one simulator run.

    ``spikes`` is the raster as ``(timestep, neuron_id)`` pairs in firing
    order; ``spike_counts`` aggregates them per neuron (every neuron id
    appears, silent neurons with count 0).
    """

    duration: int
    spikes: list[tuple[int, int]] = field(default_factory=list)
    spike_counts: dict[int, int] = field(default_factory=dict)
    final_potentials: dict[int, float] = field(default_factory=dict)

    @property
    def total_spikes(self) -> int:
        return len(self.spikes)

    def spikes_of(self, neuron_id: int) -> list[int]:
        """Firing times of one neuron."""
        return [t for t, nid in self.spikes if nid == neuron_id]

    def spike_train(self, neuron_id: int) -> list[int]:
        """0/1 train of length ``duration`` for one neuron."""
        train = [0] * self.duration
        for t in self.spikes_of(neuron_id):
            train[t] = 1
        return train


class Simulator:
    """Executes a network over discrete timesteps."""

    def __init__(self, network: Network) -> None:
        self.network = network
        # Cache outgoing synapse tuples for the hot loop.
        self._out_syn: dict[int, list[tuple[int, float, int]]] = {
            nid: [
                (post, network.synapse(nid, post).weight,
                 network.synapse(nid, post).delay)
                for post in sorted(network.successors(nid))
            ]
            for nid in network.neuron_ids()
        }

    def run(
        self,
        duration: int,
        input_spikes: Mapping[int, Iterable[int]] | None = None,
        input_charges: Iterable[tuple[int, int, float]] | None = None,
    ) -> SimulationResult:
        """Simulate for ``duration`` timesteps.

        Parameters
        ----------
        input_spikes:
            neuron id -> timesteps at which an external spike arrives; each
            arrival injects exactly the neuron's threshold, forcing a fire
            (the usual TENNLab input convention).
        input_charges:
            arbitrary ``(neuron_id, timestep, amount)`` injections for
            sub-threshold stimulation.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        net = self.network
        pending: dict[int, dict[int, float]] = defaultdict(dict)  # t -> {nid: charge}

        def inject(nid: int, t: int, amount: float) -> None:
            if not net.has_neuron(nid):
                raise KeyError(f"input targets unknown neuron {nid}")
            if 0 <= t < duration:
                slot = pending[t]
                slot[nid] = slot.get(nid, 0.0) + amount

        if input_spikes:
            for nid, times in input_spikes.items():
                thr = net.neuron(nid).threshold
                for t in times:
                    inject(nid, t, thr)
        if input_charges:
            for nid, t, amount in input_charges:
                inject(nid, t, amount)

        potentials = {nid: 0.0 for nid in net.neuron_ids()}
        leaks = {n.id: n.leak for n in net.neurons()}
        thresholds = {n.id: n.threshold for n in net.neurons()}
        result = SimulationResult(duration=duration)
        counts = {nid: 0 for nid in net.neuron_ids()}

        for t in range(duration):
            for nid, leak in leaks.items():
                if leak != 1.0:
                    potentials[nid] *= leak
            for nid, charge in pending.pop(t, {}).items():
                potentials[nid] += charge
            # Deterministic firing order by neuron id.
            fired = [
                nid for nid in potentials
                if potentials[nid] >= thresholds[nid] - 1e-12
            ]
            for nid in sorted(fired):
                result.spikes.append((t, nid))
                counts[nid] += 1
                potentials[nid] = 0.0
                for post, weight, delay in self._out_syn[nid]:
                    target_t = t + delay
                    if target_t < duration:
                        slot = pending[target_t]
                        slot[post] = slot.get(post, 0.0) + weight

        result.spike_counts = counts
        result.final_potentials = dict(potentials)
        return result


def spike_profile(
    network: Network,
    samples: Iterable[Mapping[int, Iterable[int]]],
    duration: int,
) -> dict[int, int]:
    """Aggregate per-neuron spike counts over many input samples.

    This is the PGO profile ``W[i]`` of §IV-D: the number of times each
    neuron fired across the profiling dataset.
    """
    sim = Simulator(network)
    totals = {nid: 0 for nid in network.neuron_ids()}
    for sample in samples:
        result = sim.run(duration, input_spikes=sample)
        for nid, count in result.spike_counts.items():
            totals[nid] += count
    return totals
