"""Command-line interface.

Subcommands:

- ``repro map``      — map a network JSON onto a crossbar pool and save
  the mapping (area ILP, optional SNU stage).
- ``repro batch``    — map many network JSONs at once across a process
  pool, with optional solver portfolio and result cache.
- ``repro inspect``  — print Table-I statistics and structure of a network.
- ``repro simulate`` — run a saved mapping on the processor model and
  report traffic/energy.
- ``repro exhibits`` — alias of ``python -m repro.experiments.runner``.
- ``repro dse``      — design-space exploration: sweep an (architecture
  x workload x formulation) grid, report the (area, energy, latency)
  Pareto frontier, resumable via a JSONL run store.
- ``repro serve``    — run the long-lived mapping daemon: accept JSON
  job submissions over HTTP, share one batch engine + result cache +
  run store across every client.
- ``repro submit``   — client for ``repro serve``: submit one scenario
  (or a raw wire-format spec), stream/poll the result.
- ``repro bench``    — run the benchmark scripts under ``benchmarks/``
  and refresh the root-level ``BENCH_*.json`` perf-trajectory files.

Usage:  python -m repro.cli <subcommand> --help
"""

from __future__ import annotations

import argparse
import sys


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .experiments.runner import format_table
    from .snn.analysis import structure_report
    from .snn.io import load_network
    from .snn.stats import network_stats

    from .snn.validation import has_errors, lint_network

    network = load_network(args.network)
    stats = network_stats(network)
    rows = [
        ("neurons", stats.node_count),
        ("synapses", stats.edge_count),
        ("max fan-in", stats.max_fan_in),
        ("edge density", round(stats.edge_density, 5)),
        ("gini (incoming)", round(stats.gini_incoming, 4)),
        ("gini (outgoing)", round(stats.gini_outgoing, 4)),
    ]
    rows += structure_report(network).as_rows()
    print(format_table(["attribute", "value"], rows))
    issues = lint_network(network)
    if issues:
        print("\nlint findings:")
        for issue in issues:
            print(f"  {issue}")
    return 1 if has_errors(issues) else 0


def _load_pooled_network(path, homogeneous: bool, dimension: int):
    """Shared map/batch front door: load, compact, pick the crossbar pool."""
    from .mca.architecture import (
        heterogeneous_architecture,
        homogeneous_architecture,
    )
    from .snn.io import load_network

    compact, _ = load_network(path).compact()
    if homogeneous:
        arch = homogeneous_architecture(compact.num_neurons, dimension=dimension)
    else:
        arch = heterogeneous_architecture(compact.num_neurons)
    return compact, arch


def _cmd_map(args: argparse.Namespace) -> int:
    from .ilp.highs_backend import HighsBackend, HighsOptions
    from .mapping.axon_sharing import AreaModel
    from .mapping.greedy import greedy_first_fit
    from .mapping.io import save_mapping
    from .mapping.problem import MappingProblem
    from .mapping.snu import build_snu_model

    compact, arch = _load_pooled_network(
        args.network, args.homogeneous, args.dimension
    )
    problem = MappingProblem(compact, arch)

    handle = AreaModel(problem)
    warm = handle.warm_start_from(greedy_first_fit(problem))
    result = HighsBackend(HighsOptions(time_limit=args.time_limit)).solve(
        handle.model, warm_start=warm
    )
    mapping = handle.extract_mapping(result)
    print(f"area stage ({result.status.value}): {mapping.summary()}")

    if args.snu:
        snu = build_snu_model(problem, mapping)
        snu_result = HighsBackend(HighsOptions(time_limit=args.time_limit)).solve(
            snu.model, warm_start=snu.warm_start_from(mapping)
        )
        mapping = snu.extract_mapping(snu_result)
        print(f"SNU stage ({snu_result.status.value}): {mapping.summary()}")

    save_mapping(mapping, args.output)
    print(f"mapping written to {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .batch.cache import ResultCache
    from .batch.engine import BatchJob, BatchMapper
    from .mapping.io import save_mapping

    stages = ("area", "snu") if args.snu else ("area",)
    jobs = []
    used_names: set[str] = set()
    for path in args.networks:
        compact, arch = _load_pooled_network(
            path, args.homogeneous, args.dimension
        )
        # Same basename from different directories: suffix until unique so
        # job names (and output files) never collide — including with an
        # input whose real stem matches a generated suffix (net-2.json).
        stem = Path(path).stem
        name, counter = stem, 1
        while name in used_names:
            counter += 1
            name = f"{stem}-{counter}"
        used_names.add(name)
        jobs.append(
            BatchJob(
                name=name,
                network=compact,
                architecture=arch,
                stages=stages,
                area_time_limit=args.time_limit,
                route_time_limit=args.time_limit,
            )
        )

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    mapper = BatchMapper(jobs=args.jobs, portfolio=args.portfolio, cache=cache)
    result = mapper.map_all(jobs)
    print(result.report())
    if cache is not None:
        print(
            f"cache: {cache.stats.hits} hit(s), {cache.stats.misses} miss(es)"
        )

    if args.output_dir:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for record in result.succeeded():
            target = out_dir / f"{record.name}.mapping.json"
            save_mapping(record.final().mapping, target)
        print(f"{len(result.succeeded())} mapping(s) written to {out_dir}")
    return 0 if not result.failed() else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .mapping.io import load_mapping
    from .mca.energy import cost_summary
    from .mca.processor import MappedProcessor

    mapping = load_mapping(args.mapping)
    network = mapping.problem.network
    proc = MappedProcessor(
        network,
        mapping.assignment,
        mapping.problem.architecture,
        engine=args.engine,
    )
    spikes = {nid: list(range(0, args.duration, args.period))
              for nid in network.input_ids()}
    sim, traffic = proc.run(args.duration, input_spikes=spikes)
    summary = cost_summary(
        mapping.problem.architecture, mapping.assignment, traffic, args.duration
    )
    print(f"spikes           : {sim.total_spikes}")
    print(f"local packets    : {traffic.local_packets}")
    print(f"global packets   : {traffic.global_packets}")
    print(f"hop-packets      : {traffic.hop_packets}")
    print(f"peak link load   : {traffic.max_link_load}")
    print(f"energy estimate  : {summary.total_energy_pj:.1f} pJ")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .batch.cache import ResultCache
    from .dse import (
        Explorer,
        RunStore,
        default_space,
        explore_adaptive,
        explore_grid,
    )

    space = default_space(
        networks=tuple(args.networks),
        scale=args.scale,
        profiles=tuple(args.profiles),
        dimensions=tuple(args.dimensions),
        include_heterogeneous=not args.no_heterogeneous,
        include_snu=not args.no_snu,
        include_pgo=args.include_pgo,
        include_precision=args.include_precision,
        num_samples=args.num_samples,
    )
    store = RunStore(args.store) if args.store else RunStore()
    if args.store and len(store):
        print(f"run store {args.store}: resuming past {len(store)} entr(ies)")
    explorer = Explorer(
        store=store,
        jobs=args.jobs,
        portfolio=args.portfolio,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        time_limit=args.time_limit,
    )
    print(
        f"exploring {len(space)} scenario(s) "
        f"({len(space.architectures)} architectures x "
        f"{len(space.workloads)} workloads x "
        f"{len(space.formulations)} formulations) [{args.driver}]"
    )
    if args.driver == "grid":
        result = explore_grid(space, explorer)
    else:
        result = explore_adaptive(
            space,
            explorer,
            keep=args.keep,
            budget_fraction=args.budget_fraction,
            max_rungs=args.max_rungs,
            prune_slack=args.prune_slack,
        )
    print(result.report())
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_json(), indent=2) + "\n"
        )
        print(f"frontier summary written to {args.json}")
    failed = [r for r in result.results if not r.ok]
    if failed:
        print(f"{len(failed)} scenario(s) failed:")
        for r in failed:
            print(f"  {r.scenario.name}: {r.error}")
    # Mirror `repro batch`: any failed scenario fails the command, so a
    # sweep wired into CI cannot go green on partial coverage.
    return 0 if result.ok_results() and not failed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .batch.cache import ResultCache
    from .dse import Explorer, RunStore
    from .service.admission import AdmissionController
    from .service.daemon import MappingService, make_server, run_server
    from .service.worker import FleetConfig

    fleet = max(0, args.fleet)
    # Fleet workers share the store by path; sharding it keeps their
    # appends on independent locks.  Opening the store here — before any
    # worker spawns — also runs the one-shot single-file migration.
    store_shards = args.store_shards
    if fleet and args.store and store_shards is None:
        store_shards = 8
    store = (
        RunStore(args.store, shards=store_shards) if args.store else RunStore()
    )
    if args.store and len(store):
        print(f"run store {args.store}: {len(store)} entr(ies) warm")
    explorer = Explorer(
        store=store,
        jobs=args.jobs,
        portfolio=args.portfolio,
        # The shared cache is the point of the daemon: default to the
        # always-on memory tier when no directory is given.
        cache=ResultCache(args.cache_dir) if args.cache_dir else ResultCache(),
        time_limit=args.time_limit,
    )
    max_queue = args.max_queue
    if fleet and max_queue is None:
        # A fleet exists to survive heavy traffic; unbounded accept is
        # exactly the failure mode it retires.
        max_queue = 1024
    admission = AdmissionController(
        rate=args.rate,
        burst=args.burst,
        max_in_flight=args.max_inflight_per_client,
    )
    service = MappingService(
        explorer,
        workers=args.workers,
        journal_path=args.journal,
        job_log_path=args.log_jobs,
        fleet=fleet,
        ledger_path=args.ledger if fleet else None,
        max_queue_depth=max_queue,
        admission=admission,
        shed_after=args.shed_after,
        aging_interval=args.aging_interval,
        fleet_config=FleetConfig(
            store_path=args.store,
            store_shards=store_shards or 8,
            cache_dir=args.cache_dir,
            portfolio=args.portfolio,
            time_limit=args.time_limit,
            lease_ttl=args.lease_ttl,
            heartbeat_interval=args.heartbeat_interval,
            max_attempts=args.max_attempts,
            drain_timeout=args.drain_timeout,
        ),
        trace_dir=args.trace_dir,
        trace_slow_span=args.trace_slow_span,
    )
    server = make_server(service, host=args.host, port=args.port)

    # SIGTERM/SIGINT take the same clean-drain path as POST /shutdown:
    # stop accepting, let leased jobs finish (or re-queue them), flush
    # the journals — instead of dying mid-write on a bare KeyboardInterrupt.
    def _graceful_shutdown(signum, frame) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful_shutdown)
    signal.signal(signal.SIGINT, _graceful_shutdown)

    host, port = server.server_address[:2]
    print(f"repro service listening on http://{host}:{port}", flush=True)
    if fleet:
        print(
            f"fleet of {fleet} worker process(es); "
            f"ledger {args.ledger or '(in-memory)'}",
            flush=True,
        )
    if args.journal:
        replayed = len(service.registry.jobs())
        print(f"job journal {args.journal}: {replayed} job(s) replayed", flush=True)
    if args.log_jobs:
        print(f"structured job log -> {args.log_jobs}", flush=True)
    if args.trace_dir:
        print(f"span journals -> {args.trace_dir}", flush=True)
    print("POST /jobs to submit; POST /shutdown to stop", flush=True)
    run_server(service, server)
    store.close()
    print("repro service stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .dse.scenario import (
        ArchitectureSpec,
        FormulationSpec,
        Scenario,
        WorkloadSpec,
    )
    from .service.client import ServiceClient, ServiceError, StreamInterrupted
    from .service.wire import JobSpec

    try:
        if args.spec:
            from pathlib import Path

            payload = json.loads(Path(args.spec).read_text(encoding="utf-8"))
        else:
            scenario = Scenario(
                architecture=(
                    ArchitectureSpec(kind="homogeneous", dimension=args.dimension)
                    if args.homogeneous
                    else ArchitectureSpec(kind="heterogeneous")
                ),
                workload=WorkloadSpec(
                    network=args.network,
                    scale=args.scale,
                    profile=args.profile,
                    num_samples=args.num_samples,
                ),
                formulation=FormulationSpec(stages=tuple(args.stages)),
            )
            payload = JobSpec(
                scenarios=(scenario,),
                tier=args.tier,
                time_limit=args.time_limit,
                priority=args.priority,
                deadline_ms=args.deadline_ms,
            ).payload()
        if args.spec:
            # Flags win over the spec file's own keys, so one saved spec
            # can be resubmitted at a different lane/deadline.
            if args.priority != "normal":
                payload["priority"] = args.priority
            if args.deadline_ms is not None:
                payload["deadline_ms"] = args.deadline_ms
    except (ValueError, OSError) as exc:  # WireError is a ValueError
        print(f"invalid submission: {exc}", file=sys.stderr)
        return 2

    trace_context = None
    if args.trace is not None:
        from . import trace as trace_mod

        if args.trace == "new":
            trace_context = trace_mod.mint_context().encode()
        elif trace_mod.valid_encoded(args.trace):
            trace_context = args.trace
        else:
            print(
                f"invalid --trace {args.trace!r}: expected "
                "'<trace-id>' or '<trace-id>:<span-id>' (lowercase hex)",
                file=sys.stderr,
            )
            return 2

    client = ServiceClient(
        args.url,
        timeout=args.timeout,
        max_retries=args.retries,
        client=args.client,
    )
    try:
        submitted = client.submit(payload=payload, trace=trace_context)
        job_id = submitted["id"]
        print(f"submitted {job_id} ({submitted['scenarios']} scenario(s))")
        if submitted.get("trace"):
            trace_id = submitted["trace"].partition(":")[0]
            print(f"trace {trace_id} (repro trace {job_id} --url {args.url})")
        if args.stream:
            try:
                for event in client.stream(job_id, timeout=args.timeout):
                    print(json.dumps(event, sort_keys=True))
            except StreamInterrupted as exc:
                # Exit 3, not 2: the job was accepted and is probably
                # still running — only the watch broke.
                print(f"stream interrupted: {exc}", file=sys.stderr)
                print(
                    f"job {job_id} may still finish; "
                    f"poll with GET /jobs/{job_id}",
                    file=sys.stderr,
                )
                return 3
        detail = client.wait(job_id, timeout=args.timeout)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        if exc.status == 429:
            wait = exc.suggested_wait or exc.retry_after
            if wait is not None:
                print(
                    f"throttled; retry in {max(1, round(wait))}s",
                    file=sys.stderr,
                )
        return 2
    if not args.stream:
        for result in detail["results"]:
            tag = "cache" if result.get("cached") else result["status"]
            line = f"{result['scenario']:<40} {tag:<6}"
            if result.get("objectives"):
                obj = result["objectives"]
                line += (
                    f" area={obj['area']:g}"
                    f" energy={obj['energy']:g}"
                    f" latency={obj['latency']:g}"
                    f" solves={result['solves']}"
                )
            if result.get("error"):
                line += f" {result['error']}"
            print(line)
    print(f"job {job_id}: {detail['status']}")
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(json.dumps(detail, indent=2) + "\n")
        print(f"job detail written to {args.json}")
    return 0 if detail["status"] == "done" else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from . import trace as trace_mod

    target = Path(args.target)
    try:
        if target.is_dir():
            records = trace_mod.read_trace_dir(target, args.trace_id)
            source = f"directory {target}"
        elif target.is_file():
            from .jsonlio import read_jsonl

            records = list(read_jsonl(target))
            if args.trace_id:
                records = [
                    record for record in records
                    if record.get("trace") == args.trace_id
                ]
            source = f"journal {target}"
        else:
            from .service.client import ServiceClient, ServiceError

            client = ServiceClient(args.url)
            try:
                payload = client.trace(args.target)
            except ServiceError as exc:
                print(f"service error: {exc}", file=sys.stderr)
                if exc.status == 404:
                    print(
                        "unknown job id (and no such file/directory); is "
                        "the daemon running with --trace-dir?",
                        file=sys.stderr,
                    )
                return 2
            records = payload["records"]
            source = f"job {args.target} ({payload['status']})"
            if payload.get("progress"):
                progress = payload["progress"]
                gap = progress.get("gap")
                print(
                    "live progress: "
                    f"objective={progress.get('objective')} "
                    f"bound={progress.get('bound')}"
                    + (f" gap={gap:.3f}" if gap is not None else "")
                )
    except OSError as exc:
        print(f"cannot read {args.target}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"no trace records in {source}", file=sys.stderr)
        return 1
    print(trace_mod.render_tree(records))
    if args.slow:
        print(f"\nslowest {args.slow} span(s):")
        for span in trace_mod.slowest_spans(records, args.slow):
            print(
                f"  {span.duration * 1000.0:9.1f}ms  {span.name}"
                f"  [{span.process}]"
            )
    if args.chrome:
        chrome = trace_mod.chrome_trace(records)
        Path(args.chrome).write_text(
            json.dumps(chrome) + "\n", encoding="utf-8"
        )
        print(f"chrome trace written to {args.chrome}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import subprocess
    from pathlib import Path

    bench_dir = Path.cwd() / "benchmarks"
    if not bench_dir.is_dir():
        print(
            "no benchmarks/ directory here; run `repro bench` from the repo root",
            file=sys.stderr,
        )
        return 2
    if args.benches:
        targets = []
        for name in args.benches:
            stem = name if name.startswith("bench_") else f"bench_{name}"
            path = bench_dir / f"{Path(stem).stem}.py"
            if not path.is_file():
                print(f"unknown bench {name!r} ({path} missing)", file=sys.stderr)
                return 2
            targets.append(path)
    else:
        targets = sorted(bench_dir.glob("bench_*.py"))
        if args.trajectory_only:
            # Just the benches that emit BENCH_*.json trajectory files.
            targets = [
                t
                for t in targets
                if t.name
                in (
                    "bench_dse.py",
                    "bench_ilp.py",
                    "bench_service.py",
                    "bench_simulator.py",
                )
            ]
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[str(t) for t in targets],
        "--benchmark-only",
        "-q",
    ]
    print("running:", " ".join(command))
    import time

    run_started = time.time()
    status = subprocess.run(command).returncode

    # Refresh the root perf trajectory: mirror only the BENCH_*.json
    # artifacts this run actually (re)wrote — a stale artifact from a
    # bench that was not selected must never clobber a newer root file.
    refreshed = []
    for artifact in sorted(bench_dir.glob("BENCH_*.json")):
        if artifact.stat().st_mtime < run_started:
            continue
        target = bench_dir.parent / artifact.name
        target.write_text(artifact.read_text())
        refreshed.append(target.name)
    roots = sorted(p.name for p in bench_dir.parent.glob("BENCH_*.json"))
    print(f"root trajectory files: {', '.join(roots) or '(none)'}"
          + (f" (refreshed {', '.join(refreshed)})" if refreshed else ""))
    return status


def _cmd_exhibits(args: argparse.Namespace) -> int:
    from .experiments import runner

    forwarded: list[str] = []
    if args.exhibit:
        forwarded += ["--exhibit", args.exhibit]
    if args.full:
        forwarded.append("--full")
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.portfolio:
        forwarded.append("--portfolio")
    return runner.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNN-to-heterogeneous-crossbar mapping (DATE 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="network statistics and structure")
    inspect.add_argument("network", help="network JSON file")
    inspect.set_defaults(func=_cmd_inspect)

    map_cmd = sub.add_parser("map", help="map a network onto a crossbar pool")
    map_cmd.add_argument("network", help="network JSON file")
    map_cmd.add_argument("-o", "--output", default="mapping.json")
    map_cmd.add_argument("--homogeneous", action="store_true",
                         help="use a square homogeneous pool (default: Table II)")
    map_cmd.add_argument("--dimension", type=int, default=16,
                         help="homogeneous crossbar dimension")
    map_cmd.add_argument("--time-limit", type=float, default=30.0)
    map_cmd.add_argument("--snu", action="store_true",
                         help="run SNU route minimization after area")
    map_cmd.set_defaults(func=_cmd_map)

    batch = sub.add_parser(
        "batch", help="map many networks at once across a process pool"
    )
    batch.add_argument("networks", nargs="+", help="network JSON files")
    batch.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial)")
    batch.add_argument("--portfolio", action="store_true",
                       help="race HiGHS vs branch-and-bound per solve")
    batch.add_argument("--snu", action="store_true",
                       help="run SNU route minimization after area")
    batch.add_argument("--homogeneous", action="store_true",
                       help="use a square homogeneous pool (default: Table II)")
    batch.add_argument("--dimension", type=int, default=16,
                       help="homogeneous crossbar dimension")
    batch.add_argument("--time-limit", type=float, default=30.0,
                       help="per-stage solver budget in seconds")
    batch.add_argument("--cache-dir", default=None,
                       help="directory for the fingerprint-keyed result cache")
    batch.add_argument("-o", "--output-dir", default=None,
                       help="write one <name>.mapping.json per network here")
    batch.set_defaults(func=_cmd_batch)

    simulate = sub.add_parser("simulate", help="execute a saved mapping")
    simulate.add_argument("mapping", help="mapping JSON file")
    simulate.add_argument("--duration", type=int, default=64)
    simulate.add_argument("--period", type=int, default=4,
                          help="input spike period per input neuron")
    simulate.add_argument("--engine", choices=("vector", "reference"),
                          default=None,
                          help="simulation engine (default: $REPRO_SIM_ENGINE "
                               "or 'vector'); profiling library paths "
                               "(spike_profile, collect_profile, "
                               "evaluate_packets) accept the same engine=")
    simulate.set_defaults(func=_cmd_simulate)

    dse = sub.add_parser(
        "dse",
        help="design-space exploration: Pareto frontier over "
             "(area, energy, latency)",
    )
    dse.add_argument("--driver", choices=("grid", "adaptive"),
                     default="adaptive",
                     help="exhaustive grid, or successive halving that "
                          "spends ILP budget only on the promising band")
    dse.add_argument("--store", default=None,
                     help="JSONL run store; rerunning with the same store "
                          "resumes instead of re-solving")
    dse.add_argument("--jobs", type=int, default=1,
                     help="worker processes (1 = serial)")
    dse.add_argument("--portfolio", action="store_true",
                     help="race HiGHS vs branch-and-bound per solve")
    dse.add_argument("--time-limit", type=float, default=10.0,
                     help="per-stage solver budget in seconds")
    dse.add_argument("--cache-dir", default=None,
                     help="directory for the fingerprint-keyed result cache")
    dse.add_argument("--networks", nargs="+", default=["C", "E"],
                     choices=("A", "B", "C", "D", "E"), metavar="NAME",
                     help="Table-I twins to sweep (A-E)")
    dse.add_argument("--scale", type=float, default=0.12,
                     help="twin scaling factor")
    dse.add_argument("--profiles", nargs="+",
                     default=["uniform", "hotspot"],
                     choices=("uniform", "stroke", "hotspot", "noise"),
                     help="spike-profile families driving the energy axis")
    dse.add_argument("--dimensions", nargs="+", type=int, default=[12, 16],
                     help="homogeneous crossbar dimensions to sweep")
    dse.add_argument("--num-samples", type=int, default=12,
                     help="frames simulated per non-uniform profile")
    dse.add_argument("--no-heterogeneous", action="store_true",
                     help="drop the Table-II heterogeneous pool axis")
    dse.add_argument("--no-snu", action="store_true",
                     help="drop the area+snu formulation axis")
    dse.add_argument("--include-pgo", action="store_true",
                     help="add an area+snu+pgo formulation axis")
    dse.add_argument("--include-precision", action="store_true",
                     help="add a bit-sliced 4b-weight formulation axis")
    dse.add_argument("--keep", type=float, default=0.7,
                     help="adaptive: each rung's share of remaining budget")
    dse.add_argument("--budget-fraction", type=float, default=0.5,
                     help="adaptive: ILP-solve ceiling vs the full grid")
    dse.add_argument("--max-rungs", type=int, default=3,
                     help="adaptive: maximum promotion rungs")
    dse.add_argument("--prune-slack", type=float, default=0.25,
                     help="adaptive: optimism applied to greedy bounds "
                          "before pruning")
    dse.add_argument("--json", default=None,
                     help="write the frontier summary JSON here")
    dse.set_defaults(func=_cmd_dse)

    serve = sub.add_parser(
        "serve",
        help="long-lived mapping daemon sharing one engine/cache/run store",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="listen port (0 = pick a free one)")
    serve.add_argument("--workers", type=int, default=1,
                       help="service worker threads draining the job queue")
    serve.add_argument("--jobs", type=int, default=1,
                       help="solver worker processes per batch (1 = in-process)")
    serve.add_argument("--portfolio", action="store_true",
                       help="race HiGHS vs branch-and-bound per solve")
    serve.add_argument("--time-limit", type=float, default=10.0,
                       help="default per-stage solver budget in seconds")
    serve.add_argument("--cache-dir", default=None,
                       help="directory for the shared result cache "
                            "(default: in-memory)")
    serve.add_argument("--journal", default=None,
                       help="persistent job-registry journal (JSONL): job "
                            "status/results survive daemon restarts; jobs "
                            "interrupted by a restart resurface as errors")
    serve.add_argument("--log-jobs", default=None,
                       help="structured per-job log (JSONL): one line per "
                            "state transition and per scenario result")
    serve.add_argument("--store", default=None,
                       help="shared JSONL run store; submissions resume "
                            "from and append to it")
    serve.add_argument("--fleet", type=int, default=0,
                       help="spawn N supervised worker *processes* pulling "
                            "from a lease-based ledger (0 = classic "
                            "in-process threads)")
    serve.add_argument("--ledger", default=None,
                       help="durable job-lease ledger journal (JSONL); "
                            "with --fleet, leased jobs survive daemon "
                            "and worker crashes")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="bound on queued+running jobs; beyond it "
                            "submissions get HTTP 429 + Retry-After "
                            "(default: 1024 with --fleet, unbounded else)")
    serve.add_argument("--lease-ttl", type=float, default=15.0,
                       help="fleet: seconds a lease survives without a "
                            "heartbeat before it is re-queued")
    serve.add_argument("--heartbeat-interval", type=float, default=3.0,
                       help="fleet: seconds between worker heartbeats")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="fleet: attempts per job before dead-letter")
    serve.add_argument("--store-shards", type=int, default=None,
                       help="shard the run store into N flock'd JSONL "
                            "files (default: 8 with --fleet; single-file "
                            "otherwise); migrates a legacy store in place")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-client submission rate limit "
                            "(tokens/second; default: unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="per-client token-bucket capacity "
                            "(default: max(1, 2*rate))")
    serve.add_argument("--max-inflight-per-client", type=int, default=None,
                       help="max accepted-but-unfinished jobs per client "
                            "(default: unlimited)")
    serve.add_argument("--shed-after", type=float, default=None,
                       help="shed lowest-priority queued jobs once the "
                            "oldest has waited this many seconds "
                            "(default: never shed)")
    serve.add_argument("--aging-interval", type=float, default=30.0,
                       help="seconds of queue wait that promote a job one "
                            "priority class (anti-starvation aging)")
    serve.add_argument("--trace-dir", default=None,
                       help="span-journal directory; enables end-to-end "
                            "tracing (every job gets a trace id, "
                            "GET /jobs/<id>/trace serves the span tree)")
    serve.add_argument("--trace-slow-span", type=float, default=None,
                       help="log + count spans slower than this many "
                            "seconds (needs --trace-dir)")
    serve.add_argument("--drain-timeout", type=float, default=20.0,
                       help="fleet: seconds to wait for in-flight jobs "
                            "on shutdown before re-queueing them")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a mapping job to a running `repro serve`"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8100",
                        help="daemon base URL")
    submit.add_argument("--spec", default=None,
                        help="JSON file with a raw wire-format submission "
                             "(overrides the axis flags)")
    submit.add_argument("--network", default="C",
                        choices=("A", "B", "C", "D", "E"),
                        help="Table-I twin to map")
    submit.add_argument("--scale", type=float, default=0.12,
                        help="twin scaling factor")
    submit.add_argument("--profile", default="uniform",
                        choices=("uniform", "stroke", "hotspot", "noise"),
                        help="spike-profile family for the energy axis")
    submit.add_argument("--num-samples", type=int, default=12,
                        help="frames simulated per non-uniform profile")
    submit.add_argument("--homogeneous", action="store_true",
                        help="use a square homogeneous pool (default: Table II)")
    submit.add_argument("--dimension", type=int, default=16,
                        help="homogeneous crossbar dimension")
    submit.add_argument("--stages", nargs="+", default=["area"],
                        choices=("area", "snu", "pgo"),
                        help="mapping-pipeline stage prefix")
    submit.add_argument("--tier", default="ilp", choices=("ilp", "greedy"),
                        help="evaluation tier")
    submit.add_argument("--time-limit", type=float, default=None,
                        help="per-stage solver budget (default: server's)")
    submit.add_argument("--client", default="anonymous",
                        help="client identity for the daemon's per-client "
                             "quotas (sent as X-Repro-Client)")
    submit.add_argument("--priority", default="normal",
                        choices=("high", "normal", "batch"),
                        help="scheduling lane (batch work ages its way up, "
                             "never starves)")
    submit.add_argument("--deadline-ms", type=int, default=None,
                        help="end-to-end deadline in milliseconds; an "
                             "expired job fails fast as 'deadline'")
    submit.add_argument("--trace", nargs="?", const="new", default=None,
                        help="trace the job end to end: with no value, "
                             "mint a fresh trace id; with a value, join an "
                             "existing trace ('<trace-id>[:<span-id>]'). "
                             "Needs a server started with --trace-dir")
    submit.add_argument("--stream", action="store_true",
                        help="print the NDJSON event stream while waiting")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="client-side wait timeout in seconds")
    submit.add_argument("--retries", type=int, default=0,
                        help="retry transient GET failures and 429 "
                             "backpressure this many times")
    submit.add_argument("--json", default=None,
                        help="write the final job detail JSON here")
    submit.set_defaults(func=_cmd_submit)

    trace_cmd = sub.add_parser(
        "trace",
        help="inspect a job's span tree (from the daemon or journal files)",
    )
    trace_cmd.add_argument("target",
                           help="job id (fetched from --url), a span-journal "
                                ".jsonl file, or a trace directory")
    trace_cmd.add_argument("--url", default="http://127.0.0.1:8100",
                           help="daemon base URL (job-id targets)")
    trace_cmd.add_argument("--trace-id", default=None,
                           help="filter file/directory targets to one trace")
    trace_cmd.add_argument("--chrome", default=None, metavar="PATH",
                           help="also write a Chrome trace-event JSON "
                                "(load in Perfetto / chrome://tracing)")
    trace_cmd.add_argument("--slow", type=int, default=0, metavar="N",
                           help="also list the N slowest spans")
    trace_cmd.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="run benchmark scripts and refresh the root BENCH_*.json files",
    )
    bench.add_argument(
        "benches",
        nargs="*",
        help="bench names to run (e.g. ilp, simulator, batch); default: all",
    )
    bench.add_argument(
        "--trajectory-only",
        action="store_true",
        help="with no names: run only the BENCH_*.json-emitting benches",
    )
    bench.set_defaults(func=_cmd_bench)

    exhibits = sub.add_parser("exhibits", help="reproduce paper tables/figures")
    exhibits.add_argument("--exhibit", default="all")
    exhibits.add_argument("--full", action="store_true")
    exhibits.add_argument("--jobs", type=int, default=None)
    exhibits.add_argument("--portfolio", action="store_true")
    exhibits.set_defaults(func=_cmd_exhibits)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
