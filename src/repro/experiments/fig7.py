"""Fig. 7 reproduction: area/SNU evolution, network A, homogeneous MCA.

Every intermediate area solution becomes the basis for an SNU
optimization, tracing the (area, global routes) frontier over cumulative
solver time.  The paper also marks the hypothetical one-neuron-per-
minimal-crossbar bound on the solution space; we report the same bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ilp.highs_backend import solve_with_trace
from ..mapping.axon_sharing import AreaModel
from ..mapping.greedy import greedy_first_fit
from ..mapping.problem import MappingProblem
from .common import ExhibitResult, homo_problem, snu_optimize
from .networks import paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class FrontierPoint:
    """(area, routes) of one intermediate area solution and its SNU re-opt."""

    det_time: float  # cumulative solver det time including the SNU stage
    area: float
    routes_area_opt: int
    routes_snu_opt: int


def hypothetical_bound(problem: MappingProblem) -> tuple[float, int]:
    """One neuron per minimally sized crossbar: (area, global routes).

    Not achievable in any target architecture of the study (pools are
    finite and the smallest type may not fit every fan-in) but a useful
    solution-space landmark: area = n * min-type area, and every synapse
    becomes a global route endpoint.
    """
    smallest = min(
        problem.architecture.types(), key=lambda t: t.area
    )
    area = problem.num_neurons * smallest.area
    routes = sum(
        len(problem.preds(i)) for i in problem.network.neuron_ids()
    )
    return area, routes


def evolution_frontier(
    problem: MappingProblem, config: ExperimentConfig
) -> list[FrontierPoint]:
    """Shared Fig. 7 / Fig. 8 protocol."""
    handle = AreaModel(problem)
    warm = handle.warm_start_from(greedy_first_fit(problem))
    trace = solve_with_trace(
        handle.model,
        total_time=config.area_time_limit,
        num_slices=config.trace_slices,
        warm_start=warm,
    )
    points: list[FrontierPoint] = []
    for incumbent in trace.incumbents:
        assert incumbent.values is not None
        mapping = handle.mapping_from_values(dict(incumbent.values))
        snu = snu_optimize(problem, mapping, config)
        points.append(
            FrontierPoint(
                det_time=incumbent.det_time + snu.det_time,
                area=mapping.area(),
                routes_area_opt=mapping.global_routes(),
                routes_snu_opt=snu.mapping.global_routes(),
            )
        )
    return points


def run_fig7(config: ExperimentConfig) -> ExhibitResult:
    network = paper_network("A", scale=config.scale)
    problem = homo_problem(network, config)
    points = evolution_frontier(problem, config)
    bound_area, bound_routes = hypothetical_bound(problem)
    rows = [
        (round(p.det_time, 1), p.area, p.routes_area_opt, p.routes_snu_opt)
        for p in points
    ]
    headers = ["det_time", "area", "routes(area-opt)", "routes(SNU)"]
    note = (
        f"hypothetical one-neuron-per-minimal-crossbar bound: "
        f"area={bound_area:g}, routes={bound_routes} "
        "(paper shape: SNU improves every intermediate solution; "
        "area and routes trade off near the optimization limit)"
    )
    from .report import trend_line

    trends = "\n".join(
        [
            trend_line("area   ", [p.area for p in points]),
            trend_line("routes ", [p.routes_snu_opt for p in points]),
        ]
    )
    return ExhibitResult(
        report=format_table(headers, rows) + "\n" + trends + "\n" + note,
        rows=rows,
    )
