"""Persistent, resumable run store for exploration sweeps.

One JSONL file, one JSON object per line, append-only.  Each entry
records a finished evaluation keyed by ``(scenario fingerprint, tier)``
— ``tier`` distinguishes the adaptive driver's cheap greedy bound from a
real ILP evaluation, so a resumed sweep can trust an ILP entry but will
still upgrade a greedy one.

Append-only JSONL is deliberately crash-tolerant: a process killed
mid-write leaves at most one torn final line, which :meth:`RunStore._load`
skips (along with entries from older schema versions).  Re-evaluations
simply append again; the *last* entry per key wins, so the store doubles
as a history of the sweep.

Concurrent writers are safe: a store keeps **one** append handle open for
its whole life (instead of re-opening per entry) and takes an advisory
``flock`` around every append, so several worker processes — or the
mapping daemon's threads — can share a single JSONL file.  Before each
append the writer heals a torn tail left by a crashed sibling (a final
line without its newline) by terminating it, so the crash costs exactly
the one torn entry and never corrupts the next writer's line.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

try:  # advisory file locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bump when the entry schema changes; older entries are ignored on load.
STORE_FORMAT = 1

TIER_GREEDY = "greedy"
TIER_ILP = "ilp"


@dataclass(frozen=True)
class RunEntry:
    """One persisted evaluation."""

    fingerprint: str
    tier: str
    scenario: dict  # Scenario.payload() — for human/tool inspection
    status: str  # "ok" | "error"
    objectives: dict | None = None  # ObjectivePoint.as_dict() when ok
    assignment: dict | None = None  # neuron -> slot (stringed keys) when ok
    solves: int = 0  # ILP solves this evaluation spent
    wall_time: float = 0.0
    error: str | None = None
    meta: dict = field(default_factory=dict)  # driver breadcrumbs (rung, ...)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def key(self) -> tuple[str, str]:
        return (self.fingerprint, self.tier)

    def to_json(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "fingerprint": self.fingerprint,
            "tier": self.tier,
            "scenario": self.scenario,
            "status": self.status,
            "objectives": self.objectives,
            "assignment": self.assignment,
            "solves": self.solves,
            "wall_time": self.wall_time,
            "error": self.error,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunEntry":
        return cls(
            fingerprint=payload["fingerprint"],
            tier=payload["tier"],
            scenario=payload.get("scenario") or {},
            status=payload["status"],
            objectives=payload.get("objectives"),
            assignment=payload.get("assignment"),
            solves=int(payload.get("solves", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            error=payload.get("error"),
            meta=payload.get("meta") or {},
        )


class RunStore:
    """Append-only JSONL store of :class:`RunEntry` records.

    ``path=None`` keeps everything in memory (ephemeral sweeps and
    tests); otherwise entries are flushed line-by-line so a concurrent
    reader — or the next resumed run — sees every finished scenario.

    A persistent store is safe to share between processes: appends go
    through one long-lived handle under an advisory ``flock`` (plus an
    in-process mutex for threaded writers such as the mapping daemon).
    Use :meth:`reload` to pick up entries appended by *other* writers
    since this store was opened, and :meth:`close` (or the context
    manager form) to release the handle.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: dict[tuple[str, str], RunEntry] = {}
        self._loaded_lines = 0
        self._skipped_lines = 0
        self._handle: IO[bytes] | None = None
        self._lock = threading.Lock()
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if payload.get("format") != STORE_FORMAT:
                        raise ValueError("stale store format")
                    entry = RunEntry.from_json(payload)
                except (ValueError, KeyError, TypeError):
                    self._skipped_lines += 1  # torn tail line or old schema
                    continue
                self._entries[entry.key] = entry
                self._loaded_lines += 1

    def reload(self) -> int:
        """Re-read the file, merging entries appended by other writers.

        Returns the number of keyed entries after the reload.  A memory
        store is a no-op.  Entries recorded through *this* store are
        re-read from disk too (last line per key wins, as always), so the
        in-memory view converges with every sibling writer's.
        """
        with self._lock:
            if self.path is None or not self.path.exists():
                return len(self._entries)
            self._entries.clear()
            self._loaded_lines = 0
            self._skipped_lines = 0
            self._load()
            return len(self._entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def get(self, fingerprint: str, tier: str = TIER_ILP) -> RunEntry | None:
        return self._entries.get((fingerprint, tier))

    def entries(self) -> list[RunEntry]:
        return list(self._entries.values())

    def completed(self, tier: str = TIER_ILP) -> dict[str, RunEntry]:
        """fingerprint -> entry for every *successful* evaluation at a tier.

        Failed entries are deliberately excluded so a resumed sweep
        retries them — an error is not an answer worth pinning.
        """
        return {
            entry.fingerprint: entry
            for entry in self._entries.values()
            if entry.tier == tier and entry.ok
        }

    def record(self, entry: RunEntry) -> None:
        """Persist one evaluation (last write per key wins).

        The append happens through the store's single long-lived handle,
        serialized by an exclusive advisory lock: the full
        ``line + newline`` is flushed before the lock drops, so readers
        and sibling writers never observe a half-written entry (short of
        a crash, whose torn tail the next append heals).
        """
        line = json.dumps(entry.to_json(), sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._entries[entry.key] = entry
            if self.path is None:
                return
            handle = self._ensure_handle()
            self._flock(handle, exclusive=True)
            try:
                self._heal_torn_tail(handle)
                handle.write(line.encode("utf-8"))
                handle.write(b"\n")
                handle.flush()
            finally:
                self._funlock(handle)

    # ------------------------------------------------------------------
    def _ensure_handle(self) -> IO[bytes]:
        """The store's one append handle, opened lazily on first record."""
        if self._handle is None or self._handle.closed:
            assert self.path is not None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # "a+b": O_APPEND keeps every write at end-of-file no matter
            # which writer got there first; the read side lets the
            # torn-tail check inspect the current last byte under lock.
            self._handle = self.path.open("a+b")
        return self._handle

    @staticmethod
    def _heal_torn_tail(handle: IO[bytes]) -> None:
        """Terminate a torn final line left by a crashed writer.

        Must run under the exclusive lock.  If the file's last byte is
        not a newline, some sibling died mid-append; writing our entry
        straight after it would merge the two lines and lose *ours* too.
        A lone ``\\n`` turns the torn tail into one unparseable line that
        the loader already skips, and keeps every later entry intact.
        """
        size = handle.seek(0, 2)
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) != b"\n":
            handle.write(b"\n")

    @staticmethod
    def _flock(handle: IO[bytes], exclusive: bool) -> None:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)

    @staticmethod
    def _funlock(handle: IO[bytes]) -> None:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the append handle (records still work — it reopens)."""
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    @property
    def skipped_lines(self) -> int:
        """Unreadable lines encountered on load (torn tails, old formats)."""
        return self._skipped_lines
