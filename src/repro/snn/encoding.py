"""Spike-train encoders for sensor frames.

The paper's networks consume SmartPixel detector frames "converted into
spike train format" (§V-A).  This module provides the two standard
encodings used in the TENNLab ecosystem: rate coding and time-to-first-
spike (temporal) coding, plus a helper to encode a whole 2D frame onto a
network's input neurons.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def rate_encode(value: float, window: int) -> list[int]:
    """Encode ``value`` in [0, 1] as evenly spaced spikes over ``window``.

    A value of 1 spikes every timestep; 0 never spikes.  Spikes are spread
    deterministically (no Poisson noise) so profiles are reproducible.
    """
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"rate_encode expects value in [0, 1], got {value}")
    if window <= 0:
        raise ValueError("window must be positive")
    count = int(round(value * window))
    if count == 0:
        return []
    # Place spike k at floor(k * window / count) — evenly spread, start at 0.
    return sorted({(k * window) // count for k in range(count)})


def ttfs_encode(value: float, window: int) -> list[int]:
    """Time-to-first-spike: larger values spike earlier; zero never spikes."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"ttfs_encode expects value in [0, 1], got {value}")
    if window <= 0:
        raise ValueError("window must be positive")
    if value == 0.0:
        return []
    t = min(window - 1, int(round((1.0 - value) * (window - 1))))
    return [t]


def encode_frame(
    frame: np.ndarray,
    input_ids: Sequence[int],
    window: int,
    method: str = "rate",
) -> dict[int, list[int]]:
    """Encode a 2D (or flat) frame onto the given input neurons.

    The frame is flattened, normalized to [0, 1] by its max (a zero frame
    stays zero), and pixel ``p`` drives ``input_ids[p]``.  The frame must
    not have more pixels than there are input neurons; excess input neurons
    stay silent.
    """
    flat = np.asarray(frame, dtype=float).ravel()
    if flat.size > len(input_ids):
        raise ValueError(
            f"frame has {flat.size} pixels but only {len(input_ids)} input neurons"
        )
    peak = flat.max() if flat.size else 0.0
    if peak > 0:
        flat = flat / peak
    encoder = {"rate": rate_encode, "ttfs": ttfs_encode}.get(method)
    if encoder is None:
        raise ValueError(f"unknown encoding method {method!r}")
    spikes: dict[int, list[int]] = {}
    for pixel, value in enumerate(flat):
        train = encoder(float(value), window)
        if train:
            spikes[input_ids[pixel]] = train
    return spikes


def decode_rate(spike_counts: Mapping[int, int], output_ids: Sequence[int]) -> int:
    """Classify by the most active output neuron (ties -> lowest id)."""
    if not output_ids:
        raise ValueError("no output neurons to decode from")
    best = max(output_ids, key=lambda nid: (spike_counts.get(nid, 0), -nid))
    return list(output_ids).index(best)
