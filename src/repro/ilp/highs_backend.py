"""MILP backend on top of :func:`scipy.optimize.milp` (HiGHS).

This is the primary exact solver, standing in for the paper's OR-Tools
CP-SAT.  HiGHS does not expose an incumbent callback through SciPy, so
:func:`solve_with_trace` emulates the paper's intermediate-solution plots
(Figs. 3/7/8) with geometrically growing time-sliced re-solves; the
pure-Python branch-and-bound backend records true incumbent streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import Model
from .result import Incumbent, SolveResult, SolveStatus

#: Deterministic work units charged per HiGHS branch-and-bound node plus a
#: per-nonzero setup charge.  The scale is a convention (see
#: repro.ilp.dettime); mip_node_count is the only deterministic effort
#: figure SciPy exposes, so model size supplies the second-order term —
#: together they reproduce CP-SAT's "number, type and complexity of solver
#: operations" spirit.
DET_UNITS_PER_NODE = 25.0
DET_UNITS_PER_NNZ = 0.01


@dataclass(frozen=True)
class HighsOptions:
    """Solve limits and tolerances passed to HiGHS."""

    time_limit: float | None = None  # seconds of wall time
    mip_rel_gap: float | None = None  # stop at this relative gap
    node_limit: int | None = None
    presolve: bool = True

    def to_scipy(self) -> dict:
        options: dict = {"disp": False, "presolve": self.presolve}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        if self.mip_rel_gap is not None:
            options["mip_rel_gap"] = float(self.mip_rel_gap)
        if self.node_limit is not None:
            options["node_limit"] = int(self.node_limit)
        return options


class HighsBackend:
    """Solve a :class:`~repro.ilp.model.Model` exactly with HiGHS."""

    name = "highs"

    def __init__(self, options: HighsOptions | None = None) -> None:
        self.options = options or HighsOptions()

    def solve(
        self,
        model: Model,
        warm_start: dict[str, float] | np.ndarray | None = None,
        keep_values: bool = True,
    ) -> SolveResult:
        """Solve ``model``.

        ``warm_start`` (name-keyed dict or dense index-ordered vector)
        cannot seed HiGHS through SciPy, but a feasible warm start still
        helps: its objective is added as a cutoff constraint
        (``objective <= warm_obj``), which prunes the tree, and it is
        returned as the solution whenever HiGHS itself finds nothing better
        within its limits.
        """
        entry = time.perf_counter()
        form = model.lower()
        lower_wall = time.perf_counter() - entry
        warm_x: np.ndarray | None = None
        warm_obj: float | None = None
        if warm_start is not None:
            warm_x = model.dense_values(warm_start)
            violations = model.check_feasible(warm_x)
            if violations:
                raise ValueError(
                    f"warm start infeasible: {violations[:3]}"
                    + ("..." if len(violations) > 3 else "")
                )
            warm_obj = form.objective_value(warm_x)

        start = time.perf_counter()
        constraints = []
        if form.num_rows:
            constraints.append(
                LinearConstraint(form.a_matrix, form.row_lb, form.row_ub)
            )
        if warm_obj is not None:
            # Cutoff: sign-folded minimized objective must not exceed the
            # warm start's (also sign-folded) value.
            row = form.c.reshape(1, -1)
            cutoff = form.sign * warm_obj - form.offset
            constraints.append(LinearConstraint(row, -np.inf, cutoff + 1e-9))

        res = milp(
            c=form.c,
            constraints=constraints,
            integrality=form.integrality,
            bounds=Bounds(form.var_lb, form.var_ub),
            options=self.options.to_scipy(),
        )
        wall = time.perf_counter() - start
        nodes = int(getattr(res, "mip_node_count", 0) or 0)
        det_time = (
            DET_UNITS_PER_NODE * max(nodes, 1)
            + DET_UNITS_PER_NNZ * form.a_matrix.nnz
        )

        status = _translate_status(res)
        best_x: np.ndarray | None = None
        values: dict[str, float] | None = None
        objective: float | None = None
        if status.has_solution() and res.x is not None:
            best_x = _snap_integers(np.asarray(res.x), form.integrality)
            objective = form.objective_value(best_x)
        elif warm_x is not None:
            # HiGHS hit a limit (or pruned everything past the cutoff)
            # without an incumbent: fall back to the warm start.
            status = SolveStatus.FEASIBLE
            best_x = warm_x
            objective = warm_obj
        if best_x is not None and keep_values:
            values = model.values_dict(best_x)

        bound = None
        dual = getattr(res, "mip_dual_bound", None)
        if dual is not None and np.isfinite(dual):
            bound = form.sign * (float(dual) + form.offset)

        incumbents = []
        if objective is not None:
            incumbents.append(Incumbent(objective, det_time, wall, values))
        return SolveResult(
            status=status,
            objective=objective,
            values=values,
            x=best_x if keep_values else None,
            bound=bound,
            det_time=det_time,
            wall_time=wall,
            incumbents=incumbents,
            node_count=nodes,
            backend=self.name,
            phases=(("lower", lower_wall), ("solve", wall)),
        )


def solve_with_trace(
    model: Model,
    total_time: float,
    num_slices: int = 8,
    warm_start: dict[str, float] | np.ndarray | None = None,
) -> SolveResult:
    """Emulate an incumbent trajectory with geometric time-sliced re-solves.

    Runs HiGHS with time limits ``total_time / 2**(num_slices-1) ...
    total_time`` and records each improvement, approximating the
    intermediate-solution stream CP-SAT callbacks gave the paper.  The
    returned result is the final (largest-budget) solve with the merged
    incumbent trace attached.
    """
    if total_time <= 0:
        raise ValueError("total_time must be positive")
    limits = [total_time / (2 ** k) for k in reversed(range(num_slices))]
    best: SolveResult | None = None
    trace: list[Incumbent] = []
    seen_best = float("inf")
    det_accum = 0.0
    if warm_start is not None:
        # The warm start is the time-zero incumbent (as CP-SAT reports it).
        x0 = model.dense_values(warm_start)
        seen_best = model.objective_of(x0)
        trace.append(Incumbent(seen_best, 0.0, 0.0, model.values_dict(x0)))
    for limit in limits:
        backend = HighsBackend(HighsOptions(time_limit=limit))
        res = backend.solve(model, warm_start=warm_start)
        det_accum += res.det_time
        if res.status.has_solution() and res.objective is not None:
            if res.objective < seen_best - 1e-9:
                seen_best = res.objective
                trace.append(
                    Incumbent(res.objective, det_accum, res.wall_time, res.values)
                )
            if warm_start is None or res.objective < model.objective_of(warm_start):
                warm_start = res.values
        best = res
        if res.status is SolveStatus.OPTIMAL:
            break
    assert best is not None
    best.incumbents = trace
    best.det_time = det_accum
    return best


def _translate_status(res) -> SolveStatus:
    # scipy.optimize.milp status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    if res.status == 0:
        return SolveStatus.OPTIMAL
    if res.status == 2:
        return SolveStatus.INFEASIBLE
    if res.status == 3:
        return SolveStatus.UNBOUNDED
    if res.x is not None:
        return SolveStatus.FEASIBLE
    return SolveStatus.NO_SOLUTION


def _snap_integers(x: np.ndarray, integrality: np.ndarray) -> np.ndarray:
    """Round integer variables to exact integers (HiGHS returns floats)."""
    snapped = x.copy()
    mask = integrality > 0
    snapped[mask] = np.round(snapped[mask])
    return snapped
