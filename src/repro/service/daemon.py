"""The long-lived mapping daemon: worker loop + HTTP front end.

A :class:`MappingService` owns exactly one :class:`~repro.dse.explorer.
Explorer` — and through it one shared :class:`~repro.batch.engine.
BatchMapper`, one :class:`~repro.batch.cache.ResultCache` and one
:class:`~repro.dse.store.RunStore` — so every client submission warms
the same state: a job solved for one client is a zero-solve answer for
every later client that asks the same question.

Submissions flow ``HTTP -> JobRegistry -> JobQueue -> worker thread(s)
-> Explorer``; progress flows back as registry events that ``GET
/jobs/<id>/stream`` serves as NDJSON.  Endpoints:

==========================  =============================================
``POST /jobs``              submit (wire format, see :mod:`.wire`) -> 202
``GET /jobs``               job summaries, submission order
``GET /jobs/<id>``          full status, per-scenario results, event log
``GET /jobs/<id>/stream``   NDJSON event stream until the job finishes
``POST /jobs/<id>/cancel``  flag cancellation (queued: immediate)
``GET /healthz``            liveness + shared cache/store statistics
``GET /metrics``            lock-consistent counters/gauges/percentiles
``POST /shutdown``          stop accepting, stop serving, exit cleanly
==========================  =============================================

The server is stdlib :class:`http.server.ThreadingHTTPServer` — no new
dependencies; one handler thread per connection, solver work stays on
the service's worker threads.  The front end is hardened against rude
clients: request bodies are capped (413 beyond ``max_body_bytes``) and
every connection carries a socket timeout, so a client that connects
and never sends cannot pin a handler thread forever.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..batch.queue import JobQueue
from ..dse.explorer import Explorer
from ..dse.store import TIER_GREEDY
from .jobs import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_ERROR,
    JobRegistry,
    ServiceJob,
)
from .metrics import JsonlWriter, LoopLatencyProbe, ServiceMetrics
from .wire import WIRE_FORMAT, JobSpec, WireError, parse_job, result_payload

#: Seconds of stream silence before a ``ping`` keepalive event is sent.
STREAM_HEARTBEAT = 10.0

#: Default request-body cap; a scenario batch is a few KiB, so 1 MiB is
#: already generous headroom rather than a limit anyone should hit.
MAX_BODY_BYTES = 1 << 20

#: Default per-socket-operation timeout for handler connections.
HANDLER_TIMEOUT = 30.0


class PayloadTooLarge(ValueError):
    """A request body beyond the server's cap (maps to HTTP 413)."""


class MappingService:
    """Worker loop over one shared explorer, fed by a job queue.

    ``journal_path`` makes the job registry persistent: every state
    transition is appended (write-behind) to a JSONL journal that the
    next daemon pointed at the same path replays, so ``GET /jobs/<id>``
    survives a restart.  ``job_log_path`` opts into structured per-job
    logging: the same records (one JSON line per state transition and
    per scenario result), but to an operator-owned log file.
    """

    def __init__(
        self,
        explorer: Explorer | None = None,
        workers: int = 1,
        max_finished_jobs: int = 512,
        journal_path: str | Path | None = None,
        job_log_path: str | Path | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        # The default service still shares results across clients inside
        # one process: explorer evaluations land in its (memory) RunStore.
        self.explorer = explorer if explorer is not None else Explorer()
        self.metrics = ServiceMetrics()
        self._journal = (
            JsonlWriter(journal_path) if journal_path is not None else None
        )
        self._job_log = (
            JsonlWriter(job_log_path) if job_log_path is not None else None
        )
        observers = [self.metrics.job_event]
        if self._job_log is not None:
            observers.append(self._job_log.append)
        self.registry = JobRegistry(
            max_finished=max_finished_jobs,
            journal=self._journal,
            observers=tuple(observers),
        )
        self.queue = JobQueue()
        self.workers = workers
        # The shared engine reports solve progress into the same sink.
        self.explorer.mapper.metrics = self.metrics
        self._probe = LoopLatencyProbe(self.metrics)
        self._threads: list[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker thread(s) and the latency probe; idempotent."""
        if self._started:
            return
        self._started = True
        self._probe.start()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-service-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Close the queue, (optionally) join the workers, flush the logs."""
        self.queue.close()
        self._probe.stop()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
        for writer in (self._journal, self._job_log):
            if writer is not None:
                writer.close()

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> ServiceJob:
        """Register and enqueue one parsed submission."""
        job = self.registry.create(spec)
        try:
            self.queue.push(job, token=job.token)
        except RuntimeError:  # shutdown raced the submission
            self.registry.finish(job, JOB_ERROR, error="service is shutting down")
        return job

    def cancel(self, job_id: str) -> ServiceJob | None:
        return self.registry.cancel(job_id)

    def stats(self) -> dict:
        """The ``/healthz`` body: liveness plus shared-state counters."""
        cache = self.explorer.cache
        store = self.explorer.store
        return {
            "status": "ok",
            "format": WIRE_FORMAT,
            "workers": self.workers,
            "queued": len(self.queue),
            "jobs": self.registry.counts(),
            "cache": cache.stats.snapshot() if cache is not None else None,
            "store_entries": len(store),
            "store_path": str(store.path) if store.path is not None else None,
        }

    def metrics_payload(self) -> dict:
        """The ``GET /metrics`` body.

        Process-lifetime counters/gauges/histograms come from the
        :class:`ServiceMetrics` snapshot (one lock, so the scrape is
        self-consistent); live state — queue depth, per-state job
        counts, cache totals — is read from its owners under *their*
        locks at scrape time.  Within each section the invariants hold
        exactly: ``cache.hits + cache.misses == cache.lookups``, and
        ``counters.jobs_submitted`` covers every job this process
        accepted (replayed jobs belong to the old process and appear
        only in ``jobs.by_state``).
        """
        cache = self.explorer.cache
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        return {
            "status": "ok",
            "uptime": snapshot["uptime"],
            "workers": self.workers,
            "queue_depth": len(self.queue),
            "solves_in_flight": gauges.get("solves_in_flight", 0),
            "jobs": {
                "by_state": self.registry.counts(),
                "submitted": counters.get("jobs_submitted", 0),
                "started": counters.get("jobs_started", 0),
                "finished": {
                    "total": counters.get("jobs_finished", 0),
                    "done": counters.get("jobs_done", 0),
                    "error": counters.get("jobs_error", 0),
                    "cancelled": counters.get("jobs_cancelled", 0),
                },
            },
            "scenarios": {
                "total": counters.get("scenarios_total", 0),
                "ok": counters.get("scenarios_ok", 0),
                "error": counters.get("scenarios_error", 0),
                "cached": counters.get("scenarios_cached", 0),
            },
            "solves": {
                "mapper_jobs": counters.get("mapper_jobs", 0),
                "mapper_jobs_ok": counters.get("mapper_jobs_ok", 0),
                "mapper_jobs_error": counters.get("mapper_jobs_error", 0),
                "mapper_jobs_interrupted": counters.get(
                    "mapper_jobs_interrupted", 0
                ),
                "ilp_solves": counters.get("ilp_solves", 0),
            },
            "portfolio": snapshot["portfolio"],
            "cache": cache.stats.snapshot() if cache is not None else None,
            "store_entries": len(self.explorer.store),
            "latency": snapshot["latency"],
        }

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            popped = self.queue.pop(timeout=0.2)
            if popped is None:
                if self.queue.closed:
                    return
                continue
            job, _token = popped
            if self.queue.closed:
                # Shutdown: the backlog is cancelled, not executed — a
                # 202-accepted job must end terminal (with an event), not
                # vanish mid-solve when the process exits.
                job.token.cancel()
                self.registry.finish(job, JOB_CANCELLED)
                continue
            self.metrics.observe("queue_wait", time.time() - job.submitted_at)
            started = time.monotonic()
            try:
                self._run_job(job)
            except Exception as exc:  # defensive: a bug must not kill the loop
                self.registry.finish(
                    job, JOB_ERROR, error=f"{type(exc).__name__}: {exc}"
                )
            finally:
                self.metrics.observe("job_duration", time.monotonic() - started)

    def _run_job(self, job: ServiceJob) -> None:
        # start() refusing means a cancel won the race after the pop —
        # the job is already terminal and must not be resurrected.
        if job.token.cancelled or not self.registry.start(job):
            self.registry.finish(job, JOB_CANCELLED)
            return
        spec = job.spec
        scenarios = list(spec.scenarios)
        if spec.tier == TIER_GREEDY:
            results = self.explorer.evaluate_greedy(scenarios)
        else:
            # One batched call so a multi-scenario submission keeps the
            # engine's process-pool parallelism and warm-start waves;
            # the token is polled at solve boundaries inside the batch.
            results = self.explorer.evaluate_ilp(
                scenarios,
                time_limit=spec.time_limit,
                should_cancel=job.token,
            )
        for result in results:
            self.registry.add_result(job, result_payload(result))
        if job.token.cancelled:
            self.registry.finish(job, JOB_CANCELLED)
            return
        failed = [r for r in job.results if r.get("status") != "ok"]
        if failed:
            self.registry.finish(
                job, JOB_ERROR, error=f"{len(failed)} scenario(s) failed"
            )
        else:
            self.registry.finish(job, JOB_DONE)


# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`MappingService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: MappingService,
        max_body_bytes: int = MAX_BODY_BYTES,
        handler_timeout: float | None = HANDLER_TIMEOUT,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.max_body_bytes = max_body_bytes
        self.handler_timeout = handler_timeout


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # Quiet by default: the daemon is long-lived and per-request lines
    # belong to the operator's access log, not stderr.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def setup(self) -> None:
        # The per-server socket timeout: http.server applies self.timeout
        # in setup(), and handle_one_request() treats a timed-out read as
        # close_connection — so a client that connects and never sends
        # releases its handler thread instead of pinning it forever.
        self.timeout = self.server.handler_timeout
        super().setup()

    @property
    def service(self) -> MappingService:
        return self.server.service

    # -- plumbing ------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise WireError("Content-Length is not an integer") from None
        if length < 0:
            raise WireError("Content-Length is negative")
        if length > self.server.max_body_bytes:
            # Reject on the *declared* size, before reading a byte: an
            # unbounded read here would hand memory to any rude client.
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise WireError("empty request body (expected JSON)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from None

    def _job_or_404(self, job_id: str) -> ServiceJob | None:
        job = self.service.registry.get(job_id)
        if job is None:
            self._send_error_json(404, f"no such job {job_id!r}")
        return job

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if not parts:
            self._send_json(
                {
                    "service": "repro-mapping-service",
                    "format": WIRE_FORMAT,
                    "endpoints": [
                        "POST /jobs",
                        "GET /jobs",
                        "GET /jobs/<id>",
                        "GET /jobs/<id>/stream",
                        "POST /jobs/<id>/cancel",
                        "GET /healthz",
                        "GET /metrics",
                        "POST /shutdown",
                    ],
                }
            )
        elif parts == ["healthz"]:
            self._send_json(self.service.stats())
        elif parts == ["metrics"]:
            self._send_json(self.service.metrics_payload())
        elif parts == ["jobs"]:
            self._send_json(
                {"jobs": [job.summary() for job in self.service.registry.jobs()]}
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(job.detail())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._stream(job)
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if parts == ["jobs"]:
            try:
                spec = parse_job(self._read_json())
            except PayloadTooLarge as exc:
                self._send_error_json(413, str(exc))
                return
            except WireError as exc:
                self._send_error_json(400, str(exc))
                return
            job = self.service.submit(spec)
            self._send_json({**job.summary(), "stream": f"/jobs/{job.id}/stream"}, 202)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            job = self.service.cancel(parts[1])
            if job is None:
                self._send_error_json(404, f"no such job {parts[1]!r}")
            else:
                self._send_json(job.summary())
        elif parts == ["shutdown"]:
            self._send_json({"status": "shutting-down"})
            # shutdown() blocks until serve_forever exits, so it must run
            # off the handler thread; the serve loop then stops workers.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    # -- streaming -----------------------------------------------------
    def _stream(self, job: ServiceJob) -> None:
        """NDJSON event stream: replay, then follow until terminal."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        index = 0
        last_write = time.monotonic()
        registry = self.service.registry
        try:
            while True:
                events, index, drained = registry.events_since(job, index, timeout=0.5)
                for event in events:
                    self.wfile.write(
                        json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
                    )
                if events:
                    self.wfile.flush()
                    last_write = time.monotonic()
                if drained:
                    return
                if time.monotonic() - last_write > STREAM_HEARTBEAT:
                    # Keep idle streams alive through client read timeouts
                    # and proxies while a long solve produces no events.
                    self.wfile.write(b'{"event":"ping"}\n')
                    self.wfile.flush()
                    last_write = time.monotonic()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; the job keeps running


# ----------------------------------------------------------------------
def make_server(
    service: MappingService,
    host: str = "127.0.0.1",
    port: int = 8100,
    max_body_bytes: int = MAX_BODY_BYTES,
    handler_timeout: float | None = HANDLER_TIMEOUT,
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP front end; ``port=0`` picks a free one."""
    return ServiceHTTPServer(
        (host, port),
        service,
        max_body_bytes=max_body_bytes,
        handler_timeout=handler_timeout,
    )


def run_server(
    service: MappingService,
    server: ServiceHTTPServer,
) -> None:
    """Serve until ``POST /shutdown`` (or Ctrl-C), then stop the workers."""
    service.start()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop(wait=True)
