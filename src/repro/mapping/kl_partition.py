"""Kernighan-Lin-style partitioning baseline (Balaji et al. [22] flavour).

The related-work mappers partition the SNN into clusters that each fit one
(homogeneous) crossbar, minimizing the sum of cut costs.  This module
reproduces that family: a greedy seed partition refined by KL-style moves
and swaps that reduce the number of *global routes* while respecting both
capacity dimensions with true axon-sharing accounting.

It serves as the approximate, polynomial-time comparison point: fast, but
homogeneous-minded (clusters are sized for the smallest slot that fits)
and sub-optimal in area versus the ILP.
"""

from __future__ import annotations

from .greedy import greedy_first_fit
from .problem import MappingProblem
from .solution import Mapping


def _global_routes_delta(
    problem: MappingProblem,
    assignment: dict[int, int],
    neuron: int,
    new_slot: int,
) -> int:
    """Change in global-route count if ``neuron`` moves to ``new_slot``.

    Recomputes only the routes incident to the moved neuron: routes from
    its predecessors into its old/new crossbars, and its own routes toward
    crossbars holding its successors.
    """
    old_slot = assignment[neuron]
    if old_slot == new_slot:
        return 0

    def incident_globals(slot_of_neuron: int) -> int:
        count = 0
        # Routes feeding this neuron: one per (pred, crossbar-of-neuron)
        # pair that is not already required by a co-located consumer.
        for k in problem.preds(neuron):
            others = any(
                assignment[i] == slot_of_neuron
                for i in problem.succs(k)
                if i != neuron
            )
            if not others and assignment.get(k) != slot_of_neuron:
                count += 1
        # Routes this neuron emits: one per crossbar hosting a successor.
        targets = {assignment[i] for i in problem.succs(neuron)}
        count += sum(1 for t in targets if t != slot_of_neuron)
        return count

    before = incident_globals(old_slot)
    assignment[neuron] = new_slot
    after = incident_globals(new_slot)
    assignment[neuron] = old_slot
    return after - before


def _capacity_ok(
    problem: MappingProblem, assignment: dict[int, int], slot: int
) -> bool:
    members = frozenset(i for i, j in assignment.items() if j == slot)
    spec = problem.architecture.slot(slot)
    if len(members) > spec.outputs:
        return False
    return problem.axon_demand(members) <= spec.inputs


def kl_refine(
    problem: MappingProblem,
    initial: Mapping | None = None,
    max_passes: int = 8,
) -> Mapping:
    """Refine a mapping with first-improvement KL moves.

    Each pass tries to move every neuron to every other enabled crossbar;
    a move is committed when it strictly reduces global routes and keeps
    both capacity dimensions valid.  Stops at a pass with no improvement.
    """
    if max_passes < 1:
        raise ValueError("max_passes must be >= 1")
    base = initial if initial is not None else greedy_first_fit(problem)
    assignment = dict(base.assignment)
    enabled = sorted(set(assignment.values()))

    for _ in range(max_passes):
        improved = False
        for neuron in problem.network.neuron_ids():
            current = assignment[neuron]
            for target in enabled:
                if target == current:
                    continue
                delta = _global_routes_delta(problem, assignment, neuron, target)
                if delta >= 0:
                    continue
                assignment[neuron] = target
                if _capacity_ok(problem, assignment, target) and _capacity_ok(
                    problem, assignment, current
                ):
                    improved = True
                    break
                assignment[neuron] = current
        if not improved:
            break

    # Moves may have emptied crossbars; Mapping() recomputes enabled set.
    mapping = Mapping(problem, assignment)
    issues = mapping.validate()
    if issues:  # pragma: no cover - moves are capacity-checked
        raise AssertionError(f"KL refinement broke validity: {issues}")
    return mapping
