"""Thread-safe priority job queue with cancellation tokens.

The submission side of a long-lived mapping service: producers
:meth:`JobQueue.push` work items and hold on to the returned
:class:`CancelToken`; worker threads :meth:`JobQueue.pop` items in
effective-priority order.  A token cancelled while its item is still
queued makes the queue drop the item before a worker ever sees it; a
token cancelled while the item is running doubles as the
``should_cancel`` hook of :meth:`~repro.batch.engine.BatchMapper.
map_all`, aborting the remainder of the batch at the next job boundary.

Scheduling is three **priority lanes** (``high``/``normal``/``batch``),
FIFO within a lane, with **aging** between lanes: a lane's head is
scored ``rank - waited / aging_interval`` and the lowest score pops
next, so every 30 s (by default) of waiting promotes a job one full
priority class.  A ``batch`` job can be passed over by fresh ``high``
work for a while, but never forever — starved work ages its way to the
front, which is the queue-level half of the service's fairness story.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

PRIORITY_HIGH = "high"
PRIORITY_NORMAL = "normal"
PRIORITY_BATCH = "batch"

#: Scheduling lanes, most urgent first (also the tie-break order).
PRIORITIES = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_BATCH)

#: Numeric rank per lane; lower runs first.
PRIORITY_RANK = {PRIORITY_HIGH: 0, PRIORITY_NORMAL: 1, PRIORITY_BATCH: 2}

#: Seconds of waiting that promote a job one full priority class.
DEFAULT_AGING_INTERVAL = 30.0


def effective_priority(
    priority: str, waited: float, aging_interval: float = DEFAULT_AGING_INTERVAL
) -> float:
    """The scheduling score of a job that has waited ``waited`` seconds.

    Lower runs first.  A fresh ``high`` job scores 0; a ``batch`` job
    that has waited ``2 * aging_interval`` also scores 0 — aged
    promotion is what makes low-priority starvation impossible.
    """
    rank = PRIORITY_RANK.get(priority, PRIORITY_RANK[PRIORITY_NORMAL])
    return rank - max(0.0, waited) / max(1e-9, aging_interval)


class CancelToken:
    """A one-way cancellation flag shared by submitter and worker.

    Calling the token returns whether it is cancelled, so it plugs
    directly into ``should_cancel=`` hooks.  :meth:`subscribe` registers
    a callback fired exactly once when the token cancels (immediately if
    it already has) — the queue uses it to keep its live-depth counters
    exact without scanning.
    """

    __slots__ = ("_event", "_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list[Callable[[], None]] = []

    def cancel(self) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once on cancellation (now, if already cancelled)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __call__(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


class QueueFull(RuntimeError):
    """Push rejected: the queue is at its bounded depth.

    Carries an optional ``retry_after`` hint (seconds) that HTTP fronts
    forward as a ``Retry-After`` header — backpressure, not failure.
    """

    def __init__(
        self, message: str = "queue is full", retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _Entry:
    """One queued item; ``live`` flips false exactly once (cancel or pop)."""

    __slots__ = ("item", "token", "priority", "enqueued_at", "live")

    def __init__(
        self, item: Any, token: CancelToken, priority: str, enqueued_at: float
    ) -> None:
        self.item = item
        self.token = token
        self.priority = priority
        self.enqueued_at = enqueued_at
        self.live = True


class JobQueue:
    """Priority lanes of ``(item, CancelToken)`` pairs for worker loops.

    ``pop`` silently discards items whose token was cancelled while they
    waited — the canceller is responsible for any bookkeeping on the
    dropped item (the service registry marks the job cancelled before
    setting the token).  After :meth:`close`, pushes raise and ``pop``
    returns ``None`` once the queue drains, which is the worker's signal
    to exit.

    ``maxsize`` bounds the *live* depth (cancelled stragglers don't
    count): a push beyond it raises :class:`QueueFull` instead of
    accepting unbounded backlog.  Live depth is maintained as per-lane
    counters — decremented by the token's cancel callback and by pops —
    so the bounded-depth check is O(1); cancelled stragglers are
    compacted out of a lane once they outnumber its live entries.
    """

    def __init__(
        self,
        maxsize: int | None = None,
        aging_interval: float = DEFAULT_AGING_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if aging_interval <= 0:
            raise ValueError("aging_interval must be > 0")
        self._lanes: dict[str, deque[_Entry]] = {p: deque() for p in PRIORITIES}
        self._live: dict[str, int] = dict.fromkeys(PRIORITIES, 0)
        self._dead: dict[str, int] = dict.fromkeys(PRIORITIES, 0)
        # RLock: a push with a pre-cancelled token fires the subscribe
        # callback synchronously, re-entering the condition's lock.
        self._cond = threading.Condition(threading.RLock())
        self._closed = False
        self.maxsize = maxsize
        self.aging_interval = aging_interval
        self._clock = clock

    def push(
        self,
        item: Any,
        token: CancelToken | None = None,
        priority: str = PRIORITY_NORMAL,
    ) -> CancelToken:
        """Enqueue ``item``; returns its (possibly caller-made) token."""
        if priority not in PRIORITY_RANK:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            )
        token = token if token is not None else CancelToken()
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self.maxsize is not None and len(self) >= self.maxsize:
                raise QueueFull(
                    f"queue is at its bounded depth ({self.maxsize})"
                )
            entry = _Entry(item, token, priority, self._clock())
            self._lanes[priority].append(entry)
            self._live[priority] += 1
            token.subscribe(lambda: self._on_cancel(entry))
            self._cond.notify()
        return token

    def _on_cancel(self, entry: _Entry) -> None:
        # Fired exactly once per token; the entry may already have been
        # popped (a cancel landing mid-run is the engine's business).
        with self._cond:
            if not entry.live:
                return
            entry.live = False
            lane = entry.priority
            self._live[lane] -= 1
            self._dead[lane] += 1
            if self._dead[lane] * 2 > len(self._lanes[lane]):
                # Cancelled stragglers outnumber live entries: compact
                # so a flood of cancels can't bloat the deque forever.
                self._lanes[lane] = deque(
                    e for e in self._lanes[lane] if e.live
                )
                self._dead[lane] = 0

    def _next_entry(self) -> _Entry | None:
        # Caller holds the condition.  Drop dead heads, then race the
        # three lane heads by effective priority (aged rank).
        now = self._clock()
        best_lane: str | None = None
        best_score = 0.0
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            while lane and not lane[0].live:
                lane.popleft()
                self._dead[priority] = max(0, self._dead[priority] - 1)
            if not lane:
                continue
            score = effective_priority(
                priority, now - lane[0].enqueued_at, self.aging_interval
            )
            if best_lane is None or score < best_score:
                best_lane, best_score = priority, score
        if best_lane is None:
            return None
        entry = self._lanes[best_lane].popleft()
        entry.live = False
        self._live[best_lane] -= 1
        return entry

    def pop(self, timeout: float | None = None) -> tuple[Any, CancelToken] | None:
        """Next live ``(item, token)``, or ``None`` on timeout / drained close.

        ``timeout`` is a total deadline, not a per-wait budget: a worker
        woken by a notify whose item another worker stole (or whose
        token was cancelled while queued) goes back to waiting on the
        *remainder*, so ``pop(timeout=t)`` returns within ``t`` of the
        call no matter how many fruitless wake-ups happen in between.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                entry = self._next_entry()
                if entry is not None:
                    return entry.item, entry.token
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    return None

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return sum(self._live.values())

    # -- inspection (service metrics / overload shedding) ----------------
    def now(self) -> float:
        """The queue's clock, for interpreting ``snapshot_entries`` ages."""
        return self._clock()

    def lane_snapshot(self) -> dict[str, dict]:
        """Per-lane live depth and oldest wait (seconds), for ``/metrics``."""
        with self._cond:
            now = self._clock()
            body: dict[str, dict] = {}
            for priority in PRIORITIES:
                oldest = None
                for entry in self._lanes[priority]:
                    if entry.live:
                        oldest = now - entry.enqueued_at
                        break
                body[priority] = {
                    "depth": self._live[priority],
                    "oldest_wait": oldest,
                }
            return body

    def oldest_wait(self) -> float:
        """Seconds the longest-waiting live item has queued (0 if empty)."""
        with self._cond:
            now = self._clock()
            oldest = 0.0
            for lane in self._lanes.values():
                for entry in lane:
                    if entry.live:
                        oldest = max(oldest, now - entry.enqueued_at)
                        break
            return oldest

    def snapshot_entries(self) -> list[tuple[Any, CancelToken, str, float]]:
        """Live ``(item, token, priority, enqueued_at)`` rows (shed picker)."""
        with self._cond:
            return [
                (entry.item, entry.token, entry.priority, entry.enqueued_at)
                for lane in self._lanes.values()
                for entry in lane
                if entry.live
            ]
