"""Tests for the network linter."""

from repro.snn.network import Network
from repro.snn.validation import LintLevel, has_errors, lint_network


def codes(issues):
    return {i.code for i in issues}


class TestLintStructure:
    def test_empty_network(self):
        issues = lint_network(Network())
        assert codes(issues) == {"empty"}
        assert has_errors(issues)

    def test_missing_io_markers(self):
        net = Network()
        net.add_neuron(0)
        issues = lint_network(net)
        assert "no-inputs" in codes(issues)
        assert "no-outputs" in codes(issues)

    def test_clean_chain_passes(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1)
        net.add_neuron(2, is_output=True)
        net.add_synapse(0, 1, weight=1.5)
        net.add_synapse(1, 2, weight=1.5)
        issues = lint_network(net)
        assert not has_errors(issues)
        assert codes(issues) == set()

    def test_unreachable_neurons_flagged(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1, is_output=True)
        net.add_neuron(2)  # floating
        net.add_synapse(0, 1, weight=2.0)
        issues = lint_network(net)
        assert "unreachable" in codes(issues)
        assert "inert" in codes(issues)

    def test_zero_weight_and_self_loop(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1, is_output=True)
        net.add_synapse(0, 1, weight=0.0)
        net.add_synapse(1, 1, weight=1.5)
        found = codes(lint_network(net))
        assert "zero-weight" in found
        assert "self-loop" in found

    def test_never_fires_without_positive_drive(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1, is_output=True)
        net.add_synapse(0, 1, weight=-1.0)  # purely inhibitory drive
        assert "never-fires" in codes(lint_network(net))

    def test_leaky_underdriven_flagged(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        # leak 0.5 -> steady state = w / (1 - leak) = 0.2 < threshold 1.
        net.add_neuron(1, threshold=1.0, leak=0.5, is_output=True)
        net.add_synapse(0, 1, weight=0.1)
        assert "never-fires" in codes(lint_network(net))

    def test_integrator_accumulates_so_not_flagged(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1, threshold=1.0, leak=1.0, is_output=True)
        net.add_synapse(0, 1, weight=0.1)  # accumulates to threshold
        assert "never-fires" not in codes(lint_network(net))

    def test_issues_sorted_and_printable(self):
        net = Network()
        net.add_neuron(0)
        issues = lint_network(net)
        assert all(isinstance(str(i), str) for i in issues)
        levels = [i.level for i in issues]
        assert levels == sorted(levels, key=lambda level: level.value)


class TestHasErrors:
    def test_warning_only_is_not_error(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1, is_output=True)
        net.add_synapse(0, 1, weight=0.0)
        issues = lint_network(net)
        warnings_only = [i for i in issues if i.level is LintLevel.WARNING]
        assert warnings_only
        assert not has_errors(warnings_only)
