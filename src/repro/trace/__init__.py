"""Span-based distributed tracing for the mapping stack.

Threading model: a :class:`TraceContext` (``trace_id``/``span_id``) is
minted at ``POST /jobs`` (or accepted from the ``X-Repro-Trace``
header), rides the job spec through registry, queue and ledger, crosses
to fleet workers in the task protocol, and is re-activated ambiently
(:func:`activate`) wherever the job's work actually runs — so the batch
engine, the solver portfolio and the ILP backends record spans and
progress events without any of their signatures changing.

See :mod:`.runtime` for the ambient machinery, :mod:`.journal` for the
per-process JSONL journals and the supervisor merge, and :mod:`.export`
for the span-tree / Chrome-trace renderers behind ``repro trace``.
"""

from .context import (
    TRACE_HEADER,
    TraceContext,
    mint_context,
    new_span_id,
    new_trace_id,
    parse_context,
    valid_encoded,
)
from .export import chrome_trace, render_tree, slowest_spans, trace_ids
from .journal import MERGED_NAME, SpanJournal, merge_journal, read_trace_dir
from .runtime import (
    TraceRuntime,
    activate,
    current_context,
    current_job,
    event,
    get_runtime,
    install,
    progress,
    record_span,
    span,
    uninstall,
)
from .spans import SPAN_FORMAT, Span, TraceEvent, parse_record

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "mint_context",
    "new_span_id",
    "new_trace_id",
    "parse_context",
    "valid_encoded",
    "chrome_trace",
    "render_tree",
    "slowest_spans",
    "trace_ids",
    "MERGED_NAME",
    "SpanJournal",
    "merge_journal",
    "read_trace_dir",
    "TraceRuntime",
    "activate",
    "current_context",
    "current_job",
    "event",
    "get_runtime",
    "install",
    "progress",
    "record_span",
    "span",
    "uninstall",
    "SPAN_FORMAT",
    "Span",
    "TraceEvent",
    "parse_record",
]
