"""Scenario registry fingerprints and the resumable JSONL run store."""

from __future__ import annotations

import json

import pytest

from repro.dse.scenario import (
    ArchitectureSpec,
    DesignSpace,
    FormulationSpec,
    Scenario,
    ScenarioRegistry,
    WorkloadSpec,
    default_space,
)
from repro.dse.store import TIER_GREEDY, TIER_ILP, RunEntry, RunStore
from repro.mapping.precision import PrecisionSpec

pytestmark = pytest.mark.dse

SMALL = WorkloadSpec(network="C", scale=0.1, profile="uniform")


def _scenario(**kwargs) -> Scenario:
    return Scenario(
        architecture=kwargs.get("architecture", ArchitectureSpec()),
        workload=kwargs.get("workload", SMALL),
        formulation=kwargs.get("formulation", FormulationSpec()),
    )


class TestSpecs:
    def test_unknown_architecture_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ArchitectureSpec(kind="fpga")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            WorkloadSpec(profile="adversarial")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="stages"):
            FormulationSpec(stages=("area", "quantum"))

    def test_empty_stage_prefix_rejected(self):
        with pytest.raises(ValueError, match="stage"):
            FormulationSpec(stages=())

    def test_labels_are_readable(self):
        scenario = _scenario(
            formulation=FormulationSpec(
                stages=("area", "snu"),
                precision=PrecisionSpec(weight_bits=4, cell_bits=2),
            )
        )
        assert scenario.name == "Cx0.1-uniform/het8/area+snu-w4c2"
        assert scenario.slices == 2


class TestDesignSpace:
    def test_len_is_the_cross_product(self):
        space = default_space()
        assert len(space) == len(space.scenarios()) == 24

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DesignSpace(architectures=(), workloads=(SMALL,),
                        formulations=(FormulationSpec(),))

    def test_default_space_meets_the_acceptance_shape(self):
        space = default_space()
        assert len(space.architectures) >= 2
        assert len({w.profile for w in space.workloads}) >= 2
        assert len({w.network for w in space.workloads}) >= 2
        assert len(space.formulations) >= 2
        assert len(space) >= 24

    def test_scenarios_are_workload_major(self):
        """Neighbors share a workload, so registry memoization pays off."""
        scenarios = default_space().scenarios()
        per_block = len(scenarios) // len(default_space().workloads)
        first_block = scenarios[:per_block]
        assert len({s.workload for s in first_block}) == 1


class TestFingerprints:
    def test_deterministic_across_registries(self):
        scenario = _scenario()
        assert ScenarioRegistry().fingerprint(scenario) == ScenarioRegistry(
        ).fingerprint(scenario)

    def test_axis_changes_change_the_fingerprint(self):
        registry = ScenarioRegistry()
        base = registry.fingerprint(_scenario())
        assert registry.fingerprint(
            _scenario(architecture=ArchitectureSpec(kind="homogeneous"))
        ) != base
        assert registry.fingerprint(
            _scenario(formulation=FormulationSpec(stages=("area", "snu")))
        ) != base
        assert registry.fingerprint(
            _scenario(workload=WorkloadSpec(network="C", scale=0.1,
                                            profile="hotspot"))
        ) != base

    def test_uniform_profile_ignores_simulation_knobs(self):
        """Resume must hit uniform entries across --num-samples values."""
        registry = ScenarioRegistry()
        base = registry.fingerprint(_scenario())
        assert registry.fingerprint(
            _scenario(workload=WorkloadSpec(network="C", scale=0.1,
                                            profile="uniform",
                                            num_samples=2, window=8, seed=7))
        ) == base

    def test_simulated_profiles_keep_the_simulation_knobs(self):
        registry = ScenarioRegistry()
        hotspot = WorkloadSpec(network="C", scale=0.1, profile="hotspot")
        assert registry.fingerprint(_scenario(workload=hotspot)) != (
            registry.fingerprint(
                _scenario(workload=WorkloadSpec(network="C", scale=0.1,
                                                profile="hotspot", seed=9))
            )
        )

    def test_mesh_width_changes_the_fingerprint(self):
        registry = ScenarioRegistry()
        assert registry.fingerprint(_scenario()) != registry.fingerprint(
            _scenario(architecture=ArchitectureSpec(mesh_width=2))
        )

    def test_registry_memoizes_networks(self):
        registry = ScenarioRegistry()
        first = registry.network(SMALL)
        again = registry.network(
            WorkloadSpec(network="C", scale=0.1, profile="hotspot")
        )
        assert first is again  # same (name, scale) → same instance

    def test_to_job_carries_every_axis(self):
        registry = ScenarioRegistry()
        scenario = _scenario(
            formulation=FormulationSpec(
                stages=("area",), precision=PrecisionSpec(4, 2)
            )
        )
        job = registry.to_job(scenario, time_limit=7.0,
                              initial_assignment={0: 1})
        assert job.stages == ("area",)
        assert job.precision == PrecisionSpec(4, 2)
        assert job.area_time_limit == 7.0
        assert job.initial_assignment == ((0, 1),)
        assert job.profile is not None


def _entry(fingerprint: str, tier: str = TIER_ILP, **kwargs) -> RunEntry:
    return RunEntry(
        fingerprint=fingerprint,
        tier=tier,
        scenario={"kind": "scenario"},
        status=kwargs.pop("status", "ok"),
        objectives=kwargs.pop(
            "objectives", {"area": 1.0, "energy": 2.0, "latency": 3.0}
        ),
        **kwargs,
    )


class TestRunStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunStore(path).record(_entry("abc", solves=2, wall_time=1.5))
        loaded = RunStore(path)
        entry = loaded.get("abc")
        assert entry is not None and entry.ok
        assert entry.solves == 2
        assert entry.objectives["energy"] == 2.0

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.record(_entry("abc", objectives={"area": 1.0, "energy": 1.0,
                                               "latency": 1.0}))
        store.record(_entry("abc", objectives={"area": 9.0, "energy": 9.0,
                                               "latency": 9.0}))
        assert RunStore(path).get("abc").objectives["area"] == 9.0
        assert len(RunStore(path)) == 1  # keyed, not a log

    def test_tiers_are_independent_keys(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.record(_entry("abc", tier=TIER_GREEDY))
        store.record(_entry("abc", tier=TIER_ILP))
        loaded = RunStore(path)
        assert len(loaded) == 2
        assert loaded.get("abc", TIER_GREEDY) is not None
        assert loaded.get("abc", TIER_ILP) is not None

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunStore(path).record(_entry("abc"))
        with path.open("a") as handle:
            handle.write('{"format": 1, "fingerprint": "tor')  # crash mid-write
        loaded = RunStore(path)
        assert len(loaded) == 1
        assert loaded.skipped_lines == 1

    def test_stale_format_is_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with path.open("w") as handle:
            handle.write(json.dumps({"format": 0, "fingerprint": "old",
                                     "tier": TIER_ILP, "status": "ok"}) + "\n")
        loaded = RunStore(path)
        assert len(loaded) == 0
        assert loaded.skipped_lines == 1

    def test_failed_entries_are_not_completed(self):
        store = RunStore()
        store.record(_entry("bad", status="error", objectives=None,
                            error="boom"))
        store.record(_entry("good"))
        completed = store.completed(TIER_ILP)
        assert set(completed) == {"good"}

    def test_memory_store_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = RunStore()
        store.record(_entry("abc"))
        assert list(tmp_path.iterdir()) == []
