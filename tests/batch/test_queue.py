"""JobQueue / CancelToken semantics and the engine's cancellation hook."""

from __future__ import annotations

import threading

import pytest

from repro.batch.engine import BatchMapper
from repro.batch.queue import (
    CancelToken,
    JobQueue,
    QueueFull,
    effective_priority,
)

pytestmark = pytest.mark.batch


class FakeClock:
    """A settable monotonic clock for deterministic aging tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCancelToken:
    def test_starts_live_and_cancels_once(self):
        token = CancelToken()
        assert not token.cancelled
        assert token() is False
        token.cancel()
        assert token.cancelled
        assert token() is True  # callable form == should_cancel hook


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue()
        queue.push("a")
        queue.push("b")
        assert queue.pop(timeout=0)[0] == "a"
        assert queue.pop(timeout=0)[0] == "b"

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_cancelled_while_queued_is_dropped(self):
        queue = JobQueue()
        token = queue.push("doomed")
        queue.push("fine")
        token.cancel()
        item, _ = queue.pop(timeout=0)
        assert item == "fine"
        assert queue.pop(timeout=0) is None

    def test_len_ignores_cancelled(self):
        queue = JobQueue()
        token = queue.push("a")
        queue.push("b")
        assert len(queue) == 2
        token.cancel()
        assert len(queue) == 1

    def test_close_refuses_pushes_and_wakes_poppers(self):
        queue = JobQueue()
        popped: list = []

        def _blocked_pop() -> None:
            popped.append(queue.pop(timeout=30))

        thread = threading.Thread(target=_blocked_pop)
        thread.start()
        queue.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert popped == [None]
        with pytest.raises(RuntimeError, match="closed"):
            queue.push("late")

    def test_close_drains_remaining_items(self):
        queue = JobQueue()
        queue.push("left-over")
        queue.close()
        assert queue.pop(timeout=0)[0] == "left-over"
        assert queue.pop(timeout=0) is None

    def test_pop_timeout_is_a_total_deadline(self):
        """Wakeups that find only cancelled items must not reset the wait.

        The regression this guards: ``pop`` re-armed ``wait(timeout)``
        with the *full* timeout after every notification, so a steady
        drip of cancelled jobs could make a 0.5s pop sleep for minutes.
        """
        import time

        queue = JobQueue()
        stop = threading.Event()

        def drip_cancelled() -> None:
            # Wake the popper more often than its timeout, forever.  The
            # token is cancelled *before* the push so the popper can
            # never race in and win the item.
            while not stop.is_set():
                dead = CancelToken()
                dead.cancel()
                queue.push("noise", token=dead)
                time.sleep(0.05)

        pusher = threading.Thread(target=drip_cancelled)
        pusher.start()
        try:
            start = time.monotonic()
            item = queue.pop(timeout=0.5)
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            pusher.join(timeout=10)
        assert item is None
        # Old behaviour: each 0.05s wakeup restarted the 0.5s wait, so
        # the pop would outlive the pusher. With a real deadline it
        # returns close to the requested timeout.
        assert 0.4 <= elapsed < 3.0


class TestBoundedDepth:
    def test_push_beyond_maxsize_raises_queue_full(self):
        queue = JobQueue(maxsize=2)
        queue.push("a")
        queue.push("b")
        with pytest.raises(QueueFull, match="bounded depth"):
            queue.push("c")

    def test_cancelled_items_free_their_slot(self):
        queue = JobQueue(maxsize=1)
        token = queue.push("a")
        token.cancel()
        queue.push("b")  # the cancelled straggler no longer counts

    def test_pop_reopens_capacity(self):
        queue = JobQueue(maxsize=1)
        queue.push("a")
        assert queue.pop(timeout=0)[0] == "a"
        queue.push("b")

    def test_unbounded_by_default(self):
        queue = JobQueue()
        for index in range(1000):
            queue.push(index)
        assert len(queue) == 1000

    def test_maxsize_below_one_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)

    def test_queue_full_carries_retry_after(self):
        error = QueueFull("full", retry_after=4.5)
        assert error.retry_after == 4.5
        assert QueueFull().retry_after is None


class TestPriorityLanes:
    def test_effective_priority_scores(self):
        assert effective_priority("high", 0.0) == 0.0
        assert effective_priority("batch", 0.0) == 2.0
        # 2 aging intervals of waiting promote batch to fresh-high level.
        assert effective_priority("batch", 60.0, aging_interval=30.0) == 0.0

    def test_pop_order_is_high_normal_batch(self):
        queue = JobQueue(clock=FakeClock())
        queue.push("b", priority="batch")
        queue.push("n", priority="normal")
        queue.push("h", priority="high")
        assert [queue.pop(timeout=0)[0] for _ in range(3)] == ["h", "n", "b"]

    def test_fifo_within_a_lane(self):
        queue = JobQueue(clock=FakeClock())
        queue.push("first", priority="high")
        queue.push("second", priority="high")
        assert queue.pop(timeout=0)[0] == "first"

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            JobQueue().push("x", priority="urgent")

    def test_aged_batch_beats_fresh_high(self):
        clock = FakeClock()
        queue = JobQueue(aging_interval=1.0, clock=clock)
        queue.push("starved", priority="batch")
        clock.advance(3.0)  # batch score: 2 - 3/1 = -1 < fresh high's 0
        queue.push("fresh", priority="high")
        assert queue.pop(timeout=0)[0] == "starved"
        assert queue.pop(timeout=0)[0] == "fresh"

    def test_no_starvation_under_steady_high_traffic(self):
        """A batch job outlasts any stream of fresh high-priority work."""
        clock = FakeClock()
        queue = JobQueue(aging_interval=1.0, clock=clock)
        queue.push("batch-job", priority="batch")
        popped = []
        for index in range(10):
            queue.push(f"high-{index}", priority="high")
            clock.advance(0.5)
            popped.append(queue.pop(timeout=0)[0])
        assert "batch-job" in popped  # aged its way past the flood

    def test_lane_snapshot_depth_and_wait(self):
        clock = FakeClock()
        queue = JobQueue(clock=clock)
        queue.push("a", priority="batch")
        clock.advance(2.0)
        queue.push("b", priority="batch")
        snapshot = queue.lane_snapshot()
        assert snapshot["batch"]["depth"] == 2
        assert snapshot["batch"]["oldest_wait"] == pytest.approx(2.0)
        assert snapshot["high"] == {"depth": 0, "oldest_wait": None}


class TestLiveDepthCounters:
    def test_cancel_flood_compacts_the_lane(self):
        queue = JobQueue()
        tokens = [queue.push(i) for i in range(20)]
        for token in tokens[:15]:
            token.cancel()
        assert len(queue) == 5
        # Compaction keeps the deque near the live size instead of
        # accumulating every cancelled straggler until pop time.
        assert len(queue._lanes["normal"]) <= 10

    def test_precancelled_token_never_counts(self):
        queue = JobQueue(maxsize=1)
        dead = CancelToken()
        dead.cancel()
        queue.push("noise", token=dead)  # subscribe fires synchronously
        assert len(queue) == 0
        queue.push("real")  # the dead entry freed its slot immediately

    def test_snapshot_entries_lists_only_live(self):
        queue = JobQueue(clock=FakeClock())
        token = queue.push("doomed", priority="batch")
        queue.push("live", priority="high")
        token.cancel()
        rows = queue.snapshot_entries()
        assert [row[0] for row in rows] == ["live"]
        assert rows[0][2] == "high"


class TestMapAllCancellationHook:
    def test_precancelled_batch_runs_nothing(self, batch_jobs):
        token = CancelToken()
        token.cancel()
        result = BatchMapper().map_all(batch_jobs, should_cancel=token)
        assert len(result.records) == len(batch_jobs)
        assert all(not record.ok for record in result.records)
        assert all("cancelled" in record.error for record in result.records)

    def test_cancel_after_first_job_stops_the_rest(self, batch_jobs):
        assert len(batch_jobs) >= 2
        token = CancelToken()
        calls = {"count": 0}

        def should_cancel() -> bool:
            # The engine polls once up front and once per job boundary;
            # cancelling on the third poll lets exactly job 0 execute.
            calls["count"] += 1
            if calls["count"] > 2:
                token.cancel()
            return token.cancelled

        result = BatchMapper().map_all(batch_jobs, should_cancel=should_cancel)
        records = result.records
        assert records[0].ok
        assert all(not record.ok for record in records[1:])
        assert all("cancelled" in record.error for record in records[1:])

    def test_precancelled_pooled_batch_never_spins_up_workers(self, batch_jobs):
        """The pre-submit check must fire before any pool is created."""
        import time

        token = CancelToken()
        token.cancel()
        start = time.perf_counter()
        result = BatchMapper(jobs=2).map_all(batch_jobs, should_cancel=token)
        elapsed = time.perf_counter() - start
        assert all(not record.ok for record in result.records)
        # No pool startup, no solves: this is instantaneous bookkeeping.
        assert elapsed < 2.0

    def test_cancelled_jobs_are_not_cached(self, batch_jobs):
        from repro.batch.cache import ResultCache

        cache = ResultCache()
        token = CancelToken()
        token.cancel()
        BatchMapper(cache=cache).map_all(batch_jobs, should_cancel=token)
        assert cache.stats.stores == 0
