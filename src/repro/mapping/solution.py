"""Mapping solutions: neuron placements plus every derived metric.

A :class:`Mapping` is an assignment of every neuron to a crossbar slot.
All paper metrics derive from it:

- **area** (objective 8): summed ``C_j`` of enabled slots;
- **routes** (objective 9): total distinct axonal inputs over crossbars,
  i.e. ``sum_j |Inputs_j|`` — the realized ``sum s[k, j]``;
- **global routes** (objective 11): routes whose source neuron lives on a
  different crossbar (``sum s - b``);
- **packets** (objective 12): routes weighted by profiled spike counts.

The dataclass is frozen, so every structural quantity (members and axon
inputs per slot, enabled-slot list, area, route counts) is derived once
in ``__post_init__`` and served from caches afterwards; the spike-profile
weighting of :meth:`packet_count` additionally keeps per-(slot, source)
arrays so repeated profile queries are one NumPy gather instead of a
nested Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as MappingT

import numpy as np

from .problem import MappingProblem


@dataclass(frozen=True)
class Mapping:
    """A complete placement of neurons onto crossbar slots."""

    problem: MappingProblem
    assignment: dict[int, int]
    _inputs_by_slot: dict[int, frozenset[int]] = field(init=False, repr=False)
    _members_by_slot: dict[int, frozenset[int]] = field(init=False, repr=False)
    _enabled: tuple[int, ...] = field(init=False, repr=False)
    _area: float = field(init=False, repr=False, compare=False)
    _total_routes: int = field(init=False, repr=False, compare=False)
    _local_routes: int = field(init=False, repr=False, compare=False)
    #: Lazy (pair -> source index, locality mask, source ids) packet tables.
    _packet_tables: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        missing = set(self.problem.network.neuron_ids()) - set(self.assignment)
        if missing:
            raise ValueError(f"assignment missing neurons {sorted(missing)[:5]}")
        extra = set(self.assignment) - set(self.problem.network.neuron_ids())
        if extra:
            raise ValueError(f"assignment names unknown neurons {sorted(extra)[:5]}")
        bad = {
            j for j in self.assignment.values()
            if not 0 <= j < self.problem.num_slots
        }
        if bad:
            raise ValueError(f"assignment targets unknown slots {sorted(bad)}")
        members: dict[int, set[int]] = {}
        inputs: dict[int, set[int]] = {}
        for i, j in self.assignment.items():
            members.setdefault(j, set()).add(i)
            inputs.setdefault(j, set()).update(self.problem.preds(i))
        object.__setattr__(
            self,
            "_members_by_slot",
            {j: frozenset(g) for j, g in members.items()},
        )
        object.__setattr__(
            self,
            "_inputs_by_slot",
            {j: frozenset(ks) for j, ks in inputs.items()},
        )
        enabled = tuple(sorted(members))
        object.__setattr__(self, "_enabled", enabled)
        arch = self.problem.architecture
        object.__setattr__(
            self, "_area", sum(arch.slot(j).area for j in enabled)
        )
        object.__setattr__(
            self,
            "_total_routes",
            sum(len(inputs.get(j, ())) for j in enabled),
        )
        local = 0
        for j in enabled:
            local += sum(1 for k in inputs.get(j, ()) if self.assignment[k] == j)
        object.__setattr__(self, "_local_routes", local)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def neurons_on(self, slot: int) -> frozenset[int]:
        """Neurons whose output line is on crossbar ``slot``."""
        return self._members_by_slot.get(slot, frozenset())

    def axon_inputs(self, slot: int) -> frozenset[int]:
        """Distinct axonal inputs crossbar ``slot`` receives (``Inputs_j``)."""
        return self._inputs_by_slot.get(slot, frozenset())

    def enabled_slots(self) -> list[int]:
        """Slots hosting at least one neuron, ascending."""
        return list(self._enabled)

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    def area(self) -> float:
        """Objective 8: summed area cost of enabled crossbars."""
        return self._area

    def memristor_count(self) -> int:
        """Enabled-crossbar device count (the paper's area unit)."""
        arch = self.problem.architecture
        return sum(arch.slot(j).ctype.memristors for j in self._enabled)

    def total_routes(self) -> int:
        """Objective 9: ``sum_{k,j} s[k, j]`` — all axonal route endpoints."""
        return self._total_routes

    def local_routes(self) -> int:
        """``sum b[k, j]``: axon inputs whose source lives on the same slot."""
        return self._local_routes

    def global_routes(self) -> int:
        """Objective 11: inter-crossbar routes (``sum s - b``)."""
        return self._total_routes - self._local_routes

    def _packet_arrays(self) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """(per-pair source index, per-pair locality mask, source ids)."""
        if self._packet_tables is None:
            sources = sorted(
                {k for j in self._enabled for k in self._inputs_by_slot.get(j, ())}
            )
            src_index = {k: idx for idx, k in enumerate(sources)}
            pair_src: list[int] = []
            pair_local: list[bool] = []
            for j in self._enabled:
                for k in self._inputs_by_slot.get(j, ()):
                    pair_src.append(src_index[k])
                    pair_local.append(self.assignment[k] == j)
            tables = (
                np.asarray(pair_src, dtype=np.int64),
                np.asarray(pair_local, dtype=bool),
                tuple(sources),
            )
            object.__setattr__(self, "_packet_tables", tables)
        return self._packet_tables

    def packet_count(self, spike_counts: MappingT[int, int]) -> tuple[int, int]:
        """(local, global) runtime packets under a spike profile.

        Objective 12's value is the global component: each spike of ``k``
        sends one packet per target crossbar, and the packet to ``k``'s own
        crossbar never crosses the router network.
        """
        pair_src, pair_local, sources = self._packet_arrays()
        if not sources:
            return 0, 0
        fires = np.fromiter(
            (spike_counts.get(k, 0) for k in sources),
            dtype=np.int64,
            count=len(sources),
        )
        pair_fires = fires[pair_src]
        local = int(pair_fires[pair_local].sum())
        global_ = int(pair_fires.sum()) - local
        return local, global_

    def crossbar_histogram(self) -> dict[str, int]:
        """Enabled crossbar count per dimension label (paper Fig. 3b-f)."""
        arch = self.problem.architecture
        hist: dict[str, int] = {}
        for j in self._enabled:
            label = arch.slot(j).ctype.label
            hist[label] = hist.get(label, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Capacity violations (empty list = valid mapping).

        Checks constraint 4 (outputs per slot <= N_j) and constraint 7
        with true axon sharing (distinct inputs per slot <= A_j).
        """
        arch = self.problem.architecture
        violations: list[str] = []
        for j in self._enabled:
            slot = arch.slot(j)
            outputs = len(self.neurons_on(j))
            inputs = len(self.axon_inputs(j))
            if outputs > slot.outputs:
                violations.append(
                    f"slot {j} ({slot.ctype.label}): {outputs} neurons exceed "
                    f"{slot.outputs} output lines"
                )
            if inputs > slot.inputs:
                violations.append(
                    f"slot {j} ({slot.ctype.label}): {inputs} axons exceed "
                    f"{slot.inputs} input lines"
                )
        return violations

    def is_valid(self) -> bool:
        return not self.validate()

    def summary(self) -> str:
        """One-line human-readable summary."""
        hist = ", ".join(f"{n}x{lbl}" for lbl, n in sorted(self.crossbar_histogram().items()))
        return (
            f"area={self.area():g} over {len(self.enabled_slots())} crossbars "
            f"[{hist}], routes={self.total_routes()} "
            f"(global {self.global_routes()})"
        )
