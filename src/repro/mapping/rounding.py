"""LP-guided rounding for mapping models (the ``lp_round`` arm's engine).

The generic :func:`repro.ilp.greedy_rounding.lp_rounding_warm_start`
fix-and-round works on any model but knows nothing about mapping
structure, so on the mapping formulations it either stalls (every
fractional fix triggers a cascade of re-solves) or lands far from good
incumbents.  This module exploits what the formulations guarantee: a
model solution *is* a neuron->slot mapping, mappings are cheap to repair
and score incrementally through
:class:`~repro.mapping.delta.DeltaEvaluator`, and any valid mapping
converts back to a feasible variable vector via the builder's
``warm_start_from``.

:class:`MappingRoundingGuide` is attached by the model builders as
``model.rounding_guide`` (a duck-typed hook -
:class:`~repro.ilp.lp_round.LpRoundBackend` looks it up by name, the ILP
layer keeps no import of the mapping layer).  Its pipeline:

1. **seed** — the warm-start vector's placement when one is given (the
   pipeline always seeds route stages), else greedy first-fit;
2. **LP-guided pass** — relocate each neuron to its LP-preferred slot
   when that is feasible and not worse (on these formulations the LP
   point is often fully fractional and guides weakly, which is why the
   later stages carry the quality);
3. **delta local search** — best-improvement relocations plus pairwise
   swaps under :class:`DeltaEvaluator`, O(affected) per probe;
4. **ruin-and-recreate** — repeatedly empty a couple of random slots,
   greedily re-insert by best delta, re-run local search, keep the best;
   this crosses the plateaus single moves cannot (measured on fig2-E SNU
   it beats the node-capped exact incumbent in well under a second).

Every accepted move preserves mapping validity and the model's area
budget, so the final incumbent is feasible by construction; the backend
still verifies it against the lowered rows before reporting.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .delta import DeltaEvaluator
from .greedy import greedy_first_fit
from .solution import Mapping

_EPS = 1e-9


@dataclass
class MappingRoundingGuide:
    """Model-aware rounding attached as ``model.rounding_guide``.

    ``handle`` is the owning builder (:class:`AreaModel` or
    :class:`RouteModel`): it supplies the problem, the variable layout and
    the symmetry-aware ``warm_start_from`` used to emit the final vector.
    ``objective`` picks the score the delta search minimizes — ``"area"``
    (lexicographic area then routes, the area formulations) or
    ``"routes"`` (global routes, the SNU/PGO formulations; PGO's weighted
    objective is searched by its unweighted proxy, which keeps every probe
    O(affected) and still yields a feasible incumbent the model scores
    exactly).
    """

    handle: object
    objective: str = "area"
    symmetry: str = "off"

    # ------------------------------------------------------------------
    def round(
        self,
        lp_x: np.ndarray | None,
        warm_start: np.ndarray | None,
        deadline: float | None,
        rng: random.Random,
    ) -> np.ndarray | None:
        """A feasible incumbent vector, or ``None`` when no seed exists."""
        problem = self.handle.problem
        layout = self.handle._layout
        allowed = [int(j) for j in layout.slot_ids.tolist()]
        budget = self._area_budget()

        seed = self._seed_mapping(warm_start, allowed, budget)
        if seed is None:
            return None
        ev = DeltaEvaluator(problem, dict(seed.assignment))

        if lp_x is not None:
            self._lp_guided_pass(ev, lp_x, layout, allowed, budget)

        neurons = problem.network.neuron_ids()
        self._improve(ev, neurons, allowed, budget, deadline)
        best = dict(ev.to_mapping().assignment)
        best_score = self._score(ev)
        best = self._ruin_recreate(
            ev, best, best_score, neurons, allowed, budget, deadline, rng
        )
        return self.handle.warm_start_from(Mapping(problem, best))

    # ------------------------------------------------------------------
    def _area_budget(self) -> float | None:
        options = getattr(self.handle, "options", None)
        return getattr(options, "area_budget", None)

    def _score(self, ev: DeltaEvaluator) -> tuple[float, float]:
        if self.objective == "area":
            return (ev.area(), float(ev.global_routes()))
        return (float(ev.global_routes()), ev.area())

    def _move_ok(
        self, ev: DeltaEvaluator, src: int, dst: int, budget: float | None
    ) -> bool:
        if not (ev.slot_feasible(dst) and ev.slot_feasible(src)):
            return False
        return budget is None or ev.area() <= budget + _EPS

    def _seed_mapping(
        self,
        warm_start: np.ndarray | None,
        allowed: Sequence[int],
        budget: float | None,
    ) -> Mapping | None:
        problem = self.handle.problem
        layout = self.handle._layout
        if warm_start is not None:
            assignment, counts = layout.placement_from_x(warm_start)
            if len(assignment) == layout.num_neurons and not np.any(counts > 1):
                mapping = Mapping(problem, assignment)
                if not mapping.validate():
                    return mapping
        # No (usable) warm start: greedy first-fit, accepted only when it
        # stays inside this model's slot universe and area budget.
        try:
            mapping = greedy_first_fit(problem)
        except Exception:
            return None
        allowed_set = set(allowed)
        if any(j not in allowed_set for j in mapping.assignment.values()):
            return None
        if budget is not None and mapping.area() > budget + _EPS:
            return None
        return mapping

    def _lp_guided_pass(
        self,
        ev: DeltaEvaluator,
        lp_x: np.ndarray,
        layout,
        allowed: Sequence[int],
        budget: float | None,
    ) -> None:
        n, m = layout.num_neurons, layout.num_model_slots
        xs = np.asarray(lp_x)[layout.x_base : layout.x_base + n * m].reshape(n, m)
        # Most-confident neurons first: ties in the fully-fractional case
        # keep the pass a cheap no-op rather than a random shuffle.
        for i in np.argsort(-xs.max(axis=1)).tolist():
            src = ev.slot_of(i)
            pref = allowed[int(np.argmax(xs[i]))]
            if pref == src or xs[i].max() < 0.5:
                continue
            before = self._score(ev)
            ev.move(i, pref)
            if not (self._move_ok(ev, src, pref, budget) and self._score(ev) <= before):
                ev.move(i, src)

    def _improve(
        self,
        ev: DeltaEvaluator,
        neurons: Sequence[int],
        allowed: Sequence[int],
        budget: float | None,
        deadline: float | None,
        max_rounds: int = 20,
    ) -> None:
        """Best-improvement relocations + first-improvement swaps to a
        local optimum of :meth:`_score`."""
        for _ in range(max_rounds):
            improved = False
            for i in neurons:
                src = ev.slot_of(i)
                best = None
                before = self._score(ev)
                for dst in allowed:
                    if dst == src:
                        continue
                    ev.move(i, dst)
                    if self._move_ok(ev, src, dst, budget):
                        score = self._score(ev)
                        if score < before and (best is None or score < best[0]):
                            best = (score, dst)
                    ev.move(i, src)
                if best is not None:
                    ev.move(i, best[1])
                    improved = True
            if deadline is not None and time.perf_counter() > deadline:
                return
            for a in neurons:
                for b in neurons:
                    if b <= a:
                        continue
                    ja, jb = ev.slot_of(a), ev.slot_of(b)
                    if ja == jb:
                        continue
                    before = self._score(ev)
                    ev.move(a, jb)
                    ev.move(b, ja)
                    if self._move_ok(ev, ja, jb, budget) and self._score(ev) < before:
                        improved = True
                    else:
                        ev.move(a, ja)
                        ev.move(b, jb)
            if not improved:
                return
            if deadline is not None and time.perf_counter() > deadline:
                return

    def _ruin_recreate(
        self,
        ev: DeltaEvaluator,
        best: dict[int, int],
        best_score: tuple[float, float],
        neurons: Sequence[int],
        allowed: Sequence[int],
        budget: float | None,
        deadline: float | None,
        rng: random.Random,
        max_trials: int = 200,
    ) -> dict[int, int]:
        problem = self.handle.problem
        for _ in range(max_trials):
            if deadline is not None and time.perf_counter() > deadline:
                break
            trial = DeltaEvaluator(problem, dict(best))
            occupied = sorted(trial.occupied_slots())
            if len(occupied) < 2:
                break
            victims = rng.sample(occupied, min(2, len(occupied)))
            movers = [i for j in victims for i in sorted(trial.members_of(j))]
            rng.shuffle(movers)
            for i in movers:
                src = trial.slot_of(i)
                pick = None
                for dst in allowed:
                    if dst == src:
                        continue
                    trial.move(i, dst)
                    if self._move_ok(trial, src, dst, budget):
                        score = self._score(trial)
                        if pick is None or score < pick[0]:
                            pick = (score, dst)
                    trial.move(i, src)
                if pick is not None:
                    trial.move(i, pick[1])
            self._improve(trial, neurons, allowed, budget, deadline)
            score = self._score(trial)
            if score < best_score:
                best_score = score
                best = dict(trial.to_mapping().assignment)
        return best
