"""Deterministic content fingerprints for mapping inputs.

The batch engine caches solved instances and deduplicates sweeps by a
*problem fingerprint*: a SHA-256 digest of the network structure, the
crossbar pool and the formulation options.  The digests are content-based
and stable across process boundaries and interpreter runs — they are built
from canonically ordered plain-data payloads serialized with ``json`` and
hashed with :mod:`hashlib`, never with Python's per-process-salted
``hash()``.

Display names (``Network.name``, ``Architecture.name``) are deliberately
excluded: two structurally identical instances map identically, so they
must share a fingerprint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any


def digest(payload: Any) -> str:
    """SHA-256 hex digest of a JSON-serializable payload (canonical form)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def combine(*parts: str) -> str:
    """Fold several fingerprints into one (order-sensitive)."""
    return digest(list(parts))


def network_payload(network) -> dict:
    """Canonical plain-data view of a network's mapped structure."""
    return {
        "kind": "network",
        "neurons": [
            [n.id, n.threshold, n.leak, bool(n.is_input), bool(n.is_output)]
            for n in network.neurons()
        ],
        "synapses": [
            [s.pre, s.post, s.weight, s.delay] for s in network.synapses()
        ],
    }


def network_fingerprint(network) -> str:
    """Content fingerprint of a :class:`~repro.snn.network.Network`."""
    return digest(network_payload(network))


def architecture_payload(architecture) -> dict:
    """Canonical plain-data view of a crossbar pool."""
    return {
        "kind": "architecture",
        "slots": [
            [slot.ctype.inputs, slot.ctype.outputs, slot.ctype.overhead]
            for slot in architecture.slots
        ],
    }


def architecture_fingerprint(architecture) -> str:
    """Content fingerprint of a :class:`~repro.mca.architecture.Architecture`."""
    return digest(architecture_payload(architecture))


def options_fingerprint(options) -> str:
    """Fingerprint of a (frozen dataclass) options object, field by field."""
    if not dataclasses.is_dataclass(options):
        raise TypeError(f"expected a dataclass of options, got {type(options)}")
    return digest(
        {
            "kind": type(options).__name__,
            "fields": dataclasses.asdict(options),
        }
    )


def problem_fingerprint(problem, options=None) -> str:
    """Fingerprint of one (network, architecture[, formulation]) instance.

    ``options`` is any frozen dataclass of formulation options; ``None``
    hashes as its own distinct token, so "default options" and "no options"
    are different keys only when callers make them so.
    """
    parts = [
        network_fingerprint(problem.network),
        architecture_fingerprint(problem.architecture),
    ]
    if options is not None:
        parts.append(options_fingerprint(options))
    return combine(*parts)
