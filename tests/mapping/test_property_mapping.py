"""Property-based invariants of the mapping stack.

Random networks and pools must always yield: valid greedy mappings, valid
and no-worse ILP mappings, metric identities, and canonicalization
invariance — the end-to-end guarantees the experiments rely on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel, canonicalize_mapping
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@st.composite
def random_problem(draw):
    n = draw(st.integers(6, 14))
    density = draw(st.floats(0.8, 2.0))
    m = min(int(n * density), n * 4)
    seed = draw(st.integers(0, 10_000))
    net = random_network(n, m, seed=seed, max_fan_in=4)
    pool = draw(
        st.sampled_from(
            [
                [(CrossbarType(4, 4), n), (CrossbarType(8, 8), (n + 7) // 8)],
                [(CrossbarType(8, 4), n // 2 + 2), (CrossbarType(8, 8), n // 2 + 2)],
                [(CrossbarType(16, 16), (n + 3) // 4)],
            ]
        )
    )
    return MappingProblem(net, custom_architecture(pool))


@settings(max_examples=25, deadline=None)
@given(problem=random_problem())
def test_greedy_always_valid(problem):
    mapping = greedy_first_fit(problem)
    assert mapping.validate() == []
    # Every neuron is placed exactly once by construction of assignment.
    assert sorted(mapping.assignment) == problem.network.neuron_ids()


@settings(max_examples=25, deadline=None)
@given(problem=random_problem())
def test_route_identity_total_equals_local_plus_global(problem):
    mapping = greedy_first_fit(problem)
    assert mapping.total_routes() == mapping.local_routes() + mapping.global_routes()


@settings(max_examples=25, deadline=None)
@given(problem=random_problem())
def test_axon_inputs_match_predecessor_unions(problem):
    mapping = greedy_first_fit(problem)
    for j in mapping.enabled_slots():
        expected = set()
        for i in mapping.neurons_on(j):
            expected |= problem.preds(i)
        assert mapping.axon_inputs(j) == expected


@settings(max_examples=15, deadline=None)
@given(problem=random_problem())
def test_ilp_mapping_valid_and_no_worse_than_greedy(problem):
    greedy = greedy_first_fit(problem)
    handle = AreaModel(problem)
    result = HighsBackend(HighsOptions(time_limit=5)).solve(
        handle.model, warm_start=handle.warm_start_from(greedy)
    )
    mapping = handle.extract_mapping(result)
    assert mapping.validate() == []
    assert mapping.area() <= greedy.area() + 1e-9


@settings(max_examples=25, deadline=None)
@given(problem=random_problem())
def test_canonicalization_is_idempotent_and_invariant(problem):
    mapping = greedy_first_fit(problem)
    canon = canonicalize_mapping(mapping)
    twice = canonicalize_mapping(canon)
    assert canon.assignment == twice.assignment
    assert canon.area() == pytest.approx(mapping.area())
    assert canon.global_routes() == mapping.global_routes()


@settings(max_examples=25, deadline=None)
@given(problem=random_problem(), spikes=st.integers(1, 50))
def test_packet_count_scales_linearly_with_uniform_profile(problem, spikes):
    mapping = greedy_first_fit(problem)
    ones = {k: 1 for k in problem.network.neuron_ids()}
    many = {k: spikes for k in problem.network.neuron_ids()}
    local_1, global_1 = mapping.packet_count(ones)
    local_n, global_n = mapping.packet_count(many)
    assert local_n == spikes * local_1
    assert global_n == spikes * global_1
    # With a uniform unit profile, packets ARE routes.
    assert local_1 == mapping.local_routes()
    assert global_1 == mapping.global_routes()
