"""SNN topology generators.

The paper's five benchmark networks (Table I) are pre-trained EONS
checkpoints that were never released.  The mapping ILP only consumes
network *structure* (the connectivity matrix), so this module provides:

- :func:`random_network` / :func:`layered_network` — generic generators
  for tests and examples;
- :func:`statistical_twin` — synthesizes a network matching a Table-I row:
  exact node and edge counts, exact maximum fan-in, and in-/out-degree
  distributions tuned to the reported Gini sparsity indices.

Twin generation works in two steps: degree sequences are drawn from the
power-family ``w(p) = p^alpha`` whose Gini coefficient is
``alpha / (alpha + 2)`` (so ``alpha = 2g / (1 - g)`` hits a target ``g``),
then edges are realized with a configuration model repaired by edge swaps
to remove self-loops and duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import Network


@dataclass(frozen=True)
class TwinSpec:
    """Target attributes for :func:`statistical_twin` (one Table-I row)."""

    name: str
    node_count: int
    edge_count: int
    max_fan_in: int
    gini_incoming: float
    gini_outgoing: float

    def scaled(self, factor: float) -> "TwinSpec":
        """Proportionally shrink node/edge counts (benchmark-sized twins)."""
        if not 0 < factor <= 1:
            raise ValueError("scale factor must be in (0, 1]")
        nodes = max(8, int(round(self.node_count * factor)))
        edges = max(nodes, int(round(self.edge_count * factor)))
        cap = min(self.max_fan_in, nodes - 1)
        return TwinSpec(
            name=self.name,
            node_count=nodes,
            edge_count=min(edges, nodes * cap),
            max_fan_in=cap,
            gini_incoming=self.gini_incoming,
            gini_outgoing=self.gini_outgoing,
        )


def gini_degree_sequence(
    n: int,
    total: int,
    gini: float,
    rng: np.random.Generator,
    cap: int | None = None,
    force_max: bool = False,
) -> np.ndarray:
    """Integer degree sequence of length ``n`` summing to ``total``.

    Drawn from the ``p^alpha`` power family to approximate the requested
    Gini coefficient, rounded by largest remainder so the sum is exact.
    ``cap`` bounds every entry; with ``force_max`` the largest entry is
    pushed to exactly ``cap`` (Table I reports exact max fan-in).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    if not 0.0 <= gini < 1.0:
        raise ValueError("gini must be in [0, 1)")
    if cap is not None and cap * n < total:
        raise ValueError(f"cap {cap} too small: {n} nodes cannot hold {total}")

    alpha = 2.0 * gini / (1.0 - gini)
    positions = (np.arange(1, n + 1)) / n
    weights = positions ** alpha
    rng.shuffle(weights)
    target = weights * (total / weights.sum())

    degrees = np.floor(target).astype(int)
    remainder = total - degrees.sum()
    # Largest-remainder rounding.
    frac_order = np.argsort(-(target - degrees))
    degrees[frac_order[:remainder]] += 1

    if cap is not None:
        degrees = _redistribute_over_cap(degrees, cap, rng)
        if force_max and total >= cap and degrees.max() < cap:
            _force_entry_to_cap(degrees, cap, rng)
    return degrees


def _redistribute_over_cap(
    degrees: np.ndarray, cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Clip entries above ``cap``, moving the excess to under-cap entries."""
    degrees = degrees.copy()
    excess = int(np.maximum(degrees - cap, 0).sum())
    degrees = np.minimum(degrees, cap)
    while excess > 0:
        room = np.flatnonzero(degrees < cap)
        pick = rng.choice(room, size=min(excess, room.size), replace=False)
        degrees[pick] += 1
        excess -= pick.size
    return degrees


def _force_entry_to_cap(degrees: np.ndarray, cap: int, rng: np.random.Generator) -> None:
    """Raise the largest entry to ``cap``, stealing from other entries."""
    top = int(np.argmax(degrees))
    needed = cap - int(degrees[top])
    while needed > 0:
        donors = np.flatnonzero((degrees > 0) & (np.arange(degrees.size) != top))
        if donors.size == 0:
            break
        donor = int(rng.choice(donors))
        degrees[donor] -= 1
        degrees[top] += 1
        needed -= 1


def realize_degree_sequences(
    out_degrees: np.ndarray,
    in_degrees: np.ndarray,
    rng: np.random.Generator,
    max_repair_rounds: int = 200,
    in_cap: int | None = None,
) -> set[tuple[int, int]]:
    """Configuration-model edge set without self-loops or duplicates.

    Stubs are shuffled and paired; conflicting pairs are repaired by degree-
    preserving edge swaps.  When a dense, highly skewed sequence leaves
    unswappable conflicts (possible on very small scaled-down twins), the
    conflict's stub is *retargeted* to a different endpoint — preserving
    node and edge counts exactly while perturbing one degree, with
    ``in_cap`` still enforced.  Raises ``RuntimeError`` only if even that
    is impossible (the graph is essentially complete).
    """
    if out_degrees.sum() != in_degrees.sum():
        raise ValueError("out- and in-degree sums differ")
    out_stubs = np.repeat(np.arange(out_degrees.size), out_degrees)
    in_stubs = np.repeat(np.arange(in_degrees.size), in_degrees)
    rng.shuffle(out_stubs)
    rng.shuffle(in_stubs)

    edges: set[tuple[int, int]] = set()
    conflicts: list[tuple[int, int]] = []
    for pre, post in zip(out_stubs.tolist(), in_stubs.tolist()):
        if pre != post and (pre, post) not in edges:
            edges.add((pre, post))
        else:
            conflicts.append((pre, post))

    for _ in range(max_repair_rounds):
        if not conflicts:
            return edges
        still: list[tuple[int, int]] = []
        edge_list = list(edges)
        for pre, post in conflicts:
            swapped = False
            order = rng.permutation(len(edge_list))
            for k in order[: min(100, len(edge_list))]:
                a, b = edge_list[int(k)]
                # Swap partners: (pre,post)+(a,b) -> (pre,b)+(a,post).
                if (
                    pre != b and a != post
                    and (pre, b) not in edges and (a, post) not in edges
                    and (a, b) in edges
                ):
                    edges.remove((a, b))
                    edges.add((pre, b))
                    edges.add((a, post))
                    swapped = True
                    break
            if not swapped:
                still.append((pre, post))
        conflicts = still
        edge_list = list(edges)

    if conflicts:
        _retarget_conflicts(conflicts, edges, out_degrees.size, rng, in_cap)
    return edges


def _retarget_conflicts(
    conflicts: list[tuple[int, int]],
    edges: set[tuple[int, int]],
    num_nodes: int,
    rng: np.random.Generator,
    in_cap: int | None,
) -> None:
    """Realize leftover conflicting stubs by moving one endpoint.

    Preserves edge count exactly; shifts one in-degree (or out-degree) by
    one per conflict.  Respects ``in_cap`` on the receiving node.
    """
    realized_in = np.zeros(num_nodes, dtype=int)
    for _, post in edges:
        realized_in[post] += 1
    for pre, post in conflicts:
        candidates = [
            b for b in rng.permutation(num_nodes)
            if b != pre
            and (pre, int(b)) not in edges
            and (in_cap is None or realized_in[int(b)] < in_cap)
        ]
        if candidates:
            b = int(candidates[0])
            edges.add((pre, b))
            realized_in[b] += 1
            continue
        # pre saturates every allowed target: move the out side instead.
        if in_cap is None or realized_in[post] < in_cap:
            alt_sources = [
                a for a in rng.permutation(num_nodes)
                if a != post and (int(a), post) not in edges
            ]
            if alt_sources:
                edges.add((int(alt_sources[0]), post))
                realized_in[post] += 1
                continue
        # Last resort: place the edge anywhere feasible.
        placed = False
        for a in rng.permutation(num_nodes):
            for b in rng.permutation(num_nodes):
                a_i, b_i = int(a), int(b)
                if (
                    a_i != b_i
                    and (a_i, b_i) not in edges
                    and (in_cap is None or realized_in[b_i] < in_cap)
                ):
                    edges.add((a_i, b_i))
                    realized_in[b_i] += 1
                    placed = True
                    break
            if placed:
                break
        if not placed:
            raise RuntimeError(
                f"cannot realize stub ({pre}, {post}): graph is saturated"
            )


def _finalize(
    edges: set[tuple[int, int]],
    n: int,
    name: str,
    rng: np.random.Generator,
    inhibitory_fraction: float = 0.2,
    max_delay: int = 3,
) -> Network:
    """Build a Network from an edge set; zero-degree roles become IO."""
    net = Network(name)
    in_deg = np.zeros(n, dtype=int)
    out_deg = np.zeros(n, dtype=int)
    for pre, post in edges:
        out_deg[pre] += 1
        in_deg[post] += 1
    # Zero-in-degree nodes are natural inputs (and zero-out-degree nodes
    # outputs); dense graphs may have none, so top up with the least-
    # connected nodes until at least ~10% of the network is IO-marked.
    quota = min(n, max(4, n // 10))
    inputs = {nid for nid in range(n) if in_deg[nid] == 0}
    for nid in sorted(range(n), key=lambda v: (in_deg[v], v)):
        if len(inputs) >= quota:
            break
        inputs.add(nid)
    outputs = {nid for nid in range(n) if out_deg[nid] == 0}
    for nid in sorted(range(n), key=lambda v: (out_deg[v], v)):
        if len(outputs) >= quota:
            break
        outputs.add(nid)
    for nid in range(n):
        net.add_neuron(
            nid,
            threshold=1.0,
            leak=1.0,
            is_input=nid in inputs,
            is_output=nid in outputs,
        )
    for pre, post in sorted(edges):
        sign = -1.0 if rng.random() < inhibitory_fraction else 1.0
        weight = sign * float(rng.uniform(0.4, 1.2))
        delay = int(rng.integers(1, max_delay + 1))
        net.add_synapse(pre, post, weight=weight, delay=delay)
    return net


def statistical_twin(spec: TwinSpec, seed: int = 0) -> Network:
    """Generate a structural twin of a Table-I network (see module docs)."""
    if spec.edge_count > spec.node_count * spec.max_fan_in:
        raise ValueError("edge count exceeds node_count * max_fan_in")
    rng = np.random.default_rng(seed)
    in_deg = gini_degree_sequence(
        spec.node_count,
        spec.edge_count,
        spec.gini_incoming,
        rng,
        cap=spec.max_fan_in,
        force_max=True,
    )
    out_deg = gini_degree_sequence(
        spec.node_count,
        spec.edge_count,
        spec.gini_outgoing,
        rng,
        cap=spec.node_count - 1,
    )
    edges = realize_degree_sequences(out_deg, in_deg, rng, in_cap=spec.max_fan_in)
    return _finalize(edges, spec.node_count, spec.name, rng)


def random_network(
    num_neurons: int,
    num_synapses: int,
    seed: int = 0,
    max_fan_in: int | None = None,
    name: str = "random",
) -> Network:
    """Uniform random sparse digraph with an optional fan-in cap."""
    if num_neurons < 2:
        raise ValueError("need at least 2 neurons")
    limit = num_neurons * (num_neurons - 1)
    if max_fan_in is not None:
        limit = min(limit, num_neurons * max_fan_in)
    if num_synapses > limit:
        raise ValueError(f"cannot place {num_synapses} synapses (limit {limit})")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    in_deg = np.zeros(num_neurons, dtype=int)
    while len(edges) < num_synapses:
        pre = int(rng.integers(num_neurons))
        post = int(rng.integers(num_neurons))
        if pre == post or (pre, post) in edges:
            continue
        if max_fan_in is not None and in_deg[post] >= max_fan_in:
            continue
        edges.add((pre, post))
        in_deg[post] += 1
    return _finalize(edges, num_neurons, name, rng)


def layered_network(
    layer_sizes: list[int],
    connection_prob: float = 0.3,
    seed: int = 0,
    name: str = "layered",
) -> Network:
    """Feed-forward layered SNN (each layer connects forward with prob p)."""
    if len(layer_sizes) < 2:
        raise ValueError("need at least two layers")
    if not 0.0 < connection_prob <= 1.0:
        raise ValueError("connection_prob must be in (0, 1]")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    offsets = np.cumsum([0] + layer_sizes)
    n = int(offsets[-1])
    for layer in range(len(layer_sizes) - 1):
        pres = range(offsets[layer], offsets[layer + 1])
        posts = range(offsets[layer + 1], offsets[layer + 2])
        for pre in pres:
            targets = [p for p in posts if rng.random() < connection_prob]
            if not targets:  # keep every neuron connected forward
                targets = [int(rng.choice(list(posts)))]
            for post in targets:
                edges.add((pre, post))
    net = _finalize(edges, n, name, rng)
    # Layered nets mark IO by layer, not by degree.
    for nid in range(n):
        neuron = net.neuron(nid)
        is_input = nid < offsets[1]
        is_output = nid >= offsets[-2]
        if neuron.is_input != is_input or neuron.is_output != is_output:
            from dataclasses import replace

            net.replace_neuron(replace(neuron, is_input=is_input, is_output=is_output))
    return net
