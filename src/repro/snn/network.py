"""Spiking-neural-network graph structures.

A :class:`Network` is a directed graph of integrate-and-fire neurons joined
by weighted, delayed synapses — the object the paper's ILP consumes (through
its connectivity matrix ``m[i, k]``) and the simulator executes.  The
representation follows the TENNLab framework's conventions: neurons carry a
threshold and optional leak, synapses carry a weight and an integer delay,
and a subset of neurons is marked as network inputs / outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import networkx as nx


@dataclass(frozen=True)
class Neuron:
    """One integrate-and-fire neuron.

    ``threshold`` is the membrane potential at which the neuron fires;
    ``leak`` is the per-timestep multiplicative retention of charge
    (1.0 = perfect integrator, 0.0 = no memory, TENNLab RISP style).
    """

    id: int
    threshold: float = 1.0
    leak: float = 1.0
    is_input: bool = False
    is_output: bool = False

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"neuron {self.id}: threshold must be positive")
        if not 0.0 <= self.leak <= 1.0:
            raise ValueError(f"neuron {self.id}: leak must be in [0, 1]")


@dataclass(frozen=True)
class Synapse:
    """A directed synapse ``pre -> post`` with weight and integer delay."""

    pre: int
    post: int
    weight: float = 1.0
    delay: int = 1

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise ValueError(
                f"synapse {self.pre}->{self.post}: delay must be >= 1 timestep"
            )


class Network:
    """A directed SNN graph with O(1) adjacency lookups.

    Neuron ids are arbitrary non-negative integers (EONS mutations leave
    holes); :meth:`compact` renumbers them contiguously, which the mapping
    layer requires.  At most one synapse may exist per ordered neuron pair,
    matching the ILP's boolean connectivity matrix.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._neurons: dict[int, Neuron] = {}
        self._synapses: dict[tuple[int, int], Synapse] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_neuron(
        self,
        neuron_id: int | None = None,
        threshold: float = 1.0,
        leak: float = 1.0,
        is_input: bool = False,
        is_output: bool = False,
    ) -> Neuron:
        """Add a neuron; auto-assigns the next free id when none is given."""
        if neuron_id is None:
            neuron_id = max(self._neurons, default=-1) + 1
        if neuron_id in self._neurons:
            raise ValueError(f"neuron id {neuron_id} already exists")
        if neuron_id < 0:
            raise ValueError("neuron ids must be non-negative")
        neuron = Neuron(neuron_id, threshold, leak, is_input, is_output)
        self._neurons[neuron_id] = neuron
        self._out[neuron_id] = set()
        self._in[neuron_id] = set()
        return neuron

    def add_synapse(
        self, pre: int, post: int, weight: float = 1.0, delay: int = 1
    ) -> Synapse:
        """Add a synapse; the ordered pair must be new and both ends exist."""
        if pre not in self._neurons:
            raise KeyError(f"pre neuron {pre} does not exist")
        if post not in self._neurons:
            raise KeyError(f"post neuron {post} does not exist")
        if (pre, post) in self._synapses:
            raise ValueError(f"synapse {pre}->{post} already exists")
        synapse = Synapse(pre, post, weight, delay)
        self._synapses[(pre, post)] = synapse
        self._out[pre].add(post)
        self._in[post].add(pre)
        return synapse

    def remove_synapse(self, pre: int, post: int) -> None:
        del self._synapses[(pre, post)]
        self._out[pre].discard(post)
        self._in[post].discard(pre)

    def remove_neuron(self, neuron_id: int) -> None:
        """Remove a neuron and all incident synapses."""
        for post in list(self._out[neuron_id]):
            self.remove_synapse(neuron_id, post)
        for pre in list(self._in[neuron_id]):
            self.remove_synapse(pre, neuron_id)
        del self._out[neuron_id]
        del self._in[neuron_id]
        del self._neurons[neuron_id]

    def replace_neuron(self, neuron: Neuron) -> None:
        """Swap neuron attributes in place (synapses untouched)."""
        if neuron.id not in self._neurons:
            raise KeyError(f"neuron {neuron.id} does not exist")
        self._neurons[neuron.id] = neuron

    def replace_synapse(self, synapse: Synapse) -> None:
        """Swap synapse attributes in place (endpoints must already exist)."""
        if (synapse.pre, synapse.post) not in self._synapses:
            raise KeyError(f"synapse {synapse.pre}->{synapse.post} does not exist")
        self._synapses[(synapse.pre, synapse.post)] = synapse

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_neurons(self) -> int:
        return len(self._neurons)

    @property
    def num_synapses(self) -> int:
        return len(self._synapses)

    def neuron(self, neuron_id: int) -> Neuron:
        return self._neurons[neuron_id]

    def synapse(self, pre: int, post: int) -> Synapse:
        return self._synapses[(pre, post)]

    def has_neuron(self, neuron_id: int) -> bool:
        return neuron_id in self._neurons

    def has_synapse(self, pre: int, post: int) -> bool:
        return (pre, post) in self._synapses

    def neuron_ids(self) -> list[int]:
        """Neuron ids in deterministic (sorted) order."""
        return sorted(self._neurons)

    def neurons(self) -> Iterator[Neuron]:
        for nid in self.neuron_ids():
            yield self._neurons[nid]

    def synapses(self) -> Iterator[Synapse]:
        for key in sorted(self._synapses):
            yield self._synapses[key]

    def predecessors(self, neuron_id: int) -> set[int]:
        """Neurons with a synapse *into* ``neuron_id`` (its input axons)."""
        return set(self._in[neuron_id])

    def successors(self, neuron_id: int) -> set[int]:
        return set(self._out[neuron_id])

    def fan_in(self, neuron_id: int) -> int:
        return len(self._in[neuron_id])

    def fan_out(self, neuron_id: int) -> int:
        return len(self._out[neuron_id])

    def input_ids(self) -> list[int]:
        return [n.id for n in self.neurons() if n.is_input]

    def output_ids(self) -> list[int]:
        return [n.id for n in self.neurons() if n.is_output]

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Network":
        out = Network(name or self.name)
        for neuron in self._neurons.values():
            out._neurons[neuron.id] = neuron
            out._out[neuron.id] = set(self._out[neuron.id])
            out._in[neuron.id] = set(self._in[neuron.id])
        out._synapses = dict(self._synapses)
        return out

    def compact(self) -> tuple["Network", dict[int, int]]:
        """Renumber neurons to 0..n-1 (sorted order); returns (net, old->new)."""
        mapping = {old: new for new, old in enumerate(self.neuron_ids())}
        out = Network(self.name)
        for old in self.neuron_ids():
            neuron = self._neurons[old]
            out._neurons[mapping[old]] = replace(neuron, id=mapping[old])
            out._out[mapping[old]] = set()
            out._in[mapping[old]] = set()
        for (pre, post), syn in self._synapses.items():
            new_syn = replace(syn, pre=mapping[pre], post=mapping[post])
            out._synapses[(new_syn.pre, new_syn.post)] = new_syn
            out._out[new_syn.pre].add(new_syn.post)
            out._in[new_syn.post].add(new_syn.pre)
        return out, mapping

    def is_compact(self) -> bool:
        ids = self.neuron_ids()
        return ids == list(range(len(ids)))

    def pred_sets(self) -> dict[int, set[int]]:
        """Connectivity matrix as predecessor sets: ``m[i][k]`` ⇔ k in out[i].

        This is the ``m[i, k]`` of the paper (neuron i takes input from k),
        keyed by neuron id.
        """
        return {nid: set(self._in[nid]) for nid in self.neuron_ids()}

    def subnetwork(self, keep: Iterable[int], name: str | None = None) -> "Network":
        """Induced subgraph on ``keep`` (ids preserved, not compacted)."""
        keep_set = set(keep)
        missing = keep_set - set(self._neurons)
        if missing:
            raise KeyError(f"unknown neuron ids {sorted(missing)}")
        out = Network(name or f"{self.name}-sub")
        for nid in sorted(keep_set):
            neuron = self._neurons[nid]
            out._neurons[nid] = neuron
            out._out[nid] = set()
            out._in[nid] = set()
        for (pre, post), syn in self._synapses.items():
            if pre in keep_set and post in keep_set:
                out._synapses[(pre, post)] = syn
                out._out[pre].add(post)
                out._in[post].add(pre)
        return out

    def to_networkx(self) -> nx.DiGraph:
        """Export to a networkx DiGraph (weights/delays as edge attrs)."""
        graph = nx.DiGraph(name=self.name)
        for neuron in self.neurons():
            graph.add_node(
                neuron.id,
                threshold=neuron.threshold,
                leak=neuron.leak,
                is_input=neuron.is_input,
                is_output=neuron.is_output,
            )
        for syn in self.synapses():
            graph.add_edge(syn.pre, syn.post, weight=syn.weight, delay=syn.delay)
        return graph

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, neurons={self.num_neurons}, "
            f"synapses={self.num_synapses})"
        )
