"""The SNN-to-MCA mapping problem instance.

Bundles a compact network with a target architecture and caches the
structures every formulation needs: predecessor/successor sets (the
connectivity matrix ``m[i, k]``) and the set of *source* neurons (those
with outgoing synapses — the only ``k`` for which axon variables
``s[k, j]`` can ever be 1, a sparsification the paper's PGO discussion
relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mca.architecture import Architecture
from ..snn.network import Network


@dataclass(frozen=True)
class MappingProblem:
    """One (network, architecture) mapping instance."""

    network: Network
    architecture: Architecture
    _preds: dict[int, frozenset[int]] = field(init=False, repr=False)
    _succs: dict[int, frozenset[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.network.num_neurons == 0:
            raise ValueError("cannot map an empty network")
        if not self.network.is_compact():
            raise ValueError(
                "mapping requires compact neuron ids 0..n-1; call network.compact()"
            )
        if self.architecture.num_slots == 0:
            raise ValueError("architecture has no crossbar slots")
        max_fan_in = max(
            (self.network.fan_in(i) for i in self.network.neuron_ids()), default=0
        )
        widest = max(slot.inputs for slot in self.architecture.slots)
        if max_fan_in > widest:
            raise ValueError(
                f"network max fan-in {max_fan_in} exceeds the widest crossbar "
                f"input dimension {widest}; no valid mapping exists"
            )
        object.__setattr__(
            self,
            "_preds",
            {
                i: frozenset(self.network.predecessors(i))
                for i in self.network.neuron_ids()
            },
        )
        object.__setattr__(
            self,
            "_succs",
            {
                i: frozenset(self.network.successors(i))
                for i in self.network.neuron_ids()
            },
        )

    @property
    def num_neurons(self) -> int:
        return self.network.num_neurons

    @property
    def num_slots(self) -> int:
        return self.architecture.num_slots

    def preds(self, i: int) -> frozenset[int]:
        """``{k : m[i, k] = 1}`` — neurons feeding neuron ``i``."""
        return self._preds[i]

    def succs(self, k: int) -> frozenset[int]:
        """Neurons that take input from ``k``."""
        return self._succs[k]

    def sources(self) -> list[int]:
        """Neurons with fan-out > 0 — the only candidates for s[k, j] = 1."""
        return [k for k in self.network.neuron_ids() if self._succs[k]]

    def edges(self) -> list[tuple[int, int]]:
        """All (k, i) pairs with a synapse k -> i, deterministic order."""
        return [(s.pre, s.post) for s in self.network.synapses()]

    def fingerprint(self, options=None) -> str:
        """Deterministic content fingerprint of this instance.

        Stable across processes and runs (see :mod:`repro.mapping.
        fingerprint`); changes whenever the network structure, the crossbar
        pool, or the supplied formulation ``options`` change.
        """
        from .fingerprint import problem_fingerprint

        return problem_fingerprint(self, options)

    def axon_demand(self, neurons: frozenset[int] | set[int]) -> int:
        """Distinct axonal inputs required to host ``neurons`` together.

        This is the axon-*sharing* count: ``|union of preds|`` — the
        quantity SpikeHard over-estimates by summing per-group demands.
        """
        demand: set[int] = set()
        for i in neurons:
            demand |= self._preds[i]
        return len(demand)
