"""Tests for the bit-slicing precision-aware area model."""

import pytest

from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.precision import (
    PrecisionAreaModel,
    PrecisionSpec,
    neuron_slices,
    precision_area_overhead,
    validate_sliced,
)
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


class TestPrecisionSpec:
    def test_slices_computed(self):
        assert PrecisionSpec(weight_bits=8, cell_bits=2).slices == 4
        assert PrecisionSpec(weight_bits=5, cell_bits=2).slices == 3
        assert PrecisionSpec(weight_bits=4, cell_bits=4).slices == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecisionSpec(weight_bits=0)
        with pytest.raises(ValueError):
            PrecisionSpec(weight_bits=2, cell_bits=4)


@pytest.fixture
def problem():
    net = random_network(8, 14, seed=22, max_fan_in=4)
    arch = custom_architecture(
        [(CrossbarType(8, 8), 6), (CrossbarType(4, 4), 6)]
    )
    return MappingProblem(net, arch)


class TestNeuronSlices:
    def test_weightless_neurons_single_column(self, problem):
        spec = PrecisionSpec(weight_bits=8, cell_bits=2)
        slices = neuron_slices(problem, spec)
        for i in problem.network.neuron_ids():
            expected = 4 if problem.preds(i) else 1
            assert slices[i] == expected


class TestPrecisionAreaModel:
    def solve(self, problem, spec):
        handle = PrecisionAreaModel(problem, spec)
        result = HighsBackend(HighsOptions(time_limit=10)).solve(handle.model)
        return handle, result

    def test_single_slice_matches_base_model(self, problem):
        spec = PrecisionSpec(weight_bits=2, cell_bits=2)  # 1 slice
        _, sliced = self.solve(problem, spec)
        base = HighsBackend().solve(AreaModel(problem).model)
        assert sliced.objective == pytest.approx(base.objective)

    def test_higher_precision_costs_area(self, problem):
        lo_handle, lo = self.solve(problem, PrecisionSpec(weight_bits=2, cell_bits=2))
        hi_handle, hi = self.solve(problem, PrecisionSpec(weight_bits=8, cell_bits=2))
        assert hi.objective >= lo.objective
        overhead = precision_area_overhead(problem, lo.objective, hi.objective)
        assert overhead >= 0.0

    def test_extracted_mapping_respects_slices(self, problem):
        spec = PrecisionSpec(weight_bits=8, cell_bits=2)
        handle, result = self.solve(problem, spec)
        mapping = handle.extract_mapping(result)
        assert validate_sliced(mapping, neuron_slices(problem, spec)) == []
        # Plain validity holds too (axon accounting untouched).
        assert mapping.is_valid()

    def test_validate_sliced_catches_overflow(self, problem):
        spec = PrecisionSpec(weight_bits=8, cell_bits=2)
        slices = neuron_slices(problem, spec)
        greedy = greedy_first_fit(problem)  # slice-unaware packing
        issues = validate_sliced(greedy, slices)
        # The greedy packer ignores slices, so with 4x columns per neuron
        # at least one crossbar overflows (8 neurons x4 > 8 columns).
        assert issues

    def test_overhead_requires_positive_base(self, problem):
        with pytest.raises(ValueError):
            precision_area_overhead(problem, 0.0, 10.0)
