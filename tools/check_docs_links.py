#!/usr/bin/env python
"""Fail on broken relative links in README.md and docs/ (stdlib only).

Scans every Markdown file for inline links and images
(``[text](target)`` / ``![alt](target)``) and reference definitions
(``[label]: target``).  External targets (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#section``) are skipped; everything else is
resolved relative to the containing file and must exist inside the
repository.  Fragments are stripped before the existence check
(``solver.md#presolve`` checks ``solver.md``).

Run:  python tools/check_docs_links.py
Exit: 0 when every link resolves, 1 otherwise (each break on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline links/images.  [text](target "title") — target ends at the
#: first whitespace or closing paren; nested parens are not used in
#: this repo's docs.
INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference-style definitions: [label]: target
REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)
#: Fenced code blocks — links inside them are examples, not links.
FENCE = re.compile(r"```.*?```", re.DOTALL)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def targets_in(text: str) -> list[str]:
    text = FENCE.sub("", text)
    found = INLINE.findall(text)
    found.extend(REFERENCE.findall(text))
    return found


def check_file(path: Path) -> list[str]:
    errors = []
    for target in targets_in(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        try:
            resolved.relative_to(REPO)
        except ValueError:
            errors.append(f"{path.relative_to(REPO)}: link escapes the "
                          f"repository: {target}")
            continue
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO)}: broken link: {target} "
                f"(resolved to {resolved.relative_to(REPO)})"
            )
    return errors


def main() -> int:
    files = doc_files()
    errors = [error for path in files for error in check_file(path)]
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
