"""Additional synthetic workloads for profile-robustness studies.

Fig. 9's premise is that spiking activity is regular enough for a 1%
profile to predict the other 99%.  That holds *within* a workload; these
generators produce frames with deliberately different spatial statistics
so PGO's transfer behaviour across workload shift can be measured:

- :func:`stroke_frames` — short digit-like strokes (multiple segments,
  local structure everywhere);
- :func:`hotspot_frames` — a fixed set of recurring cluster positions
  (maximally regular: PGO's best case);
- :func:`noise_frames` — uniform uncorrelated noise (no structure:
  PGO's worst case).

All generators return :class:`~repro.profile.smartpixel.PixelSample`
lists, so they drop into the profiler and evaluator unchanged.
"""

from __future__ import annotations

import numpy as np

from .smartpixel import PixelSample


def _normalize(frame: np.ndarray) -> np.ndarray:
    peak = frame.max()
    return frame / peak if peak > 0 else frame


def stroke_frames(
    rows: int = 8,
    cols: int = 8,
    num_samples: int = 100,
    segments: int = 2,
    seed: int = 0,
) -> list[PixelSample]:
    """Frames of connected random strokes; label = number of lit quadrants."""
    if rows < 2 or cols < 2:
        raise ValueError("pixel array must be at least 2x2")
    if segments < 1:
        raise ValueError("need at least one stroke segment")
    rng = np.random.default_rng(seed)
    samples: list[PixelSample] = []
    for _ in range(num_samples):
        frame = np.zeros((rows, cols))
        r, c = int(rng.integers(rows)), int(rng.integers(cols))
        for _ in range(segments * 4):
            frame[r, c] += 1.0
            r = int(np.clip(r + rng.integers(-1, 2), 0, rows - 1))
            c = int(np.clip(c + rng.integers(-1, 2), 0, cols - 1))
        quads = [
            frame[: rows // 2, : cols // 2].sum() > 0,
            frame[: rows // 2, cols // 2 :].sum() > 0,
            frame[rows // 2 :, : cols // 2].sum() > 0,
            frame[rows // 2 :, cols // 2 :].sum() > 0,
        ]
        label = int(sum(quads)) - 1
        samples.append(PixelSample(frame=_normalize(frame), label=max(label, 0)))
    return samples


def hotspot_frames(
    rows: int = 8,
    cols: int = 8,
    num_samples: int = 100,
    num_hotspots: int = 3,
    jitter: float = 0.5,
    seed: int = 0,
) -> list[PixelSample]:
    """Frames lighting one of a few fixed hotspots; label = hotspot id.

    The most PGO-friendly distribution: the same pixels (hence the same
    neurons and synapses) are hot in every sample.
    """
    if num_hotspots < 1:
        raise ValueError("need at least one hotspot")
    rng = np.random.default_rng(seed)
    centres = [
        (int(rng.integers(rows)), int(rng.integers(cols)))
        for _ in range(num_hotspots)
    ]
    row_axis = np.arange(rows)[:, None]
    col_axis = np.arange(cols)[None, :]
    samples: list[PixelSample] = []
    for _ in range(num_samples):
        label = int(rng.integers(num_hotspots))
        r0, c0 = centres[label]
        r = r0 + rng.normal(0, jitter)
        c = c0 + rng.normal(0, jitter)
        frame = np.exp(-(((row_axis - r) ** 2 + (col_axis - c) ** 2) / 2.0))
        samples.append(PixelSample(frame=_normalize(frame), label=label))
    return samples


def noise_frames(
    rows: int = 8,
    cols: int = 8,
    num_samples: int = 100,
    density: float = 0.2,
    seed: int = 0,
) -> list[PixelSample]:
    """Structure-free frames: each pixel lit independently; label always 0.

    PGO's adversarial case — no synapse is consistently hotter than
    another beyond sampling noise.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    samples: list[PixelSample] = []
    for _ in range(num_samples):
        frame = (rng.random((rows, cols)) < density) * rng.random((rows, cols))
        samples.append(PixelSample(frame=_normalize(frame), label=0))
    return samples
