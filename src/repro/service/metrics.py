"""Production eyes for the mapping daemon: lock-consistent metrics.

Everything the ``GET /metrics`` endpoint reports lives here:

- :class:`ServiceMetrics` — monotonic counters, gauges and bounded
  histograms behind **one** lock, so a scrape sees a consistent snapshot
  (``hits + misses == lookups`` holds even while worker threads hammer
  the counters).  The registry reports job state transitions into it
  (via :meth:`ServiceMetrics.job_event`), the batch engine reports
  solve dispatch/completion (solves in flight, per-arm portfolio wins),
  and the worker loop reports queue-wait and job-duration samples.
- :class:`LoopLatencyProbe` — a background thread that repeatedly
  sleeps a fixed interval and records the overshoot, the classic
  event-loop-lag measurement: under load the scheduler hands the probe
  its slice late, and the p50/p90/p99 of that drift is how overloaded
  the daemon's thread pool is.
- :class:`JsonlWriter` — a write-behind JSONL appender (one line per
  record, flushed by a background thread under the same flock-guarded
  append idiom as :class:`repro.dse.store.RunStore`, torn-tail healing
  included).  The job registry's persistent journal and the
  ``--log-jobs`` structured log are both instances of it: appends never
  block a request thread on disk I/O.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from pathlib import Path
from typing import IO, Callable, Iterator

from .. import jsonlio
from ..jsonlio import read_jsonl as _read_jsonl

#: Samples kept per histogram; percentiles are over this sliding window.
HISTOGRAM_WINDOW = 2048

#: Characters allowed in a solve-phase histogram suffix; anything else
#: collapses to ``_`` so a hostile/garbled payload can't mint odd keys.
_PHASE_NAME = re.compile(r"[^a-z0-9_]+")

#: Percentiles every histogram snapshot reports.
PERCENTILES = (50, 90, 99)


class _Histogram:
    """Bounded reservoir of observations (caller holds the metrics lock)."""

    __slots__ = ("samples", "count", "total", "max")

    def __init__(self) -> None:
        self.samples: deque[float] = deque(maxlen=HISTOGRAM_WINDOW)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        ordered = sorted(self.samples)
        body = {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
        }
        for pct in PERCENTILES:
            if ordered:
                index = min(len(ordered) - 1, (pct * len(ordered)) // 100)
                body[f"p{pct}"] = ordered[index]
            else:
                body[f"p{pct}"] = 0.0
        return body


class ServiceMetrics:
    """Lock-guarded counters/gauges/histograms for one daemon process.

    All mutation and the :meth:`snapshot` read happen under a single
    mutex, so a scrape never observes a half-applied update (a hit
    counted whose lookup is not, a gauge incremented twice).  Counters
    are monotonic and cover *this process's lifetime*; per-state job
    counts and cache totals are scraped live from their owners at
    request time, under those owners' own locks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, int] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._portfolio_wins: dict[str, int] = {}
        #: job id -> latest in-flight solver progress (gap gauge et al).
        self._solver_progress: dict[str, dict] = {}

    # -- primitives ----------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge_add(self, name: str, delta: int) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> int:
        with self._lock:
            return self._gauges.get(name, 0)

    # -- instrumentation seams -----------------------------------------
    def job_event(self, record: dict) -> None:
        """Registry observer: one call per job state transition / result.

        ``record`` is the registry's journal record (``event`` plus
        context).  Terminal states and results get their own counters so
        ``/metrics`` can report totals that outlive registry eviction.
        """
        event = record.get("event")
        if event == "queued":
            self.inc("jobs_submitted")
        elif event == "running":
            self.inc("jobs_started")
        elif event == "result":
            status = record.get("status")
            self.inc("scenarios_total")
            self.inc(f"scenarios_{'ok' if status == 'ok' else 'error'}")
            if record.get("cached"):
                self.inc("scenarios_cached")
        elif event == "requeued":
            self.inc("jobs_requeued")
        elif event in ("done", "error", "cancelled", "deadline", "shed"):
            # Mirrors wire.TERMINAL_STATUSES (kept literal: this module
            # sits below the wire layer in the import graph).
            self.inc("jobs_finished")
            self.inc(f"jobs_{event}")

    def solves_dispatched(self, count: int) -> None:
        """Batch engine hook: ``count`` jobs entered execution."""
        self.gauge_add("solves_in_flight", count)

    def solves_abandoned(self, count: int) -> None:
        """Batch engine hook: dispatched jobs that will never complete."""
        self.gauge_add("solves_in_flight", -count)

    def solve_finished(self, payload: dict) -> None:
        """Batch engine hook: one executed job's worker payload.

        Parses the per-stage solve summaries out of the payload — which
        crosses the process-pool boundary as plain data — so portfolio
        win rates are counted identically for serial and pooled runs.
        """
        from ..batch.portfolio import winning_arm

        status = payload.get("status")
        interrupted = bool(payload.get("interrupted"))
        stage_solves: list[dict] = [
            stage["solve"]
            for stage in payload.get("stages") or []
            if stage.get("solve") is not None
        ]
        with self._lock:
            self._gauges["solves_in_flight"] = (
                self._gauges.get("solves_in_flight", 0) - 1
            )
            self._counters["mapper_jobs"] = self._counters.get("mapper_jobs", 0) + 1
            key = (
                "mapper_jobs_interrupted"
                if interrupted
                else ("mapper_jobs_ok" if status == "ok" else "mapper_jobs_error")
            )
            self._counters[key] = self._counters.get(key, 0) + 1
            for solve in stage_solves:
                self._counters["ilp_solves"] = self._counters.get("ilp_solves", 0) + 1
                arm = winning_arm(str(solve.get("backend", "")))
                if arm is not None:
                    self._counters["portfolio_races"] = (
                        self._counters.get("portfolio_races", 0) + 1
                    )
                    self._portfolio_wins[arm] = self._portfolio_wins.get(arm, 0) + 1
                for phase, seconds in solve.get("phases") or ():
                    name = _PHASE_NAME.sub("_", str(phase).lower()) or "unknown"
                    self._observe_locked(f"solve_phase_{name}", float(seconds))
            wall = payload.get("wall_time")
            if wall is not None:
                self._observe_locked("solve_wall_time", float(wall))

    def _observe_locked(self, name: str, value: float) -> None:
        # Caller holds the lock.
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram()
        histogram.observe(value)

    # -- live solver progress (trace-era gap gauge) --------------------
    def set_solver_progress(self, job_id: str, progress: dict) -> None:
        """Record a job's latest incumbent/bound/gap while it runs.

        Fed by worker heartbeats (fleet mode) or the in-process trace
        runtime (classic mode); cleared when the job finishes so the
        ``/metrics`` gap section only ever shows live solves.
        """
        with self._lock:
            self._solver_progress[job_id] = dict(progress)

    def clear_solver_progress(self, job_id: str) -> None:
        with self._lock:
            self._solver_progress.pop(job_id, None)

    # -- scrape --------------------------------------------------------
    def snapshot(self) -> dict:
        """One consistent view of every counter, gauge and histogram."""
        with self._lock:
            wins = dict(self._portfolio_wins)
            races = self._counters.get("portfolio_races", 0)
            return {
                "uptime": time.time() - self._started,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "portfolio": {
                    "races": races,
                    "wins": wins,
                    "win_rates": (
                        {arm: count / races for arm, count in wins.items()}
                        if races
                        else {}
                    ),
                },
                "latency": {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                },
                "solver_progress": {
                    job_id: dict(progress)
                    for job_id, progress in self._solver_progress.items()
                },
            }


class LoopLatencyProbe(threading.Thread):
    """Measures scheduler drift: sleep ``interval``, record the overshoot.

    The recorded value is ``max(0, actual - interval)`` in seconds — how
    late a thread that asked for the CPU got it.  On an idle daemon this
    sits at microseconds; when solver threads saturate the GIL or the
    machine, the percentiles climb, which is exactly the "is the event
    loop healthy" signal operators watch.
    """

    def __init__(self, metrics: ServiceMetrics, interval: float = 0.05) -> None:
        super().__init__(name="repro-loop-latency-probe", daemon=True)
        self.metrics = metrics
        self.interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.is_set():
            start = time.monotonic()
            # wait() doubles as the sleep so stop() wakes it immediately.
            if self._stop.wait(timeout=self.interval):
                return
            drift = (time.monotonic() - start) - self.interval
            self.metrics.observe("loop_lag", max(0.0, drift))

    def stop(self) -> None:
        self._stop.set()


# ----------------------------------------------------------------------
class JsonlWriter:
    """Write-behind JSONL appender: enqueue now, flush on a writer thread.

    :meth:`append` is O(1) and never touches the disk — records drain
    through a single background thread that appends them through one
    long-lived handle under an advisory ``flock`` (healing a crashed
    sibling's torn tail first), exactly the :class:`repro.dse.store.
    RunStore` idiom.  :meth:`flush` blocks until everything queued so
    far is on disk; :meth:`close` flushes and releases the handle.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._pending: deque[dict] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._written = 0
        self._enqueued = 0
        self._closed = False
        self._handle: IO[bytes] | None = None
        self._thread = threading.Thread(
            target=self._drain_loop, name=f"jsonl-writer-{self.path.name}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Queue one record for the writer thread (never blocks on I/O).

        Appends after :meth:`close` are dropped silently: a worker
        racing a non-waiting shutdown must not crash over a log line.
        """
        with self._lock:
            if self._closed:
                return
            self._pending.append(record)
            self._enqueued += 1
            self._wakeup.notify_all()

    def flush(self, timeout: float | None = 10.0) -> bool:
        """Block until every record queued so far is on disk."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            target = self._enqueued
            while self._written < target:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._wakeup.wait(timeout=remaining)
        return True

    def close(self, timeout: float | None = 10.0) -> None:
        """Flush, stop the writer thread and release the file handle."""
        self.flush(timeout=timeout)
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        self._thread.join(timeout=timeout)
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wakeup.wait(timeout=1.0)
                if not self._pending and self._closed:
                    return
                batch = list(self._pending)
                self._pending.clear()
            lines = [jsonlio.dump_line(record) for record in batch]
            try:
                self._write_locked(b"".join(lines))
            except OSError:  # disk trouble must not kill the daemon
                pass
            with self._lock:
                self._written += len(batch)
                self._wakeup.notify_all()

    def _write_locked(self, data: bytes) -> None:
        jsonlio.append_records(self._ensure_handle(), data)

    def _ensure_handle(self) -> IO[bytes]:
        if self._handle is None or self._handle.closed:
            self._handle = jsonlio.open_append(self.path)
        return self._handle

    @staticmethod
    def _heal_torn_tail(handle: IO[bytes]) -> None:
        jsonlio.heal_torn_tail(handle)


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Tolerant JSONL iterator (see :func:`repro.jsonlio.read_jsonl`)."""
    return _read_jsonl(path)


#: The observer signature the registry calls with each journal record.
EventObserver = Callable[[dict], None]
