"""Spiking-neural-network substrate: graphs, statistics, simulation,
generation (random + statistical twins of the paper's Table-I networks),
EONS-style evolutionary training, encodings and serialization."""

from .analysis import (
    StructureReport,
    degree_histogram,
    feedback_synapses,
    network_depth,
    structure_report,
    weakly_connected_components,
)
from .encoding import decode_rate, encode_frame, rate_encode, ttfs_encode
from .engine import ENGINE_ENV_VAR, ENGINES, CompiledNetwork, resolve_engine
from .eons import Eons, EonsConfig, EonsResult
from .generators import (
    TwinSpec,
    gini_degree_sequence,
    layered_network,
    random_network,
    realize_degree_sequences,
    statistical_twin,
)
from .io import load_network, network_from_dict, network_to_dict, save_network
from .network import Network, Neuron, Synapse
from .simulator import SimulationResult, Simulator, spike_profile
from .stdp import StdpConfig, run_stdp, weight_drift
from .validation import LintIssue, LintLevel, has_errors, lint_network
from .stats import (
    NetworkStats,
    edge_density,
    gini_index,
    max_fan_in,
    max_fan_out,
    network_stats,
)

__all__ = [
    "CompiledNetwork",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "Eons",
    "EonsConfig",
    "EonsResult",
    "resolve_engine",
    "Network",
    "NetworkStats",
    "Neuron",
    "SimulationResult",
    "Simulator",
    "StdpConfig",
    "LintIssue",
    "LintLevel",
    "has_errors",
    "lint_network",
    "run_stdp",
    "weight_drift",
    "Synapse",
    "TwinSpec",
    "StructureReport",
    "decode_rate",
    "degree_histogram",
    "feedback_synapses",
    "network_depth",
    "structure_report",
    "weakly_connected_components",
    "edge_density",
    "encode_frame",
    "gini_degree_sequence",
    "gini_index",
    "layered_network",
    "load_network",
    "max_fan_in",
    "max_fan_out",
    "network_from_dict",
    "network_stats",
    "network_to_dict",
    "random_network",
    "rate_encode",
    "realize_degree_sequences",
    "save_network",
    "spike_profile",
    "statistical_twin",
    "ttfs_encode",
]
