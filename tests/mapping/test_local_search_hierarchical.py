"""Tests for the local-search optimizer and the hierarchical mapper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.hierarchical import (
    HierarchicalOptions,
    hierarchical_map,
    partition_regions,
)
from repro.mapping.local_search import LocalSearchOptions, local_search
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import (
    heterogeneous_architecture,
    homogeneous_architecture,
)
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@pytest.fixture
def het_problem():
    net = random_network(24, 48, seed=17, max_fan_in=6)
    arch = heterogeneous_architecture(
        24,
        types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8),
               CrossbarType(16, 8)],
        max_slots_per_type=10,
    )
    return MappingProblem(net, arch)


class TestLocalSearch:
    def test_valid_and_never_worse(self, het_problem):
        initial = greedy_first_fit(het_problem)
        improved = local_search(het_problem, initial)
        assert improved.is_valid()
        assert (improved.area(), improved.global_routes()) <= (
            initial.area(),
            initial.global_routes(),
        )

    def test_usually_improves_greedy(self, het_problem):
        initial = greedy_first_fit(het_problem)
        improved = local_search(het_problem, initial)
        assert (improved.area(), improved.global_routes()) < (
            initial.area(),
            initial.global_routes(),
        )

    def test_respects_ilp_lower_bound(self, het_problem):
        """Local search can never beat the exact optimum."""
        handle = AreaModel(het_problem)
        exact = HighsBackend(HighsOptions(time_limit=20)).solve(
            handle.model,
            warm_start=handle.warm_start_from(greedy_first_fit(het_problem)),
        )
        searched = local_search(het_problem)
        assert searched.area() >= exact.objective - 1e-9

    def test_deterministic_given_seed(self, het_problem):
        a = local_search(het_problem, options=LocalSearchOptions(seed=5))
        b = local_search(het_problem, options=LocalSearchOptions(seed=5))
        assert a.assignment == b.assignment

    def test_move_toggles(self, het_problem):
        opts = LocalSearchOptions(
            allow_drain=False, allow_downsize=False, allow_swap=False
        )
        result = local_search(het_problem, options=opts)
        assert result.is_valid()

    def test_max_rounds_validated(self, het_problem):
        with pytest.raises(ValueError):
            local_search(het_problem, options=LocalSearchOptions(max_rounds=0))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_property_valid_on_random_nets(self, seed):
        net = random_network(14, 28, seed=seed, max_fan_in=5)
        problem = MappingProblem(
            net, homogeneous_architecture(14, dimension=8, slack=2.0)
        )
        initial = greedy_first_fit(problem)
        result = local_search(problem, initial, LocalSearchOptions(max_rounds=5))
        assert result.validate() == []
        assert result.area() <= initial.area() + 1e-9


class TestPartitionRegions:
    def test_covers_all_neurons_once(self, het_problem):
        regions = partition_regions(het_problem, region_size=8)
        flat = sorted(n for r in regions for n in r)
        assert flat == het_problem.network.neuron_ids()

    def test_region_size_respected(self, het_problem):
        regions = partition_regions(het_problem, region_size=8)
        assert all(len(r) <= 8 for r in regions)

    def test_single_region_when_large_enough(self, het_problem):
        regions = partition_regions(het_problem, region_size=1000)
        assert len(regions) == 1


class TestHierarchicalMap:
    def test_valid_mapping(self, het_problem):
        mapping = hierarchical_map(
            het_problem,
            HierarchicalOptions(region_size=8, region_time_limit=4.0),
        )
        assert mapping.is_valid()

    def test_scales_to_larger_network(self):
        net = random_network(80, 160, seed=3, max_fan_in=8)
        arch = heterogeneous_architecture(80, max_slots_per_type=24)
        problem = MappingProblem(net, arch)
        mapping = hierarchical_map(
            problem, HierarchicalOptions(region_size=24, region_time_limit=3.0)
        )
        assert mapping.is_valid()
        # Must beat the trivial one-neuron-per-cheapest-slot bound.
        cheapest = min(t.area for t in arch.types())
        assert mapping.area() < 80 * cheapest

    def test_options_validated(self):
        with pytest.raises(ValueError):
            HierarchicalOptions(region_size=2)
        with pytest.raises(ValueError):
            HierarchicalOptions(region_time_limit=0.0)

    def test_no_refine_path(self, het_problem):
        mapping = hierarchical_map(
            het_problem,
            HierarchicalOptions(region_size=8, region_time_limit=2.0, refine=False),
        )
        assert mapping.is_valid()
