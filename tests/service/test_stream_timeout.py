"""Client-side stream deadline: heartbeats must not defeat --timeout."""

from __future__ import annotations

import threading

import pytest

import repro.service.daemon as daemon_module
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import MappingService, make_server
from repro.service.wire import JobSpec

pytestmark = pytest.mark.service


def test_stream_timeout_fires_despite_heartbeats(
    tiny_scenario, monkeypatch
):
    # Fast heartbeats so the blocked read wakes up quickly; no workers,
    # so the job never progresses and the stream would ping forever.
    monkeypatch.setattr(daemon_module, "STREAM_HEARTBEAT", 0.1)
    service = MappingService()  # start() never called
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", timeout=30.0
        )
        job = service.submit(JobSpec(scenarios=(tiny_scenario,)))
        with pytest.raises(ServiceError, match="exceeded"):
            for _ in client.stream(job.id, timeout=0.5):
                pass
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
