"""The paper's benchmark networks (Table I) as statistical twins.

The original networks are unreleased EONS checkpoints trained on
SmartPixel data inside TENNLab; their published attributes (Table I) fully
determine the statistics the mapping ILP is sensitive to, so each is
regenerated as a statistical twin (see :func:`repro.snn.generators.
statistical_twin`).  ``scale`` shrinks node/edge counts proportionally for
laptop-budget solver runs — fan-in and Gini targets are preserved, so the
optimization landscape keeps its shape.
"""

from __future__ import annotations

from ..snn.generators import TwinSpec, statistical_twin
from ..snn.network import Network

#: Table I, verbatim.
PAPER_NETWORK_SPECS: dict[str, TwinSpec] = {
    "A": TwinSpec("A", 229, 464, 11, 0.6889, 0.6764),
    "B": TwinSpec("B", 257, 464, 10, 0.6411, 0.6304),
    "C": TwinSpec("C", 148, 487, 15, 0.5744, 0.6067),
    "D": TwinSpec("D", 253, 499, 13, 0.6431, 0.6541),
    "E": TwinSpec("E", 150, 446, 11, 0.5876, 0.6229),
}

#: Table I's reported edge densities, for the Table-1 comparison report.
PAPER_EDGE_DENSITY: dict[str, float] = {
    "A": 0.0088,
    "B": 0.0070,
    "C": 0.0222,
    "D": 0.0078,
    "E": 0.0198,
}

#: Deterministic per-network seeds so every run regenerates identical twins.
_NETWORK_SEEDS: dict[str, int] = {"A": 11, "B": 23, "C": 37, "D": 41, "E": 53}

NETWORK_NAMES = tuple(PAPER_NETWORK_SPECS)


def paper_network(name: str, scale: float = 1.0, seed: int | None = None) -> Network:
    """Regenerate one Table-I network twin (optionally scaled down)."""
    if name not in PAPER_NETWORK_SPECS:
        raise KeyError(
            f"unknown network {name!r}; choose from {sorted(PAPER_NETWORK_SPECS)}"
        )
    spec = PAPER_NETWORK_SPECS[name]
    if scale != 1.0:
        spec = spec.scaled(scale)
    actual_seed = seed if seed is not None else _NETWORK_SEEDS[name]
    return statistical_twin(spec, seed=actual_seed)


def all_paper_networks(scale: float = 1.0) -> dict[str, Network]:
    """All five twins, keyed A-E."""
    return {name: paper_network(name, scale) for name in PAPER_NETWORK_SPECS}
