"""Tests for crossbar types and architecture pools (Table II)."""

import pytest

from repro.mca.architecture import (
    Architecture,
    custom_architecture,
    heterogeneous_architecture,
    homogeneous_architecture,
    table_ii_types,
)
from repro.mca.crossbar import CrossbarSlot, CrossbarType


class TestCrossbarType:
    def test_memristors_and_area(self):
        t = CrossbarType(16, 4)
        assert t.memristors == 64
        assert t.area == 64.0

    def test_overhead_scales_area_not_devices(self):
        t = CrossbarType(8, 8, overhead=1.5)
        assert t.memristors == 64
        assert t.area == pytest.approx(96.0)

    def test_label(self):
        assert CrossbarType(32, 4).label == "32x4"

    def test_fits(self):
        t = CrossbarType(8, 4)
        assert t.fits(num_outputs=4, num_inputs=8)
        assert not t.fits(num_outputs=5, num_inputs=1)
        assert not t.fits(num_outputs=1, num_inputs=9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossbarType(0, 4)
        with pytest.raises(ValueError):
            CrossbarType(4, 4, overhead=0.0)

    def test_ordering_deterministic(self):
        types = sorted([CrossbarType(8, 8), CrossbarType(4, 4), CrossbarType(8, 4)])
        assert [t.label for t in types] == ["4x4", "8x4", "8x8"]


class TestTableII:
    def test_exact_dimension_set(self):
        labels = {t.label for t in table_ii_types()}
        expected = {
            "4x4", "8x4", "16x4", "32x4",
            "8x8", "16x8", "32x8",
            "16x16", "32x16",
            "32x32",
        }
        assert labels == expected

    def test_input_channel_cap(self):
        assert all(t.inputs <= 32 for t in table_ii_types())

    def test_stacking_preserves_output_width(self):
        for t in table_ii_types():
            assert t.inputs % t.outputs == 0
            assert t.inputs // t.outputs in (1, 2, 4, 8)

    def test_custom_cap(self):
        labels = {t.label for t in table_ii_types(max_inputs=16)}
        assert "32x4" not in labels
        assert "16x4" in labels


class TestArchitecture:
    def test_slot_indices_must_be_contiguous(self):
        t = CrossbarType(4, 4)
        with pytest.raises(ValueError, match="contiguous"):
            Architecture("bad", (CrossbarSlot(1, t),))

    def test_homogeneous_pool_size(self):
        arch = homogeneous_architecture(100, dimension=16, slack=1.5)
        assert arch.num_slots == 10  # ceil(150 / 16)
        assert arch.is_homogeneous()
        assert arch.total_output_capacity() == 160

    def test_homogeneous_validation(self):
        with pytest.raises(ValueError):
            homogeneous_architecture(0)
        with pytest.raises(ValueError):
            homogeneous_architecture(10, slack=0.5)

    def test_heterogeneous_covers_each_type(self):
        arch = heterogeneous_architecture(60, max_slots_per_type=100)
        for ctype in table_ii_types():
            slots = arch.slots_of_type(ctype)
            # Every type alone can host the network's outputs.
            assert sum(s.outputs for s in slots) >= 60

    def test_heterogeneous_cap(self):
        arch = heterogeneous_architecture(1000, max_slots_per_type=5)
        for group in arch.identical_slot_groups():
            assert len(group) <= 5

    def test_identical_slot_groups_partition(self):
        arch = heterogeneous_architecture(20, max_slots_per_type=3)
        groups = arch.identical_slot_groups()
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(arch.num_slots))

    def test_custom_architecture(self):
        arch = custom_architecture(
            [(CrossbarType(4, 4), 2), (CrossbarType(8, 8), 1)]
        )
        assert arch.num_slots == 3
        assert arch.total_area() == 2 * 16 + 64
        assert not arch.is_homogeneous()

    def test_custom_negative_count_rejected(self):
        with pytest.raises(ValueError):
            custom_architecture([(CrossbarType(4, 4), -1)])

    def test_repr_inventory(self):
        arch = custom_architecture([(CrossbarType(4, 4), 2)], name="inv")
        assert "2x 4x4" in repr(arch)
