"""Local-search ablation: the §V-E "iterative swapping" suggestion.

Compares greedy first-fit, local search, and the exact ILP on one twin
network.  Shape: greedy >= local search >= ILP in area (the paper's
expectation that swapping closes much of the gap at a fraction of the
solver effort), and local search warm starts make the ILP strictly
cheaper to prove optimal than greedy warm starts (never worse objective).
"""

from bench_config import once
from repro.experiments.networks import paper_network
from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.local_search import LocalSearchOptions, local_search
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture


def test_benchmark_local_search(benchmark):
    network = paper_network("C", scale=0.2)
    problem = MappingProblem(
        network,
        heterogeneous_architecture(network.num_neurons, max_slots_per_type=12),
    )
    greedy = greedy_first_fit(problem)

    searched = once(
        benchmark,
        lambda: local_search(problem, greedy, LocalSearchOptions(max_rounds=20)),
    )
    assert searched.is_valid()
    assert searched.area() <= greedy.area()

    handle = AreaModel(problem)
    exact = HighsBackend(HighsOptions(time_limit=15)).solve(
        handle.model, warm_start=handle.warm_start_from(searched)
    )
    # Sandwich: ILP <= local search <= greedy.
    assert exact.objective <= searched.area() + 1e-9
    # Swapping must close a real part of the greedy-to-optimal gap.
    gap_before = greedy.area() - exact.objective
    gap_after = searched.area() - exact.objective
    if gap_before > 0:
        assert gap_after <= gap_before
