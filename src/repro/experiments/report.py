"""Terminal-friendly report rendering: sparklines and scatter strips.

The paper's evolution exhibits (Figs. 3a, 7, 8) are line/scatter plots;
in a text harness we render them as unicode sparklines and labelled
strips so a run's trajectory is still legible at a glance.
"""

from __future__ import annotations

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render values as a unicode sparkline (empty input -> '')."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return _BARS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_BARS) - 1))
        out.append(_BARS[idx])
    return "".join(out)


def trend_line(
    label: str, values: Sequence[float], unit: str = ""
) -> str:
    """One labelled sparkline row: ``label  ▇▅▃▁  first -> last unit``."""
    if not values:
        return f"{label}: (no data)"
    suffix = f" {unit}" if unit else ""
    return (
        f"{label}: {sparkline(values)}  "
        f"{values[0]:g} -> {values[-1]:g}{suffix}"
    )


def scatter_strip(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 10,
) -> str:
    """ASCII scatter of (x, y) points on a width x height grid."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return "(no points)"
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]

    def place(value: float, lo: float, hi: float, cells: int) -> int:
        if hi - lo < 1e-12:
            return 0
        return min(cells - 1, int((value - lo) / (hi - lo) * (cells - 1)))

    for x, y in zip(xs, ys):
        col = place(x, x_lo, x_hi, width)
        row = height - 1 - place(y, y_lo, y_hi, height)
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_lo:g}, {x_hi:g}]  y: [{y_lo:g}, {y_hi:g}]")
    return "\n".join(lines)


def percent_bar(fraction: float, width: int = 30) -> str:
    """A [####----] utilization bar for a fraction in [0, 1]."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + f"] {100 * fraction:.0f}%"
