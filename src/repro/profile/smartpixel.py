"""Synthetic SmartPixel-like dataset.

The paper profiles its networks on SmartPixel data [36]: pixel-cluster
frames from high-energy-particle detector simulations, where the learning
task is classifying track properties on-sensor.  That dataset (5 GB of
detector traces) is not redistributable, so this module synthesizes the
statistically relevant equivalent: small pixel frames containing a charged-
particle track — a straight line with Gaussian charge spread — plus noise,
labelled by the track's slope class.

What PGO actually needs from the data is *activity regularity*: some
synapses are consistently hot across samples, others consistently cold
(paper §II-D).  Tracks through a small sensor concentrate charge near the
centre rows, which reproduces exactly that skewed, stable profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SmartPixelConfig:
    """Generator parameters."""

    rows: int = 8
    cols: int = 8
    num_samples: int = 200
    charge_spread: float = 0.7  # Gaussian sigma of deposited charge (pixels)
    noise: float = 0.05  # per-pixel additive noise amplitude
    num_classes: int = 3  # slope classes: left / straight / right
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ValueError("pixel array must be at least 2x2")
        if self.num_samples < 1:
            raise ValueError("num_samples must be positive")
        if self.num_classes < 2:
            raise ValueError("need at least two track classes")
        if not 0 <= self.noise < 1:
            raise ValueError("noise must be in [0, 1)")


@dataclass(frozen=True)
class PixelSample:
    """One detector frame and its track-class label."""

    frame: np.ndarray  # (rows, cols) float charge image in [0, 1]
    label: int


def _track_frame(
    config: SmartPixelConfig, slope: float, intercept: float, rng: np.random.Generator
) -> np.ndarray:
    """Render a straight track ``col = intercept + slope * row`` with
    Gaussian charge spread and additive noise."""
    rows, cols = config.rows, config.cols
    frame = np.zeros((rows, cols))
    col_axis = np.arange(cols)
    for row in range(rows):
        centre = intercept + slope * row
        frame[row] += np.exp(
            -0.5 * ((col_axis - centre) / config.charge_spread) ** 2
        )
    if config.noise > 0:
        frame += config.noise * rng.random((rows, cols))
    peak = frame.max()
    if peak > 0:
        frame /= peak
    return frame


def generate_dataset(config: SmartPixelConfig) -> list[PixelSample]:
    """Generate ``num_samples`` labelled track frames (reproducible)."""
    rng = np.random.default_rng(config.seed)
    # Slope classes span [-1, 1] column-per-row, evenly partitioned.
    edges = np.linspace(-1.0, 1.0, config.num_classes + 1)
    samples: list[PixelSample] = []
    for _ in range(config.num_samples):
        label = int(rng.integers(config.num_classes))
        slope = float(rng.uniform(edges[label], edges[label + 1]))
        intercept = float(rng.uniform(0, config.cols - 1))
        frame = _track_frame(config, slope, intercept, rng)
        samples.append(PixelSample(frame=frame, label=label))
    return samples


def split_dataset(
    samples: list[PixelSample],
    profile_fraction: float = 0.01,
    seed: int = 0,
    min_profile: int = 1,
) -> tuple[list[PixelSample], list[PixelSample]]:
    """Random (profile, evaluation) split — the paper's 1% / 99% protocol.

    A randomly-selected ``profile_fraction`` of the data drives PGO; the
    remainder evaluates the optimized mapping (Fig. 9's error bands).
    """
    if not 0 < profile_fraction < 1:
        raise ValueError("profile_fraction must be in (0, 1)")
    if not samples:
        raise ValueError("empty dataset")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(samples))
    cut = max(min_profile, int(round(profile_fraction * len(samples))))
    cut = min(cut, len(samples) - 1)
    profile_idx = set(order[:cut].tolist())
    profile = [samples[i] for i in sorted(profile_idx)]
    evaluation = [s for i, s in enumerate(samples) if i not in profile_idx]
    return profile, evaluation
