"""Spike-for-spike equivalence of the vector and reference engines.

The vector engine is only allowed to be *faster*, never different: on any
network (random topology, delays, leaks, inhibitory weights, self-loops)
and any input program (forced spikes + sub-threshold charges) it must
produce the identical spike raster and spike counts.  Final potentials
are compared to within a few ULP: summing a neuron's incoming charges in
a different (vectorized) order may round differently, which is a
representation detail, not a behavioral difference — the discrete spike
record stays bit-exact.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.snn.engine import (
    ENGINES,
    CompiledNetwork,
    resolve_engine,
    run_compiled,
)
from repro.snn.network import Network
from repro.snn.simulator import Simulator, spike_profile

pytestmark = pytest.mark.engines


@st.composite
def networks(draw):
    n = draw(st.integers(1, 10))
    net = Network("prop")
    for i in range(n):
        net.add_neuron(
            i,
            threshold=draw(
                st.floats(0.3, 3.0, allow_nan=False, allow_infinity=False)
            ),
            leak=draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])),
            is_input=(i == 0),
        )
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=min(25, n * n),
        )
    )
    for pre, post in sorted(edges):
        net.add_synapse(
            pre,
            post,
            weight=draw(
                st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False)
            ),
            delay=draw(st.integers(1, 5)),
        )
    return net


@st.composite
def input_programs(draw, n, duration):
    horizon = duration + 3  # out-of-window times must be ignored
    spikes = draw(
        st.dictionaries(
            st.integers(0, n - 1),
            st.lists(st.integers(0, horizon), max_size=6),
            max_size=min(4, n),
        )
    )
    charges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, horizon),
                st.floats(-1.5, 2.0, allow_nan=False, allow_infinity=False),
            ),
            max_size=6,
        )
    )
    return spikes, charges


class TestPropertyEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(net=networks(), data=st.data())
    def test_raster_counts_and_potentials_match(self, net, data):
        duration = data.draw(st.integers(0, 30))
        spikes, charges = data.draw(input_programs(net.num_neurons, duration))
        ref = Simulator(net, engine="reference").run(
            duration, input_spikes=spikes, input_charges=charges
        )
        vec = Simulator(net, engine="vector").run(
            duration, input_spikes=spikes, input_charges=charges
        )
        assert vec.spikes == ref.spikes
        assert vec.spike_counts == ref.spike_counts
        assert vec.duration == ref.duration
        assert set(vec.final_potentials) == set(ref.final_potentials)
        for nid, reference in ref.final_potentials.items():
            assert vec.final_potentials[nid] == pytest.approx(
                reference, rel=1e-12, abs=1e-12
            )

    @settings(max_examples=40, deadline=None)
    @given(net=networks(), data=st.data())
    def test_gather_fallback_matches_reference(self, net, data):
        """The SciPy-free delivery path is equivalent too."""
        duration = data.draw(st.integers(0, 20))
        spikes, charges = data.draw(input_programs(net.num_neurons, duration))
        compiled = CompiledNetwork.from_network(net)
        stripped = CompiledNetwork(
            ids=compiled.ids,
            thresholds=compiled.thresholds,
            leaks=compiled.leaks,
            indptr=compiled.indptr,
            post=compiled.post,
            weight=compiled.weight,
            delay=compiled.delay,
            max_delay=compiled.max_delay,
            delay_groups=(),  # force the gather/bincount path
        )
        times, ids, counts, _ = run_compiled(
            stripped, duration, input_spikes=spikes, input_charges=charges
        )
        ref = Simulator(net, engine="reference").run(
            duration, input_spikes=spikes, input_charges=charges
        )
        assert list(zip(times.tolist(), ids.tolist())) == ref.spikes
        assert dict(zip(compiled.ids.tolist(), counts.tolist())) == ref.spike_counts

    @settings(max_examples=40, deadline=None)
    @given(net=networks(), data=st.data())
    def test_spike_index_matches_raster_scan(self, net, data):
        duration = data.draw(st.integers(0, 25))
        spikes, _ = data.draw(input_programs(net.num_neurons, duration))
        result = Simulator(net, engine="vector").run(
            duration, input_spikes=spikes
        )
        raster = result.spikes
        for nid in net.neuron_ids():
            expected = [t for t, fired in raster if fired == nid]
            assert result.spikes_of(nid) == expected
            train = result.spike_train(nid)
            assert len(train) == duration
            assert [t for t, bit in enumerate(train) if bit] == sorted(
                set(expected)
            )


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        net = Network()
        net.add_neuron(0)
        with pytest.raises(ValueError):
            Simulator(net, engine="warp")

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine() == "reference"
        net = Network()
        net.add_neuron(0)
        assert Simulator(net).engine == "reference"
        # Explicit argument wins over the environment.
        assert Simulator(net, engine="vector").engine == "vector"

    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine() == "vector"
        assert set(ENGINES) == {"vector", "reference"}

    def test_vector_rejects_unknown_input_neuron(self):
        net = Network()
        net.add_neuron(0)
        with pytest.raises(KeyError):
            Simulator(net, engine="vector").run(3, input_spikes={9: [0]})
        with pytest.raises(KeyError):
            Simulator(net, engine="vector").run(3, input_charges=[(9, 0, 1.0)])

    def test_vector_rejects_negative_duration(self):
        net = Network()
        net.add_neuron(0)
        with pytest.raises(ValueError):
            Simulator(net, engine="vector").run(-1)

    def test_spike_profile_engine_passthrough(self):
        net = Network()
        for i in range(3):
            net.add_neuron(i, is_input=(i == 0))
        net.add_synapse(0, 1)
        net.add_synapse(1, 2)
        samples = [{0: [0]}, {0: [0, 2]}]
        assert spike_profile(net, samples, 8, engine="vector") == spike_profile(
            net, samples, 8, engine="reference"
        )


class TestCompiledNetwork:
    def test_csr_shape_and_order(self):
        net = Network()
        for i in range(4):
            net.add_neuron(i)
        net.add_synapse(2, 0, weight=0.5, delay=3)
        net.add_synapse(2, 3, weight=-1.0, delay=1)
        net.add_synapse(0, 1, weight=2.0, delay=2)
        compiled = CompiledNetwork.from_network(net)
        assert compiled.num_neurons == 4
        assert compiled.indptr.tolist() == [0, 1, 1, 3, 3]
        assert compiled.post.tolist() == [1, 0, 3]  # targets ascending per row
        assert compiled.weight.tolist() == [2.0, 0.5, -1.0]
        assert compiled.delay.tolist() == [2, 3, 1]
        assert compiled.max_delay == 3
        assert compiled.index_of() == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_non_contiguous_ids(self):
        net = Network()
        for nid in (3, 7, 11):
            net.add_neuron(nid, is_input=(nid == 3))
        net.add_synapse(3, 7)
        net.add_synapse(7, 11)
        ref = Simulator(net, engine="reference").run(5, input_spikes={3: [0]})
        vec = Simulator(net, engine="vector").run(5, input_spikes={3: [0]})
        assert vec.spikes == ref.spikes == [(0, 3), (1, 7), (2, 11)]

    def test_sparse_staging_path_equivalent(self, monkeypatch):
        """Past the dense-staging limit the sparse dict path kicks in."""
        import repro.snn.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_DENSE_EXT_LIMIT", 0)
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1)
        net.add_synapse(0, 1, weight=0.6, delay=2)
        spikes = {0: [0, 3, 3, 9]}
        charges = [(1, 4, 0.5), (1, 5, -0.2), (0, 11, 1.0)]
        vec = Simulator(net, engine="vector").run(
            12, input_spikes=spikes, input_charges=charges
        )
        ref = Simulator(net, engine="reference").run(
            12, input_spikes=spikes, input_charges=charges
        )
        assert vec.spikes == ref.spikes
        assert vec.final_potentials == ref.final_potentials
