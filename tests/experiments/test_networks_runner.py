"""Tests for the experiment harness: twin networks, config, reporting."""

import pytest

from repro.experiments.networks import (
    NETWORK_NAMES,
    PAPER_NETWORK_SPECS,
    all_paper_networks,
    paper_network,
)
from repro.experiments.runner import (
    EXHIBITS,
    ExperimentConfig,
    format_table,
    run_exhibit,
)
from repro.snn.stats import network_stats


class TestPaperNetworks:
    def test_all_five_networks(self):
        assert NETWORK_NAMES == ("A", "B", "C", "D", "E")
        nets = all_paper_networks(scale=0.1)
        assert set(nets) == set(NETWORK_NAMES)

    def test_full_scale_matches_table1(self):
        for name, spec in PAPER_NETWORK_SPECS.items():
            stats = network_stats(paper_network(name))
            assert stats.node_count == spec.node_count
            assert stats.edge_count == spec.edge_count
            assert stats.max_fan_in == spec.max_fan_in

    def test_deterministic_regeneration(self):
        a = paper_network("B", scale=0.2)
        b = paper_network("B", scale=0.2)
        assert list(a.synapses()) == list(b.synapses())

    def test_seed_override(self):
        a = paper_network("C", scale=0.2)
        b = paper_network("C", scale=0.2, seed=999)
        assert list(a.synapses()) != list(b.synapses())

    def test_unknown_network_rejected(self):
        with pytest.raises(KeyError, match="unknown network"):
            paper_network("Z")


class TestConfig:
    def test_full_scale_variant(self):
        config = ExperimentConfig().full_scale()
        assert config.scale == 1.0
        assert config.area_time_limit >= 3600.0

    def test_frozen(self):
        with pytest.raises(Exception):
            ExperimentConfig().scale = 0.5  # type: ignore[misc]


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [("a", 1.23456), ("bb", 7)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text  # 4 significant digits
        assert lines[0].startswith("name")

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestRunExhibit:
    def test_unknown_exhibit_rejected(self):
        with pytest.raises(KeyError):
            run_exhibit("fig99", ExperimentConfig())

    def test_exhibit_registry_complete(self):
        assert set(EXHIBITS) == {
            "table1", "table2", "ablation", "fig2", "fig3", "fig5", "fig6",
            "fig7", "fig8", "fig9",
        }

    def test_table_exhibits_run(self):
        config = ExperimentConfig(scale=0.1)
        assert "GiniIn" in run_exhibit("table1", config)
        assert "32x32" in run_exhibit("table2", config)
