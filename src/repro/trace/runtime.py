"""Ambient tracing runtime: contextvars, the journal, the watchdog.

One :class:`TraceRuntime` per traced process (the daemon installs one
when ``--trace-dir`` is set; ``worker_main`` installs one from its
``FleetConfig``).  Instrumentation sites throughout the stack call the
module-level helpers — :func:`span`, :func:`record_span`, :func:`event`,
:func:`progress` — which are strict no-ops costing two attribute loads
when no runtime is installed or no context is active, so tracing adds
nothing to untraced jobs.

The *current context* and *current job id* ride :mod:`contextvars`, so
the daemon's worker threads and the fleet's single-task worker loop both
get correct ambient parenting without threading arguments through the
explorer/engine/solver layers.

The slow-span watchdog lives here too: every finished span whose
duration exceeds the runtime's threshold is logged (``repro.trace``
logger) and counted, surfaced through ``/metrics``.
"""

from __future__ import annotations

import contextlib
import logging
import threading
import time
from contextvars import ContextVar
from pathlib import Path

from .context import TraceContext, new_span_id
from .journal import SpanJournal
from .spans import Span, TraceEvent

logger = logging.getLogger("repro.trace")

_current_context: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)
_current_job: ContextVar[str | None] = ContextVar(
    "repro_trace_job", default=None
)

_runtime: "TraceRuntime | None" = None


class TraceRuntime:
    """One process's tracing state: journal, watchdog, live progress."""

    def __init__(
        self,
        trace_dir: str | Path | None,
        process: str,
        slow_span_threshold: float | None = None,
        flush_every: int = 1,
    ) -> None:
        self.process = process
        self.slow_span_threshold = slow_span_threshold
        self.journal = (
            SpanJournal(
                Path(trace_dir) / f"{process}.jsonl", flush_every=flush_every
            )
            if trace_dir is not None
            else None
        )
        self._lock = threading.Lock()
        self._slow_spans = 0
        #: job id -> latest solver progress dict (gap gauge source).
        self._progress: dict[str, dict] = {}
        #: observer called with ``(job_id, progress)`` on every update —
        #: the classic-mode daemon wires this straight into its metrics.
        self.on_progress = None

    # -- recording -----------------------------------------------------
    def record_span(self, span: Span) -> None:
        threshold = self.slow_span_threshold
        if threshold is not None and span.duration > threshold:
            with self._lock:
                self._slow_spans += 1
            logger.warning(
                "slow span %s (%.3fs > %.3fs) trace=%s proc=%s",
                span.name, span.duration, threshold, span.trace_id, span.process,
            )
        if self.journal is not None:
            self.journal.record(span.payload())

    def record_event(self, trace_event: TraceEvent) -> None:
        if self.journal is not None:
            self.journal.record(trace_event.payload())

    def flush(self) -> None:
        if self.journal is not None:
            self.journal.flush()

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # -- watchdog / progress views -------------------------------------
    @property
    def slow_spans(self) -> int:
        with self._lock:
            return self._slow_spans

    def update_progress(self, job_id: str, payload: dict) -> None:
        with self._lock:
            self._progress[job_id] = dict(payload)
        observer = self.on_progress
        if observer is not None:
            observer(job_id, dict(payload))

    def progress_for(self, job_id: str) -> dict | None:
        with self._lock:
            progress = self._progress.get(job_id)
            return dict(progress) if progress is not None else None

    def clear_progress(self, job_id: str) -> None:
        with self._lock:
            self._progress.pop(job_id, None)


# -- installation -------------------------------------------------------
def install(runtime: TraceRuntime) -> TraceRuntime:
    """Make ``runtime`` the process's ambient sink (replacing any prior)."""
    global _runtime
    previous, _runtime = _runtime, runtime
    if previous is not None:
        previous.close()
    return runtime


def uninstall() -> None:
    global _runtime
    previous, _runtime = _runtime, None
    if previous is not None:
        previous.close()


def get_runtime() -> TraceRuntime | None:
    return _runtime


# -- ambient context ----------------------------------------------------
def current_context() -> TraceContext | None:
    return _current_context.get()


def current_job() -> str | None:
    return _current_job.get()


@contextlib.contextmanager
def activate(context: TraceContext | None, job_id: str | None = None):
    """Bind the ambient context (and job id) for the enclosed block."""
    context_token = _current_context.set(context)
    job_token = _current_job.set(job_id)
    try:
        yield context
    finally:
        _current_job.reset(job_token)
        _current_context.reset(context_token)


# -- instrumentation helpers (no-ops when tracing is inactive) ----------
@contextlib.contextmanager
def span(name: str, **attrs):
    """Time the enclosed block as a child span of the ambient context.

    Yields the child's :class:`TraceContext` (or ``None`` when tracing
    is inactive); nested ``span`` calls parent to it automatically.
    """
    runtime = _runtime
    parent = _current_context.get()
    if runtime is None or parent is None:
        yield None
        return
    child = parent.child()
    token = _current_context.set(child)
    start = time.time()
    clock = time.perf_counter()
    try:
        yield child
    finally:
        _current_context.reset(token)
        runtime.record_span(
            Span(
                trace_id=child.trace_id,
                span_id=child.span_id,
                name=name,
                start=start,
                duration=time.perf_counter() - clock,
                parent_id=parent.span_id,
                process=runtime.process,
                attrs=attrs,
            )
        )


def record_span(
    name: str,
    context: TraceContext | None = None,
    *,
    start: float,
    duration: float,
    **attrs,
) -> None:
    """Record an already-measured span under ``context`` (or the ambient one).

    For hops whose interval is reconstructed after the fact — queue
    waits, leases, solver phases — where a ``with span(...)`` block
    never existed.
    """
    runtime = _runtime
    parent = context if context is not None else _current_context.get()
    if runtime is None or parent is None:
        return
    runtime.record_span(
        Span(
            trace_id=parent.trace_id,
            span_id=new_span_id(),
            name=name,
            start=start,
            duration=max(0.0, duration),
            parent_id=parent.span_id,
            process=runtime.process,
            attrs=attrs,
        )
    )


def event(name: str, context: TraceContext | None = None, **attrs) -> None:
    """Record a point-in-time event against the (ambient) context."""
    runtime = _runtime
    target = context if context is not None else _current_context.get()
    if runtime is None or target is None:
        return
    runtime.record_event(
        TraceEvent(
            trace_id=target.trace_id,
            name=name,
            ts=time.time(),
            span_id=target.span_id,
            process=runtime.process,
            attrs=attrs,
        )
    )


def progress(
    name: str = "progress",
    *,
    objective: float | None = None,
    bound: float | None = None,
    nodes: int | None = None,
    det_time: float | None = None,
) -> None:
    """Live solver progress: journal an event + refresh the gap gauge.

    Called from solver hot paths (BnB incumbent/bound updates), so it
    bails in two loads when tracing is inactive.  The relative gap is
    derived here once so every surface (heartbeats, ``/metrics``,
    ``repro trace``) reports the same number.
    """
    runtime = _runtime
    context = _current_context.get()
    if runtime is None or context is None:
        return
    gap = None
    if objective is not None and bound is not None:
        gap = abs(objective - bound) / max(abs(objective), 1e-9)
    attrs: dict = {}
    if objective is not None:
        attrs["objective"] = objective
    if bound is not None:
        attrs["bound"] = bound
    if nodes is not None:
        attrs["nodes"] = nodes
    if det_time is not None:
        attrs["det_time"] = det_time
    if gap is not None:
        attrs["gap"] = gap
    runtime.record_event(
        TraceEvent(
            trace_id=context.trace_id,
            name=name,
            ts=time.time(),
            span_id=context.span_id,
            process=runtime.process,
            attrs=attrs,
        )
    )
    job_id = _current_job.get()
    if job_id is not None:
        runtime.update_progress(job_id, {"event": name, "ts": time.time(), **attrs})
