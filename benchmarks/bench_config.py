"""Shared benchmark configurations.

Every bench regenerates one paper exhibit at a laptop-friendly scale and
asserts its qualitative *shape* (who wins, in which direction) — absolute
numbers depend on network scale and solver budget, exactly as the paper's
depend on its 5-hour CP-SAT runs.

Run:  pytest benchmarks/ --benchmark-only
"""

from repro.experiments.runner import ExperimentConfig

#: Cheap configuration for the exhibits whose shape survives small scale.
SMALL = ExperimentConfig(
    scale=0.12,
    area_time_limit=5.0,
    route_time_limit=4.0,
    trace_slices=4,
    num_samples=200,
)

#: Fig. 2 needs enough neurons that input-line capacity binds (otherwise
#: the MCC flaw never costs area on the homogeneous target).
FIG2 = ExperimentConfig(
    scale=0.25,
    area_time_limit=10.0,
    route_time_limit=5.0,
)

#: Fig. 9 wants a larger eval split for stable error bands.
FIG9 = ExperimentConfig(
    scale=0.2,
    area_time_limit=8.0,
    route_time_limit=6.0,
    num_samples=300,
)


def once(benchmark, fn):
    """Run an exhibit exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
