"""Design-space exploration: which (architecture, workload, formulation)
points are worth building?

The layer above :mod:`repro.batch`: a declarative scenario grid
(:mod:`~repro.dse.scenario`), a vectorized multi-objective Pareto engine
over (area, energy, latency) (:mod:`~repro.dse.pareto`,
:mod:`~repro.dse.objectives`), search drivers that spend ILP budget
adaptively (:mod:`~repro.dse.drivers`), and a crash-tolerant JSONL run
store that makes every sweep resumable (:mod:`~repro.dse.store`).

>>> from repro.dse import Explorer, RunStore, default_space, explore_adaptive
>>> result = explore_adaptive(
...     default_space(), Explorer(store=RunStore("runs.jsonl"), jobs=4)
... )  # doctest: +SKIP
>>> print(result.report())  # doctest: +SKIP
"""

from .drivers import DRIVERS, explore_adaptive, explore_grid
from .explorer import ExplorationResult, Explorer, ScenarioResult
from .objectives import OBJECTIVE_NAMES, ObjectivePoint, evaluate_objectives, objective_matrix
from .pareto import (
    FrontierDiff,
    crowding_distance,
    frontier_diff,
    hypervolume,
    nondominated_mask,
    pareto_rank,
    reference_point,
)
from .scenario import (
    ArchitectureSpec,
    DesignSpace,
    FormulationSpec,
    Scenario,
    ScenarioRegistry,
    WorkloadSpec,
    default_space,
    formulation_from_payload,
    scenario_from_payload,
)
from .store import TIER_GREEDY, TIER_ILP, RunEntry, RunStore

__all__ = [
    "ArchitectureSpec",
    "DRIVERS",
    "DesignSpace",
    "ExplorationResult",
    "Explorer",
    "FormulationSpec",
    "FrontierDiff",
    "OBJECTIVE_NAMES",
    "ObjectivePoint",
    "RunEntry",
    "RunStore",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioResult",
    "TIER_GREEDY",
    "TIER_ILP",
    "WorkloadSpec",
    "crowding_distance",
    "default_space",
    "evaluate_objectives",
    "explore_adaptive",
    "explore_grid",
    "formulation_from_payload",
    "frontier_diff",
    "hypervolume",
    "nondominated_mask",
    "objective_matrix",
    "pareto_rank",
    "reference_point",
    "scenario_from_payload",
]
