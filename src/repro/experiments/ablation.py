"""Formulation-ablation exhibit (DESIGN.md §5).

Not a paper figure — a reproduction artifact: runs the area model with
each formulation knob flipped on one network/architecture pair and
reports optimum, model size, and solver effort, demonstrating that every
knob is a pure performance device (optimum invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ilp.highs_backend import HighsBackend, HighsOptions
from ..mapping.axon_sharing import AreaModel, FormulationOptions
from ..mapping.greedy import greedy_first_fit
from .common import ExhibitResult, het_problem
from .networks import paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class AblationRow:
    """One formulation variant's outcome."""

    variant: str
    objective: float
    variables: int
    constraints: int
    nonzeros: int
    det_time: float
    wall_time: float


VARIANTS: dict[str, FormulationOptions] = {
    "baseline (paper-faithful)": FormulationOptions(),
    "no symmetry breaking": FormulationOptions(symmetry_breaking=False),
    "aggregated sharing (6)": FormulationOptions(disaggregate_sharing=False),
    "no upper link (5)": FormulationOptions(include_upper_link=False),
}


def run_ablation(config: ExperimentConfig, network_name: str = "E") -> ExhibitResult:
    network = paper_network(network_name, scale=config.scale)
    problem = het_problem(network, config)
    warm_mapping = greedy_first_fit(problem)

    rows: list[AblationRow] = []
    for label, options in VARIANTS.items():
        handle = AreaModel(problem, options)
        stats = handle.model.stats()
        warm = handle.warm_start_from(warm_mapping)
        result = HighsBackend(
            HighsOptions(time_limit=config.area_time_limit)
        ).solve(handle.model, warm_start=warm)
        assert result.objective is not None
        rows.append(
            AblationRow(
                variant=label,
                objective=result.objective,
                variables=handle.model.num_vars,
                constraints=stats["constraints"],
                nonzeros=stats["nonzeros"],
                det_time=result.det_time,
                wall_time=result.wall_time,
            )
        )

    table_rows = [
        (
            r.variant,
            r.objective,
            r.variables,
            r.constraints,
            r.nonzeros,
            round(r.det_time, 1),
            round(r.wall_time, 2),
        )
        for r in rows
    ]
    headers = ["variant", "area", "vars", "rows", "nnz", "det", "wall s"]
    objectives = {r.objective for r in rows}
    note = (
        "all variants share one optimum"
        if len(objectives) == 1
        else f"WARNING: objectives differ across variants: {sorted(objectives)} "
        "(solver budget too small to close all variants)"
    )
    return ExhibitResult(
        report=format_table(headers, table_rows) + "\n" + note,
        rows=table_rows,
    )
