"""Tests for the top-level public API surface."""

import pytest

import repro
from repro.snn import random_network


class TestQuickMap:
    def test_heterogeneous_default(self):
        network = random_network(20, 40, seed=3, max_fan_in=6)
        mapping = repro.quick_map(network, time_limit=5.0)
        assert mapping.is_valid()
        assert mapping.problem.network is network

    def test_homogeneous_variant(self):
        network = random_network(20, 40, seed=3, max_fan_in=6)
        mapping = repro.quick_map(network, heterogeneous=False, time_limit=5.0)
        assert mapping.is_valid()
        types = mapping.problem.architecture.types()
        assert len(types) == 1
        assert types[0].label == "16x16"

    def test_heterogeneous_beats_homogeneous_area(self):
        network = random_network(24, 48, seed=8, max_fan_in=6)
        het = repro.quick_map(network, time_limit=8.0)
        homo = repro.quick_map(network, heterogeneous=False, time_limit=8.0)
        assert het.area() < homo.area()


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        ["ilp", "snn", "mca", "mapping", "profile", "experiments"],
    )
    def test_subpackage_all_resolves(self, module):
        import importlib

        pkg = importlib.import_module(f"repro.{module}")
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"repro.{module}.{name}"
