"""Hierarchical-mapping scaling bench.

Maps a full-scale (229-neuron) network-A twin — the size the paper needed
multi-hour CP-SAT runs for — with the partition-then-ILP mapper in
seconds-per-region budgets.  Shape: valid mapping in the greedy quality
class (partition boundaries cost a little area) and far below the trivial
per-neuron bound, at a tiny fraction of the monolithic solve cost.
"""

from bench_config import once
from repro.experiments.networks import paper_network
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.hierarchical import HierarchicalOptions, hierarchical_map
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture


def test_benchmark_hierarchical_full_scale(benchmark):
    network = paper_network("A", scale=1.0)  # 229 neurons, 464 synapses
    problem = MappingProblem(
        network,
        heterogeneous_architecture(network.num_neurons, max_slots_per_type=64),
    )

    mapping = once(
        benchmark,
        lambda: hierarchical_map(
            problem,
            HierarchicalOptions(region_size=40, region_time_limit=5.0),
        ),
    )
    assert mapping.is_valid()
    # Region-local optimality does not dominate a global heuristic — the
    # partition boundary costs something — but it must stay in the same
    # quality class while offering bounded per-region solve times.
    greedy = greedy_first_fit(problem)
    assert mapping.area() <= 1.25 * greedy.area()
    per_neuron_bound = network.num_neurons * min(
        t.area for t in problem.architecture.types()
    )
    assert mapping.area() < per_neuron_bound
