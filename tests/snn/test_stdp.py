"""Tests for the STDP plasticity rule."""

import pytest

from repro.snn.network import Network
from repro.snn.simulator import Simulator
from repro.snn.stdp import StdpConfig, run_stdp, weight_drift


def pair(weight=1.0, delay=1):
    """Input 0 -> neuron 1."""
    net = Network("pair")
    net.add_neuron(0, is_input=True)
    net.add_neuron(1)
    net.add_synapse(0, 1, weight=weight, delay=delay)
    return net


class TestConfigValidation:
    def test_rates_nonnegative(self):
        with pytest.raises(ValueError):
            StdpConfig(a_plus=-0.1)

    def test_tau_positive(self):
        with pytest.raises(ValueError):
            StdpConfig(tau=0.0)

    def test_bounds_ordered(self):
        with pytest.raises(ValueError):
            StdpConfig(w_min=1.0, w_max=0.0)


class TestPairRule:
    def test_causal_pair_potentiates(self):
        net = pair(weight=1.0)
        config = StdpConfig(a_plus=0.1, a_minus=0.0)
        # 0 fires at 0; 1 receives at 1 and fires -> causal.
        _, adapted = run_stdp(net, 6, config, input_spikes={0: [0]})
        assert adapted.synapse(0, 1).weight > 1.0

    def test_anticausal_depresses(self):
        # Force 1 to fire before 0 via external charge, then fire 0.
        net = pair(weight=0.0)  # synapse carries no charge; timing only
        config = StdpConfig(a_plus=0.0, a_minus=0.1)
        net2 = net.copy()
        net2.add_neuron(2, is_input=True)
        net2.add_synapse(2, 1, weight=5.0, delay=1)
        _, adapted = run_stdp(
            net2, 8, config, input_spikes={2: [0], 0: [4]}
        )
        # 1 fired at t=1; 0 fired at t=4 -> anti-causal -> depression.
        assert adapted.synapse(0, 1).weight < 0.0

    def test_weight_bounds_respected(self):
        net = pair(weight=1.9)
        config = StdpConfig(a_plus=1.0, a_minus=0.0, w_max=2.0)
        _, adapted = run_stdp(net, 20, config, input_spikes={0: list(range(0, 20, 2))})
        assert adapted.synapse(0, 1).weight <= 2.0 + 1e-12

    def test_closer_pairs_learn_more(self):
        config = StdpConfig(a_plus=0.2, a_minus=0.0, tau=2.0)
        # delay 1 -> tight pairing; delay 3 -> looser pairing.
        _, tight = run_stdp(pair(delay=1), 10, config, input_spikes={0: [0]})
        _, loose = run_stdp(pair(delay=3), 10, config, input_spikes={0: [0]})
        assert tight.synapse(0, 1).weight > loose.synapse(0, 1).weight


class TestRunSemantics:
    def test_original_network_untouched(self):
        net = pair()
        run_stdp(net, 6, StdpConfig(), input_spikes={0: [0]})
        assert net.synapse(0, 1).weight == 1.0

    def test_matches_simulator_when_learning_off(self):
        from repro.snn.generators import random_network

        net = random_network(12, 24, seed=14)
        spikes = {net.neuron_ids()[0]: [0, 2, 5], net.neuron_ids()[1]: [1]}
        frozen = StdpConfig(a_plus=0.0, a_minus=0.0)
        stdp_result, adapted = run_stdp(net, 16, frozen, input_spikes=spikes)
        plain = Simulator(net).run(16, input_spikes=spikes)
        assert stdp_result.spikes == plain.spikes
        assert weight_drift(net, adapted) == {}

    def test_silent_network_no_drift(self):
        net = pair()
        _, adapted = run_stdp(net, 10, StdpConfig())
        assert weight_drift(net, adapted) == {}

    def test_duration_validated(self):
        with pytest.raises(ValueError):
            run_stdp(pair(), -1, StdpConfig())

    def test_weight_drift_reports_changes(self):
        net = pair()
        _, adapted = run_stdp(
            net, 8, StdpConfig(a_plus=0.2, a_minus=0.0), input_spikes={0: [0]}
        )
        drift = weight_drift(net, adapted)
        assert (0, 1) in drift
        assert drift[(0, 1)] > 0
