"""Backend correctness: HiGHS and branch-and-bound agree and behave."""

import pytest

from repro.ilp.bnb_backend import BnBBackend, BnBOptions
from repro.ilp.expr import lin_sum
from repro.ilp.highs_backend import HighsBackend, HighsOptions, solve_with_trace
from repro.ilp.model import Model
from repro.ilp.result import SolveStatus

BACKENDS = [HighsBackend, BnBBackend]


def knapsack_model():
    m = Model("knapsack")
    weights = [3, 4, 5, 8, 9, 2, 7]
    values = [4, 5, 6, 10, 12, 1, 9]
    xs = [m.add_binary(f"x{i}") for i in range(len(weights))]
    m.add(lin_sum(w * x for w, x in zip(weights, xs)) <= 15)
    m.maximize(lin_sum(v * x for v, x in zip(values, xs)))
    return m


def set_cover_model():
    # Universe {0..4}, sets with costs; optimum cost 5 ({0,1,2} + {3,4}).
    m = Model("cover")
    sets = {"a": ([0, 1, 2], 3), "b": ([1, 3], 4), "c": ([3, 4], 2), "d": ([0, 4], 4)}
    xs = {name: m.add_binary(name) for name in sets}
    for element in range(5):
        covering = [xs[n] for n, (members, _) in sets.items() if element in members]
        m.add(lin_sum(covering) >= 1)
    m.minimize(lin_sum(cost * xs[n] for n, (_, cost) in sets.items()))
    return m


def infeasible_model():
    m = Model("infeasible")
    x = m.add_binary("x")
    m.add(x >= 0.4)
    m.add(x <= 0.6)  # no integer point
    m.minimize(x)
    return m


@pytest.mark.parametrize("backend_cls", BACKENDS)
class TestBothBackends:
    def test_knapsack_optimum(self, backend_cls):
        res = backend_cls().solve(knapsack_model())
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(19.0)

    def test_set_cover_optimum(self, backend_cls):
        res = backend_cls().solve(set_cover_model())
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(5.0)

    def test_solution_is_feasible(self, backend_cls):
        model = knapsack_model()
        res = backend_cls().solve(model)
        assert model.check_feasible(res.values) == []

    def test_infeasible_detected(self, backend_cls):
        res = backend_cls().solve(infeasible_model())
        assert res.status is SolveStatus.INFEASIBLE
        assert res.objective is None

    def test_warm_start_accepted(self, backend_cls):
        model = set_cover_model()
        warm = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}  # cost 13, feasible
        res = backend_cls().solve(model, warm_start=warm)
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(5.0)

    def test_infeasible_warm_start_rejected(self, backend_cls):
        model = set_cover_model()
        with pytest.raises(ValueError, match="warm start infeasible"):
            backend_cls().solve(model, warm_start={"a": 1.0})

    def test_equality_constraints(self, backend_cls):
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add(x + y == 7)
        m.minimize(2 * x + y)
        res = backend_cls().solve(m)
        assert res.objective == pytest.approx(7.0)  # x=0, y=7

    def test_continuous_mix(self, backend_cls):
        m = Model()
        x = m.add_binary("x")
        z = m.add_continuous("z", 0.0, 2.5)
        m.add(z <= 2 * x)
        m.maximize(z - 0.1 * x)
        res = backend_cls().solve(m)
        assert res.status is SolveStatus.OPTIMAL
        # x=1 allows z=2 (the constraint, not the 2.5 bound, binds).
        assert res.objective == pytest.approx(1.9)

    def test_det_time_positive(self, backend_cls):
        res = backend_cls().solve(knapsack_model())
        assert res.det_time > 0

    def test_keep_values_false(self, backend_cls):
        res = backend_cls().solve(knapsack_model(), keep_values=False)
        assert res.values is None
        assert res.objective == pytest.approx(19.0)


class TestBnBSpecifics:
    def test_incumbent_stream_monotone(self):
        res = BnBBackend().solve(set_cover_model(), warm_start={"a": 1, "b": 1, "c": 1, "d": 1})
        objectives = [inc.objective for inc in res.incumbents]
        assert objectives, "warm start must appear as the first incumbent"
        assert objectives == sorted(objectives, reverse=True)
        assert objectives[-1] == pytest.approx(5.0)

    def test_incumbent_det_times_nondecreasing(self):
        res = BnBBackend().solve(knapsack_model())
        times = [inc.det_time for inc in res.incumbents]
        assert times == sorted(times)

    def test_node_limit_respected(self):
        res = BnBBackend(BnBOptions(max_nodes=1)).solve(knapsack_model())
        assert res.node_count <= 1
        # A limit-hit without proof may still return a heuristic solution.
        assert res.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.NO_SOLUTION,
        )

    def test_bound_is_valid(self):
        res = BnBBackend().solve(set_cover_model())
        assert res.bound is not None
        assert res.bound <= res.objective + 1e-6


class TestHighsSpecifics:
    def test_cutoff_from_warm_start_keeps_solution(self):
        # Even with a tiny node budget, the warm start guarantees a result.
        model = set_cover_model()
        warm = {"a": 1.0, "c": 1.0}  # cost 5 = optimal
        backend = HighsBackend(HighsOptions(node_limit=1))
        res = backend.solve(model, warm_start=warm)
        assert res.status.has_solution()
        assert res.objective == pytest.approx(5.0)

    def test_trace_returns_incumbents(self):
        res = solve_with_trace(set_cover_model(), total_time=2.0, num_slices=3)
        assert res.status.has_solution()
        assert res.incumbents
        objs = [inc.objective for inc in res.incumbents]
        assert objs == sorted(objs, reverse=True)
        assert objs[-1] == pytest.approx(5.0)

    def test_trace_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            solve_with_trace(set_cover_model(), total_time=0.0)

    def test_unbounded_detected(self):
        m = Model()
        x = m.add_continuous("x", 0.0)
        m.maximize(x)
        res = HighsBackend().solve(m)
        assert res.status in (SolveStatus.UNBOUNDED, SolveStatus.NO_SOLUTION)
