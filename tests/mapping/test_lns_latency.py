"""Tests for the LNS optimizer and the latency analysis."""

import pytest

from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.latency import (
    annotate_latency,
    critical_path_latency,
    effective_delays,
    latency_report,
)
from repro.mapping.lns import LnsOptions, lns_area
from repro.mapping.problem import MappingProblem
from repro.mapping.solution import Mapping
from repro.mca.architecture import (
    custom_architecture,
    heterogeneous_architecture,
)
from repro.mca.crossbar import CrossbarType
from repro.mca.noc import MeshNoC
from repro.snn.generators import random_network
from repro.snn.network import Network
from repro.snn.simulator import Simulator


@pytest.fixture
def problem():
    net = random_network(20, 40, seed=27, max_fan_in=6)
    arch = heterogeneous_architecture(
        20,
        types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8)],
        max_slots_per_type=8,
    )
    return MappingProblem(net, arch)


class TestLns:
    def test_options_validated(self):
        with pytest.raises(ValueError):
            LnsOptions(rounds=0)
        with pytest.raises(ValueError):
            LnsOptions(destroy_fraction=0.0)
        with pytest.raises(ValueError):
            LnsOptions(repair_time_limit=0.0)

    def test_never_worse_than_initial(self, problem):
        initial = greedy_first_fit(problem)
        result = lns_area(
            problem, initial, LnsOptions(rounds=4, repair_time_limit=2.0)
        )
        assert result.mapping.is_valid()
        assert result.mapping.area() <= initial.area() + 1e-9

    def test_history_monotone(self, problem):
        result = lns_area(problem, options=LnsOptions(rounds=5, repair_time_limit=1.5))
        areas = [a for _, a in result.history]
        assert areas == sorted(areas, reverse=True)
        assert len(result.history) == 6  # initial + 5 rounds

    def test_usually_improves_greedy(self, problem):
        initial = greedy_first_fit(problem)
        result = lns_area(
            problem, initial,
            LnsOptions(rounds=6, destroy_fraction=0.4, repair_time_limit=2.0),
        )
        assert result.mapping.area() < initial.area()
        assert result.repairs_improved >= 1

    def test_respects_exact_lower_bound(self, problem):
        handle = AreaModel(problem)
        exact = HighsBackend(HighsOptions(time_limit=20)).solve(
            handle.model,
            warm_start=handle.warm_start_from(greedy_first_fit(problem)),
        )
        result = lns_area(problem, options=LnsOptions(rounds=4, repair_time_limit=1.5))
        assert result.mapping.area() >= exact.objective - 1e-9

    def test_full_destroy_equals_global_solve(self, problem):
        """destroy_fraction=1 frees everything: one repair = global ILP."""
        result = lns_area(
            problem,
            options=LnsOptions(rounds=1, destroy_fraction=1.0, repair_time_limit=15.0),
        )
        handle = AreaModel(problem)
        exact = HighsBackend(HighsOptions(time_limit=15)).solve(
            handle.model,
            warm_start=handle.warm_start_from(greedy_first_fit(problem)),
        )
        assert result.mapping.area() == pytest.approx(exact.objective)


def chain_problem():
    """0 -> 1 -> 2 -> 3 chain over two 2-output crossbars (forced split)."""
    net = Network("chain")
    for i in range(4):
        net.add_neuron(i, is_input=(i == 0))
    for i in range(3):
        net.add_synapse(i, i + 1, delay=1)
    arch = custom_architecture([(CrossbarType(4, 2), 2)])
    return MappingProblem(net, arch)


class TestLatency:
    def test_local_synapses_unchanged(self):
        problem = chain_problem()
        mapping = Mapping(problem, {0: 0, 1: 0, 2: 1, 3: 1})
        delays = effective_delays(mapping, cycles_per_hop=3)
        assert delays[(0, 1)] == 1  # same crossbar
        assert delays[(2, 3)] == 1
        assert delays[(1, 2)] == 1 + 3  # one hop on a 2-tile mesh

    def test_cycles_per_hop_zero_is_logical(self):
        problem = chain_problem()
        mapping = Mapping(problem, {0: 0, 1: 0, 2: 1, 3: 1})
        delays = effective_delays(mapping, cycles_per_hop=0)
        assert all(d == 1 for d in delays.values())

    def test_negative_cycles_rejected(self):
        problem = chain_problem()
        mapping = Mapping(problem, {0: 0, 1: 0, 2: 1, 3: 1})
        with pytest.raises(ValueError):
            effective_delays(mapping, cycles_per_hop=-1)

    def test_critical_path_chain(self):
        problem = chain_problem()
        mapping = Mapping(problem, {0: 0, 1: 0, 2: 1, 3: 1})
        # Path: 1 + (1+2) + 1 with cycles_per_hop=2.
        assert critical_path_latency(mapping, cycles_per_hop=2) == 5

    def test_annotated_network_runs_slower(self):
        problem = chain_problem()
        mapping = Mapping(problem, {0: 0, 1: 1, 2: 0, 3: 1})  # ping-pong
        timed = annotate_latency(mapping, cycles_per_hop=2)
        fast = Simulator(problem.network).run(16, input_spikes={0: [0]})
        slow = Simulator(timed).run(16, input_spikes={0: [0]})
        assert max(t for t, _ in slow.spikes) > max(t for t, _ in fast.spikes)
        # Same spikes, later times.
        assert slow.total_spikes == fast.total_spikes

    def test_latency_report(self):
        problem = chain_problem()
        split = Mapping(problem, {0: 0, 1: 1, 2: 0, 3: 1})
        together_ish = Mapping(problem, {0: 0, 1: 0, 2: 1, 3: 1})
        bad = latency_report(split, cycles_per_hop=2)
        good = latency_report(together_ish, cycles_per_hop=2)
        assert bad.mapped_critical_path > good.mapped_critical_path
        assert bad.slowdown >= good.slowdown >= 1.0
        assert bad.worst_synapse_transit >= 2

    def test_recurrent_loops_contract(self):
        net = Network()
        for i in range(3):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(1, 0)  # loop
        net.add_synapse(1, 2)
        arch = custom_architecture([(CrossbarType(4, 4), 1)])
        problem = MappingProblem(net, arch)
        mapping = Mapping(problem, {0: 0, 1: 0, 2: 0})
        assert critical_path_latency(mapping) == 1  # loop -> 2 only
