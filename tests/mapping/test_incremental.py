"""Tests for incremental remapping after network edits."""

import pytest

from repro.mapping.greedy import greedy_first_fit
from repro.mapping.incremental import RemapOptions, remap_incremental
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@pytest.fixture
def base():
    net = random_network(16, 32, seed=40, max_fan_in=6)
    arch = heterogeneous_architecture(
        24,  # headroom for growth edits
        types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8)],
        max_slots_per_type=10,
    )
    problem = MappingProblem(net, arch)
    return net, greedy_first_fit(problem)


class TestOptions:
    def test_polish_time_validated(self):
        with pytest.raises(ValueError):
            RemapOptions(polish_time_limit=0.0)


class TestEdits:
    def test_identity_edit_keeps_everything(self, base):
        net, mapping = base
        result = remap_incremental(mapping, net.copy(), RemapOptions(polish=False))
        assert result.mapping.is_valid()
        assert result.newly_placed == 0
        assert result.carried_over == net.num_neurons

    def test_add_synapse(self, base):
        net, mapping = base
        edited = net.copy()
        # Find a missing pair with room under the fan-in cap.
        for pre in edited.neuron_ids():
            for post in edited.neuron_ids():
                if pre != post and not edited.has_synapse(pre, post) and edited.fan_in(post) < 6:
                    edited.add_synapse(pre, post, weight=0.5)
                    break
            else:
                continue
            break
        result = remap_incremental(mapping, edited)
        assert result.mapping.is_valid()
        assert result.mapping.problem.network is edited

    def test_add_neuron_with_edges(self, base):
        net, mapping = base
        edited = net.copy()
        new = edited.add_neuron(16)
        edited.add_synapse(0, new.id, weight=0.7)
        edited.add_synapse(new.id, 5, weight=0.4)
        result = remap_incremental(mapping, edited)
        assert result.mapping.is_valid()
        assert result.newly_placed == 1
        assert new.id in result.mapping.assignment

    def test_remove_neuron(self, base):
        net, mapping = base
        edited = net.copy()
        edited.remove_neuron(7)
        compact, _ = edited.compact()
        # Removing a neuron breaks id compactness; re-add as hole-free net.
        result = remap_incremental(mapping, compact, RemapOptions(polish=False))
        assert result.mapping.is_valid()
        assert result.mapping.problem.num_neurons == 15

    def test_most_placement_survives_small_edit(self, base):
        net, mapping = base
        edited = net.copy()
        new = edited.add_neuron()
        edited.add_synapse(1, new.id, weight=0.5)
        result = remap_incremental(mapping, edited, RemapOptions(polish=False))
        # At least 80% of old placements survive a one-neuron edit.
        assert result.carried_over >= int(0.8 * net.num_neurons)

    def test_polish_never_hurts_area(self, base):
        net, mapping = base
        edited = net.copy()
        new = edited.add_neuron()
        edited.add_synapse(2, new.id, weight=0.5)
        rough = remap_incremental(mapping, edited, RemapOptions(polish=False))
        polished = remap_incremental(
            mapping, edited, RemapOptions(polish=True, polish_time_limit=3.0)
        )
        assert polished.mapping.area() <= rough.mapping.area() + 1e-9

    def test_pool_exhaustion_raises(self):
        net = random_network(8, 16, seed=4, max_fan_in=4)
        from repro.mca.architecture import custom_architecture

        arch = custom_architecture([(CrossbarType(8, 8), 1)])
        problem = MappingProblem(net, arch)
        mapping = greedy_first_fit(problem)
        edited = net.copy()
        # Add neurons past the single slot's output capacity.
        fresh = edited.add_neuron()
        edited.add_synapse(0, fresh.id, weight=0.5)
        with pytest.raises(RuntimeError):
            remap_incremental(mapping, edited, RemapOptions(polish=False))
