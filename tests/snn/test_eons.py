"""Tests for the EONS-style evolutionary optimizer."""

import pytest

from repro.snn.eons import Eons, EonsConfig


def genome_is_valid(net, cfg: EonsConfig) -> list[str]:
    """Structural invariants every genome must satisfy."""
    problems = []
    if net.num_neurons > cfg.max_neurons:
        problems.append("too many neurons")
    for i in net.neuron_ids():
        if net.fan_in(i) > cfg.max_fan_in:
            problems.append(f"fan-in of {i} exceeds cap")
    for syn in net.synapses():
        if net.neuron(syn.post).is_input:
            problems.append("synapse into an input neuron")
        if net.neuron(syn.pre).is_output:
            problems.append("synapse out of an output neuron")
    inputs = [n for n in net.neurons() if n.is_input]
    outputs = [n for n in net.neurons() if n.is_output]
    if len(inputs) != cfg.num_inputs or len(outputs) != cfg.num_outputs:
        problems.append("IO neuron count changed")
    return problems


class TestConfigValidation:
    def test_population_minimum(self):
        with pytest.raises(ValueError):
            EonsConfig(population_size=1)

    def test_elites_below_population(self):
        with pytest.raises(ValueError):
            EonsConfig(population_size=4, elite_count=4)

    def test_io_required(self):
        with pytest.raises(ValueError):
            EonsConfig(num_inputs=0)


class TestGenomeGeneration:
    def test_random_genome_valid(self):
        cfg = EonsConfig(seed=3)
        eons = Eons(cfg)
        for _ in range(5):
            assert genome_is_valid(eons.random_genome(), cfg) == []

    def test_genome_has_requested_io(self):
        cfg = EonsConfig(num_inputs=5, num_outputs=3, seed=1)
        net = Eons(cfg).random_genome()
        assert len(net.input_ids()) == 5
        assert len(net.output_ids()) == 3


class TestOperators:
    def test_mutation_preserves_invariants(self):
        cfg = EonsConfig(seed=11)
        eons = Eons(cfg)
        genome = eons.random_genome()
        for _ in range(30):
            genome = eons.mutate(genome)
            assert genome_is_valid(genome, cfg) == []

    def test_mutation_copies(self):
        cfg = EonsConfig(seed=5)
        eons = Eons(cfg)
        genome = eons.random_genome()
        before = (genome.num_neurons, genome.num_synapses)
        eons.mutate(genome)
        assert (genome.num_neurons, genome.num_synapses) == before

    def test_crossover_preserves_invariants(self):
        cfg = EonsConfig(seed=7)
        eons = Eons(cfg)
        a, b = eons.random_genome(), eons.random_genome()
        child = eons.crossover(a, b)
        assert genome_is_valid(child, cfg) == []


class TestEvolve:
    def test_improves_simple_fitness(self):
        # Reward synapse count: evolution must climb this trivially.
        cfg = EonsConfig(population_size=10, seed=2)
        eons = Eons(cfg)
        first_gen = [eons.random_genome() for _ in range(10)]
        baseline = max(g.num_synapses for g in first_gen)
        result = Eons(cfg).evolve(lambda net: float(net.num_synapses), generations=8)
        assert result.best_fitness >= baseline
        assert len(result.history) == 8
        assert result.history == sorted(result.history) or max(
            result.history
        ) == result.history[-1] or result.best_fitness >= result.history[0]

    def test_best_network_is_compact(self):
        cfg = EonsConfig(population_size=6, seed=4)
        result = Eons(cfg).evolve(lambda net: -abs(net.num_neurons - 10), generations=3)
        assert result.best.is_compact()

    def test_generations_validated(self):
        with pytest.raises(ValueError):
            Eons(EonsConfig(seed=0)).evolve(lambda n: 0.0, generations=0)

    def test_deterministic_given_seed(self):
        cfg = EonsConfig(population_size=6, seed=13)
        r1 = Eons(cfg).evolve(lambda n: float(n.num_synapses), generations=3)
        r2 = Eons(cfg).evolve(lambda n: float(n.num_synapses), generations=3)
        assert r1.best_fitness == r2.best_fitness
        assert r1.history == r2.history
