"""Slot-permutation symmetry breaking for the mapping formulations.

Crossbars of the same :class:`~repro.mca.architecture.CrossbarType` are
interchangeable in every mapping formulation: the y/x/s/b variable blocks
of :class:`~repro.mapping.axon_sharing._SlotFormulation` carry identical
objective coefficients, capacities and areas for every slot of a type, so
permuting two same-type slots maps any feasible solution onto another
feasible solution with the same objective.  An ILP solver unaware of this
re-proves the same subtree once per permutation — a factor of
``prod(|orbit|!)`` of wasted search.

This module enumerates those *orbits* straight from the model's slot list
and emits symmetry-breaking constraint blocks via the columnar
:meth:`~repro.ilp.model.Model.add_block` API at three strength levels:

- ``"off"`` — no rows;
- ``"order"`` — ``y[a] >= y[b]`` for adjacent orbit positions: enabled
  slots must form a prefix of their orbit (the historical area-model
  behavior);
- ``"lex"`` — the ``order`` rows plus per-neuron *column precedence*
  rows ``x[i, b] <= sum_{i' < i} x[i', a]``: slot ``b`` may host neuron
  ``i`` only if the preceding orbit slot ``a`` hosts some smaller-indexed
  neuron.  Equivalently, used slots must occupy the orbit prefix ordered
  by their minimum member neuron — a full lexicographic canonical form.

**Invariant: symmetry constraints preserve the optimal objective, not the
optimal solution's identity.**  Every feasible mapping has an equivalent
canonical representative (:func:`canonicalize`) with the same area,
routes and packets that satisfies the rows, so the optimum over the
constrained model equals the unconstrained optimum; which of the
symmetric optima the solver returns does change.  Warm starts must be
canonicalized to the model's level before seeding, or the backends will
reject them as infeasible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ilp.model import Model, Sense
from .solution import Mapping

#: Accepted ``symmetry=`` levels, weakest first.
SYMMETRY_LEVELS = ("off", "order", "lex")


def check_level(level: str) -> str:
    """Validate a symmetry level string (returns it for chaining)."""
    if level not in SYMMETRY_LEVELS:
        raise ValueError(
            f"unknown symmetry level {level!r}; choose from {SYMMETRY_LEVELS}"
        )
    return level


def slot_orbits(architecture, slots: Sequence[int]) -> list[list[int]]:
    """Orbits of interchangeable slots as *positions* into ``slots``.

    Slots sharing a :class:`~repro.mca.architecture.CrossbarType` are
    interchangeable regardless of which subset of the architecture the
    model ranges over (the area model uses every slot, the route models a
    frozen allowed set).  Orbits of size one break nothing and are
    dropped.  Positions within an orbit keep the model's slot order, so
    the emitted rows always prefer lower-indexed slots.
    """
    groups: dict[object, list[int]] = {}
    for pos, j in enumerate(slots):
        groups.setdefault(architecture.slot(j).ctype, []).append(pos)
    return [group for group in groups.values() if len(group) >= 2]


def emit_symmetry(
    model: Model,
    orbits: list[list[int]],
    num_neurons: int,
    x_base: int,
    num_model_slots: int,
    level: str,
) -> int:
    """Emit the symmetry rows for ``level`` as columnar blocks.

    ``x_base``/``num_model_slots`` locate the row-major x block (the y
    block occupies columns ``0..m-1`` by layout convention).  Returns the
    number of rows added so callers can log/assert the cut size.
    """
    check_level(level)
    if level == "off" or not orbits:
        return 0
    pairs = [(a, b) for orbit in orbits for a, b in zip(orbit, orbit[1:])]
    if not pairs:
        return 0
    pair_arr = np.asarray(pairs, dtype=np.int64)
    npairs = pair_arr.shape[0]
    rows = np.arange(npairs, dtype=np.int64)
    # y[a] - y[b] >= 0: enabled slots form a prefix of each orbit.
    model.add_block(
        rows=np.concatenate([rows, rows]),
        cols=np.concatenate([pair_arr[:, 0], pair_arr[:, 1]]),
        coefs=np.concatenate([np.ones(npairs), -np.ones(npairs)]),
        sense=Sense.GE,
        rhs=0.0,
        num_rows=npairs,
        name=[f"sym_{a}_{b}" for a, b in pairs],
    )
    emitted = npairs
    if level != "lex" or num_neurons == 0:
        return emitted

    # Column precedence per adjacent pair (a, b): for every neuron i,
    #   x[i, b] - sum_{i' < i} x[i', a] <= 0.
    # Neuron 0's row degenerates to x[0, b] <= 0 — the smallest-indexed
    # neuron can never sit on a later orbit slot.  One block per pair keeps
    # the triplet buffers columnar (rows of growing support concatenated).
    n, m = num_neurons, num_model_slots
    for a, b in pairs:
        rows_l: list[np.ndarray] = []
        cols_l: list[np.ndarray] = []
        coefs_l: list[np.ndarray] = []
        for i in range(n):
            rows_l.append(np.full(1 + i, i, dtype=np.int64))
            cols_l.append(
                np.concatenate(
                    [
                        np.asarray([x_base + i * m + b], dtype=np.int64),
                        x_base + np.arange(i, dtype=np.int64) * m + a,
                    ]
                )
            )
            coefs_l.append(np.concatenate([[1.0], -np.ones(i)]))
        model.add_block(
            rows=np.concatenate(rows_l),
            cols=np.concatenate(cols_l),
            coefs=np.concatenate(coefs_l),
            sense=Sense.LE,
            rhs=0.0,
            num_rows=n,
            name=f"lex_{a}_{b}",
        )
        emitted += n
    return emitted


def canonicalize(mapping: Mapping, level: str, slots: Sequence[int] | None = None) -> Mapping:
    """The symmetric representative of ``mapping`` that satisfies ``level``.

    - ``"off"`` returns the mapping unchanged.
    - ``"order"`` compacts used slots to the lowest indices of their orbit
      (the classic :func:`~repro.mapping.axon_sharing.canonicalize_mapping`).
    - ``"lex"`` additionally orders the compacted slots by their minimum
      member neuron, which is exactly the form the column-precedence rows
      accept (min members strictly increase along each orbit prefix).

    ``slots`` restricts orbit enumeration to a model's allowed-slot subset
    (route models); ``None`` means the full architecture.  Relocation
    stays within orbits, so capacities, area, routes and packets are all
    preserved — the result is equivalent, merely relabeled.
    """
    check_level(level)
    if level == "off":
        return mapping
    arch = mapping.problem.architecture
    universe = list(slots) if slots is not None else list(range(mapping.problem.num_slots))
    groups: dict[object, list[int]] = {}
    for j in universe:
        groups.setdefault(arch.slot(j).ctype, []).append(j)

    enabled = set(mapping.enabled_slots())
    relocation: dict[int, int] = {}
    for group in groups.values():
        used = [j for j in group if j in enabled]
        if level == "lex":
            min_member = {j: min(mapping.neurons_on(j)) for j in used}
            used.sort(key=lambda j: min_member[j])
        for new_j, old_j in zip(group, used):
            relocation[old_j] = new_j
    assignment = {i: relocation.get(j, j) for i, j in mapping.assignment.items()}
    return Mapping(mapping.problem, assignment)
