"""Tests for the top-level public API surface."""

import pytest

import repro
from repro.snn import random_network


class TestQuickMap:
    def test_heterogeneous_default(self):
        network = random_network(20, 40, seed=3, max_fan_in=6)
        mapping = repro.quick_map(network, time_limit=5.0)
        assert mapping.is_valid()
        assert mapping.problem.network is network

    def test_seed_controls_the_warm_start_reproducibly(self):
        network = random_network(20, 40, seed=3, max_fan_in=6)
        first = repro.quick_map(network, heterogeneous=False, time_limit=5.0, seed=11)
        again = repro.quick_map(network, heterogeneous=False, time_limit=5.0, seed=11)
        assert first.is_valid()
        assert first.assignment == again.assignment

    def test_bnb_backend_choice(self):
        network = random_network(12, 24, seed=3, max_fan_in=4)
        mapping = repro.quick_map(
            network, heterogeneous=False, time_limit=5.0, backend="bnb"
        )
        assert mapping.is_valid()

    def test_portfolio_backend_choice(self):
        network = random_network(12, 24, seed=3, max_fan_in=4)
        mapping = repro.quick_map(
            network, heterogeneous=False, time_limit=5.0, backend="portfolio"
        )
        assert mapping.is_valid()

    def test_unknown_backend_rejected(self):
        network = random_network(12, 24, seed=3, max_fan_in=4)
        with pytest.raises(ValueError, match="unknown backend"):
            repro.quick_map(network, backend="gurobi")

    def test_homogeneous_variant(self):
        network = random_network(20, 40, seed=3, max_fan_in=6)
        mapping = repro.quick_map(network, heterogeneous=False, time_limit=5.0)
        assert mapping.is_valid()
        types = mapping.problem.architecture.types()
        assert len(types) == 1
        assert types[0].label == "16x16"

    def test_heterogeneous_beats_homogeneous_area(self):
        network = random_network(24, 48, seed=8, max_fan_in=6)
        het = repro.quick_map(network, time_limit=8.0)
        homo = repro.quick_map(network, heterogeneous=False, time_limit=8.0)
        assert het.area() < homo.area()


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_batch_surface_is_exported(self):
        """The batch engine is first-class public API."""
        for name in ("BatchJob", "BatchMapper", "BatchResult", "JobRecord",
                     "ResultCache", "SolverSpec"):
            assert name in repro.__all__, name
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        ["ilp", "snn", "mca", "mapping", "profile", "experiments", "batch"],
    )
    def test_subpackage_all_resolves(self, module):
        import importlib

        pkg = importlib.import_module(f"repro.{module}")
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"repro.{module}.{name}"
