"""The long-lived mapping daemon: worker loop + HTTP front end.

A :class:`MappingService` owns exactly one :class:`~repro.dse.explorer.
Explorer` — and through it one shared :class:`~repro.batch.engine.
BatchMapper`, one :class:`~repro.batch.cache.ResultCache` and one
:class:`~repro.dse.store.RunStore` — so every client submission warms
the same state: a job solved for one client is a zero-solve answer for
every later client that asks the same question.

Submissions flow ``HTTP -> JobRegistry -> JobQueue -> worker thread(s)
-> Explorer``; progress flows back as registry events that ``GET
/jobs/<id>/stream`` serves as NDJSON.  Endpoints:

==========================  =============================================
``POST /jobs``              submit (wire format, see :mod:`.wire`) -> 202
``GET /jobs``               job summaries, submission order
``GET /jobs/<id>``          full status, per-scenario results, event log
``GET /jobs/<id>/stream``   NDJSON event stream until the job finishes
``GET /jobs/<id>/trace``    merged span records + live solver progress
``POST /jobs/<id>/cancel``  flag cancellation (queued: immediate)
``GET /healthz``            liveness + shared cache/store statistics
``GET /metrics``            lock-consistent counters/gauges/percentiles
``POST /shutdown``          stop accepting, stop serving, exit cleanly
==========================  =============================================

Multi-tenant operation: every submission is attributed to the
``X-Repro-Client`` header (default ``anonymous``) and passes per-client
admission control — token-bucket rate plus max-in-flight quota — before
the registry ever sees it; a quota rejection is a 429 with a per-client
``Retry-After``.  Jobs carry a priority lane (``high``/``normal``/
``batch``, aged so low-priority work never starves) and an optional
end-to-end ``deadline_ms`` enforced at claim time and as a cap on the
solver budget; under sustained overload the lowest-effective-priority
queued jobs are shed (terminal ``shed``, resubmittable spec in the
event) instead of the service collapsing for everyone.

The server is stdlib :class:`http.server.ThreadingHTTPServer` — no new
dependencies; one handler thread per connection, solver work stays on
the service's worker threads.  The front end is hardened against rude
clients: request bodies are capped (413 beyond ``max_body_bytes``) and
every connection carries a socket timeout, so a client that connects
and never sends cannot pin a handler thread forever.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import queue as queue_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from dataclasses import replace as dataclass_replace

from .. import trace
from ..batch.queue import (
    DEFAULT_AGING_INTERVAL,
    JobQueue,
    QueueFull,
    effective_priority,
)
from ..dse.explorer import Explorer
from ..dse.store import TIER_GREEDY
from .admission import AdmissionController, AdmissionDenied
from .jobs import (
    JOB_CANCELLED,
    JOB_DEADLINE,
    JOB_DONE,
    JOB_ERROR,
    JOB_SHED,
    JobRegistry,
    ServiceJob,
)
from .ledger import LEASE_DEAD_LETTER, LEASE_PENDING, JobLedger
from .metrics import JsonlWriter, LoopLatencyProbe, ServiceMetrics
from .wire import (
    TERMINAL_STATUSES,
    WIRE_FORMAT,
    JobSpec,
    WireError,
    parse_job,
    result_payload,
)
from .worker import FleetConfig, capped_time_limit, worker_main

#: Seconds of stream silence before a ``ping`` keepalive event is sent.
STREAM_HEARTBEAT = 10.0

#: Default request-body cap; a scenario batch is a few KiB, so 1 MiB is
#: already generous headroom rather than a limit anyone should hit.
MAX_BODY_BYTES = 1 << 20

#: Default per-socket-operation timeout for handler connections.
HANDLER_TIMEOUT = 30.0


class PayloadTooLarge(ValueError):
    """A request body beyond the server's cap (maps to HTTP 413)."""


class MappingService:
    """Worker loop over one shared explorer, fed by a job queue.

    ``journal_path`` makes the job registry persistent: every state
    transition is appended (write-behind) to a JSONL journal that the
    next daemon pointed at the same path replays, so ``GET /jobs/<id>``
    survives a restart.  ``job_log_path`` opts into structured per-job
    logging: the same records (one JSON line per state transition and
    per scenario result), but to an operator-owned log file.
    """

    def __init__(
        self,
        explorer: Explorer | None = None,
        workers: int = 1,
        max_finished_jobs: int = 512,
        journal_path: str | Path | None = None,
        job_log_path: str | Path | None = None,
        fleet: int = 0,
        ledger_path: str | Path | None = None,
        max_queue_depth: int | None = None,
        fleet_config: FleetConfig | None = None,
        admission: AdmissionController | None = None,
        shed_after: float | None = None,
        aging_interval: float = DEFAULT_AGING_INTERVAL,
        trace_dir: str | Path | None = None,
        trace_slow_span: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if fleet < 0:
            raise ValueError("fleet must be >= 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if shed_after is not None and shed_after <= 0:
            raise ValueError("shed_after must be > 0 (or None to disable)")
        # The default service still shares results across clients inside
        # one process: explorer evaluations land in its (memory) RunStore.
        self.explorer = explorer if explorer is not None else Explorer()
        self.metrics = ServiceMetrics()
        self.fleet = fleet
        self.max_queue_depth = max_queue_depth
        self.shed_after = shed_after
        self.aging_interval = aging_interval
        # The controller always exists: with no limits configured it is
        # still the per-client accounting that /metrics reports.
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.fleet_config = fleet_config if fleet_config is not None else FleetConfig()
        # Tracing: one runtime for this process, its journal named after
        # the pid so restarts never contend over a file; fleet workers
        # inherit the directory through their config.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.trace_runtime: trace.TraceRuntime | None = None
        if self.trace_dir is not None:
            self.trace_runtime = trace.install(
                trace.TraceRuntime(
                    self.trace_dir,
                    f"daemon-{os.getpid()}",
                    slow_span_threshold=trace_slow_span,
                )
            )
            # Classic mode solves in-process: live solver progress flows
            # straight into the gap gauge (fleet mode arrives the same
            # place via worker heartbeats instead).
            self.trace_runtime.on_progress = self.metrics.set_solver_progress
            if self.fleet_config.trace_dir is None:
                self.fleet_config = dataclass_replace(
                    self.fleet_config,
                    trace_dir=str(self.trace_dir),
                    trace_slow_span=trace_slow_span,
                )
        self._journal = (
            JsonlWriter(journal_path) if journal_path is not None else None
        )
        self._job_log = (
            JsonlWriter(job_log_path) if job_log_path is not None else None
        )
        observers = [self.metrics.job_event, self._admission_release]
        if self._job_log is not None:
            observers.append(self._job_log.append)
        self.registry = JobRegistry(
            max_finished=max_finished_jobs,
            journal=self._journal,
            observers=tuple(observers),
            # Fleet mode replays unfinished jobs as re-runnable (the
            # ledger still owes them work); single-process mode's queue
            # died with the old process, so they replay as errors.
            fail_unfinished=not fleet,
        )
        self.queue = JobQueue(
            maxsize=None if fleet else max_queue_depth,
            aging_interval=aging_interval,
        )
        self.workers = workers
        # The shared engine reports solve progress into the same sink.
        self.explorer.mapper.metrics = self.metrics
        self._probe = LoopLatencyProbe(self.metrics)
        self._threads: list[threading.Thread] = []
        self._shed_stop = threading.Event()
        self._started = False
        self.ledger: JobLedger | None = None
        self.supervisor: Supervisor | None = None
        if fleet:
            self.ledger = JobLedger(
                ledger_path,
                max_attempts=self.fleet_config.max_attempts,
                lease_ttl=self.fleet_config.lease_ttl,
                backoff_base=self.fleet_config.backoff_base,
                backoff_cap=self.fleet_config.backoff_cap,
                aging_interval=aging_interval,
            )
            self.supervisor = Supervisor(self, fleet, self.fleet_config, self.ledger)
        # Replayed-but-unfinished jobs were admitted by the previous
        # process; they still occupy their client's in-flight quota here.
        for job in self.registry.jobs():
            if not job.finished:
                self.admission.restore(job.spec.client)

    def _admission_release(self, record: dict) -> None:
        # Registry observer: every terminal transition frees one slot of
        # the submitter's in-flight quota.  The client id rides on the
        # journal record itself so this never re-enters the registry lock.
        if record.get("event") in TERMINAL_STATUSES:
            client = record.get("client")
            if isinstance(client, str) and client:
                self.admission.release(client)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the workers (threads or fleet) and the probe; idempotent."""
        if self._started:
            return
        self._started = True
        self._probe.start()
        if self.shed_after is not None:
            shedder = threading.Thread(
                target=self._shed_loop, name="repro-service-shedder", daemon=True
            )
            shedder.start()
        if self.supervisor is not None:
            self.supervisor.start()
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-service-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Drain the workers, flush the journals, release the fleet.

        Fleet mode drains: leased jobs get up to the configured
        ``drain_timeout`` to finish, the rest are re-queued (without
        charging their retry budget) for the next daemon on this ledger.
        """
        self.queue.close()
        self._probe.stop()
        self._shed_stop.set()
        if self.supervisor is not None:
            self.supervisor.stop(wait=wait)
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
        if self.ledger is not None:
            self.ledger.close()
        for writer in (self._journal, self._job_log):
            if writer is not None:
                writer.close()
        if self.trace_runtime is not None:
            self.trace_runtime.flush()

    # ------------------------------------------------------------------
    def _queue_depth(self) -> int:
        """Jobs owed work (fleet: ledger pending+leased; else the queue)."""
        if self.ledger is not None:
            return self.ledger.depth()
        return len(self.queue)

    def _retry_after_hint(self, depth: int) -> float:
        """Seconds a 429'd client should wait before resubmitting.

        The honest estimate — p50 job duration times the backlog per
        worker — clamped to something a client can reasonably sleep.
        """
        histogram = self.metrics.snapshot()["latency"].get("job_duration")
        p50 = histogram["p50"] if histogram and histogram["count"] else 0.0
        lanes = max(1, self.fleet or self.workers)
        hint = p50 * math.ceil(depth / lanes) if p50 > 0 else 5.0
        return max(1.0, min(120.0, hint))

    def submit(self, spec: JobSpec) -> ServiceJob:
        """Register and enqueue one parsed submission.

        Admission control runs first — *before* ``registry.create`` —
        so a per-client quota rejection is a clean 429 with its own
        ``Retry-After``, never a half-registered job.  Raises
        :class:`~repro.service.admission.AdmissionDenied` (a
        :class:`~repro.batch.queue.QueueFull`) on quota, or plain
        ``QueueFull`` when the bounded global depth is reached.
        """
        try:
            self.admission.admit(spec.client)
        except AdmissionDenied as exc:
            self.metrics.inc("admission_throttled")
            if exc.retry_after is None:
                # In-flight rejections clear when a job finishes; the
                # backlog-based hint is the honest estimate of when.
                exc.retry_after = self._retry_after_hint(self._queue_depth())
            raise
        if self.max_queue_depth is not None:
            depth = self._queue_depth()
            if depth >= self.max_queue_depth:
                self.admission.release(spec.client)
                self.metrics.inc("backpressure_rejections")
                raise QueueFull(
                    f"queue depth {depth} is at the limit "
                    f"({self.max_queue_depth}); retry later",
                    retry_after=self._retry_after_hint(depth),
                )
        if self.trace_runtime is not None and spec.trace is None:
            # No inbound context: the accept point mints the trace root.
            spec = dataclass_replace(spec, trace=trace.mint_context().encode())
        job = self.registry.create(spec)
        context = self._job_context(job)
        if context is not None:
            trace.event(
                "accepted",
                context,
                job=job.id,
                client=spec.client,
                priority=spec.priority,
                tier=spec.tier,
            )
        # From here the in-flight charge is released by the terminal-
        # event observer — every path below ends terminal eventually.
        if self.ledger is not None:
            self.ledger.enqueue(
                job.id,
                spec.payload(),
                priority=spec.priority,
                deadline_at=job.deadline_at,
            )
            return job
        try:
            self.queue.push(job, token=job.token, priority=spec.priority)
        except QueueFull as exc:  # a concurrent submit won the last slot
            self.metrics.inc("backpressure_rejections")
            self.registry.finish(job, JOB_ERROR, error="queue full")
            exc.retry_after = self._retry_after_hint(len(self.queue))
            raise
        except RuntimeError:  # shutdown raced the submission
            self.registry.finish(job, JOB_ERROR, error="service is shutting down")
        return job

    def cancel(self, job_id: str) -> ServiceJob | None:
        return self.registry.cancel(job_id)

    # -- tracing -------------------------------------------------------
    def _job_context(self, job: ServiceJob) -> "trace.TraceContext | None":
        """The job's trace context, or ``None`` (inactive/malformed)."""
        if self.trace_runtime is None or job.spec.trace is None:
            return None
        try:
            return trace.parse_context(job.spec.trace)
        except ValueError:
            return None

    def _finish_trace(self, job: ServiceJob) -> None:
        """Seal a job's trace: root span, gauge cleanup, journal flush.

        The root span reuses the context's *own* span id, so every hop
        recorded against the context (queue, lease, solve) parents to it
        and ``repro trace`` renders one tree per job.
        """
        runtime = self.trace_runtime
        context = self._job_context(job)
        if runtime is None or context is None:
            return
        end = job.finished_at or time.time()
        runtime.record_span(
            trace.Span(
                trace_id=context.trace_id,
                span_id=context.span_id,
                name="job",
                start=job.submitted_at,
                duration=max(0.0, end - job.submitted_at),
                process=runtime.process,
                attrs={"job": job.id, "status": job.status},
            )
        )
        runtime.clear_progress(job.id)
        self.metrics.clear_solver_progress(job.id)
        runtime.flush()

    def trace_payload(self, job_id: str) -> dict | None:
        """The ``GET /jobs/<id>/trace`` body (``None`` -> 404).

        Reads every journal in the trace directory — the supervisor's
        merged file *and* the live per-process ones — so spans of a job
        still running are visible before any merge happens.
        """
        job = self.registry.get(job_id)
        if job is None:
            return None
        records: list[dict] = []
        if self.trace_dir is not None and job.spec.trace is not None:
            if self.trace_runtime is not None:
                self.trace_runtime.flush()
            trace_id = job.spec.trace.partition(":")[0]
            records = trace.read_trace_dir(self.trace_dir, trace_id)
        return {
            "id": job.id,
            "status": job.status,
            "trace": job.spec.trace,
            "records": records,
            "progress": self.metrics.snapshot()["solver_progress"].get(job_id),
        }

    # -- overload shedding ---------------------------------------------
    def _shed_loop(self) -> None:
        while not self._shed_stop.wait(timeout=0.5):
            try:
                self.shed_overload()
            except Exception:  # shedding must never kill the daemon
                self.metrics.inc("shed_errors")

    def shed_overload(self, now: float | None = None) -> int:
        """Degrade gracefully under overload; returns jobs shed.

        When the oldest queued job has waited past ``shed_after``, the
        lowest-effective-priority half of the queued backlog (at least
        one job) is finished as :data:`~repro.service.jobs.JOB_SHED` —
        terminal, with the resubmittable wire spec embedded in the
        event — so fresh high-priority work keeps flowing instead of
        the whole service collapsing for everyone.  Runs on a
        maintenance thread; public and clock-injectable for tests.
        """
        if self.shed_after is None:
            return 0
        now = time.time() if now is None else now
        if self.ledger is not None:
            pending = self.ledger.pending_snapshot()
            if not pending:
                return 0
            if max(now - lease.enqueued_at for lease in pending) <= self.shed_after:
                return 0
            victims = sorted(
                pending,
                key=lambda lease: effective_priority(
                    lease.priority, now - lease.enqueued_at, self.aging_interval
                ),
                reverse=True,  # worst effective priority sheds first
            )[: max(1, len(pending) // 2)]
            shed = 0
            for lease in victims:
                self.ledger.finish(lease.id, JOB_SHED)
                job = self.registry.get(lease.id)
                if job is not None and not job.finished:
                    self.registry.finish(
                        job,
                        JOB_SHED,
                        error=(
                            "shed under overload after "
                            f"{now - lease.enqueued_at:.1f}s queued; resubmit"
                        ),
                        extra={"spec": lease.spec},
                    )
                shed += 1
            return shed
        entries = self.queue.snapshot_entries()
        if not entries:
            return 0
        queue_now = self.queue.now()  # entries carry the queue's clock
        if max(queue_now - row[3] for row in entries) <= self.shed_after:
            return 0
        victims = sorted(
            entries,
            key=lambda row: effective_priority(
                row[2], queue_now - row[3], self.aging_interval
            ),
            reverse=True,
        )[: max(1, len(entries) // 2)]
        shed = 0
        for job, token, _priority, enqueued_at in victims:
            if job.finished or token.cancelled:
                continue
            self.registry.finish(
                job,
                JOB_SHED,
                error=(
                    "shed under overload after "
                    f"{queue_now - enqueued_at:.1f}s queued; resubmit"
                ),
                extra={"spec": job.spec.payload()},
            )
            token.cancel()  # drops the entry from the queue
            shed += 1
        return shed

    def _lane_snapshot(self) -> dict:
        """Per-lane depth and oldest wait (queue or ledger, whichever runs)."""
        if self.ledger is not None:
            return self.ledger.lane_snapshot()
        return self.queue.lane_snapshot()

    def stats(self) -> dict:
        """The ``/healthz`` body: liveness plus shared-state counters."""
        cache = self.explorer.cache
        store = self.explorer.store
        body = {
            "status": "ok",
            "format": WIRE_FORMAT,
            "workers": self.fleet or self.workers,
            "queued": self._queue_depth(),
            "jobs": self.registry.counts(),
            "cache": cache.stats.snapshot() if cache is not None else None,
            "store_entries": len(store),
            "store_path": str(store.path) if store.path is not None else None,
            "admission": self.admission.snapshot(),
            "lanes": self._lane_snapshot(),
        }
        if self.max_queue_depth is not None:
            body["max_queue_depth"] = self.max_queue_depth
        if self.shed_after is not None:
            body["shed_after"] = self.shed_after
        if self.supervisor is not None and self.ledger is not None:
            body["fleet"] = self.supervisor.snapshot()
            body["ledger"] = self.ledger.counts()
        return body

    def metrics_payload(self) -> dict:
        """The ``GET /metrics`` body.

        Process-lifetime counters/gauges/histograms come from the
        :class:`ServiceMetrics` snapshot (one lock, so the scrape is
        self-consistent); live state — queue depth, per-state job
        counts, cache totals — is read from its owners under *their*
        locks at scrape time.  Within each section the invariants hold
        exactly: ``cache.hits + cache.misses == cache.lookups``, and
        ``counters.jobs_submitted`` covers every job this process
        accepted (replayed jobs belong to the old process and appear
        only in ``jobs.by_state``).
        """
        cache = self.explorer.cache
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        body = {
            "status": "ok",
            "uptime": snapshot["uptime"],
            "workers": self.fleet or self.workers,
            "queue_depth": self._queue_depth(),
            "backpressure_rejections": counters.get("backpressure_rejections", 0),
            "admission": self.admission.snapshot(),
            "admission_throttled": counters.get("admission_throttled", 0),
            "lanes": self._lane_snapshot(),
            "solves_in_flight": gauges.get("solves_in_flight", 0),
            "jobs": {
                "by_state": self.registry.counts(),
                "submitted": counters.get("jobs_submitted", 0),
                "started": counters.get("jobs_started", 0),
                "requeued": counters.get("jobs_requeued", 0),
                "finished": {
                    "total": counters.get("jobs_finished", 0),
                    "done": counters.get("jobs_done", 0),
                    "error": counters.get("jobs_error", 0),
                    "cancelled": counters.get("jobs_cancelled", 0),
                    "deadline": counters.get("jobs_deadline", 0),
                    "shed": counters.get("jobs_shed", 0),
                },
            },
            "scenarios": {
                "total": counters.get("scenarios_total", 0),
                "ok": counters.get("scenarios_ok", 0),
                "error": counters.get("scenarios_error", 0),
                "cached": counters.get("scenarios_cached", 0),
            },
            "solves": {
                "mapper_jobs": counters.get("mapper_jobs", 0),
                "mapper_jobs_ok": counters.get("mapper_jobs_ok", 0),
                "mapper_jobs_error": counters.get("mapper_jobs_error", 0),
                "mapper_jobs_interrupted": counters.get(
                    "mapper_jobs_interrupted", 0
                ),
                "ilp_solves": counters.get("ilp_solves", 0),
            },
            "portfolio": snapshot["portfolio"],
            "cache": cache.stats.snapshot() if cache is not None else None,
            "store_entries": len(self.explorer.store),
            "latency": snapshot["latency"],
            "solver_progress": snapshot["solver_progress"],
        }
        if self.trace_runtime is not None:
            body["trace"] = {
                "enabled": True,
                "dir": str(self.trace_dir),
                "slow_spans": self.trace_runtime.slow_spans,
                "slow_span_threshold": self.trace_runtime.slow_span_threshold,
            }
        if self.supervisor is not None and self.ledger is not None:
            body["fleet"] = self.supervisor.snapshot()
            body["ledger"] = self.ledger.counts()
        return body

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            popped = self.queue.pop(timeout=0.2)
            if popped is None:
                if self.queue.closed:
                    return
                continue
            job, _token = popped
            if self.queue.closed:
                # Shutdown: the backlog is cancelled, not executed — a
                # 202-accepted job must end terminal (with an event), not
                # vanish mid-solve when the process exits.
                job.token.cancel()
                self.registry.finish(job, JOB_CANCELLED)
                continue
            waited = time.time() - job.submitted_at
            self.metrics.observe("queue_wait", waited)
            self.metrics.observe(f"queue_wait_{job.spec.priority}", waited)
            started = time.monotonic()
            try:
                self._run_job(job)
            except Exception as exc:  # defensive: a bug must not kill the loop
                self.registry.finish(
                    job, JOB_ERROR, error=f"{type(exc).__name__}: {exc}"
                )
            finally:
                self.metrics.observe("job_duration", time.monotonic() - started)
                self._finish_trace(job)

    def _run_job(self, job: ServiceJob) -> None:
        if job.deadline_at is not None and job.deadline_at <= time.time():
            # Past its end-to-end deadline before it ever started: fail
            # fast — no "running" transition, no mapper invocation, no
            # solve burned on an answer the caller stopped wanting.
            self.registry.finish(
                job, JOB_DEADLINE, error="deadline exceeded before start"
            )
            return
        # start() refusing means a cancel won the race after the pop —
        # the job is already terminal and must not be resurrected.
        if job.token.cancelled or not self.registry.start(job):
            self.registry.finish(job, JOB_CANCELLED)
            return
        spec = job.spec
        scenarios = list(spec.scenarios)
        context = self._job_context(job)
        if context is not None:
            trace.record_span(
                "queue",
                context,
                start=job.submitted_at,
                duration=max(0.0, (job.started_at or time.time()) - job.submitted_at),
                job=job.id,
                priority=spec.priority,
            )
        with trace.activate(context, job.id):
            with trace.span("solve", job=job.id, tier=spec.tier):
                if spec.tier == TIER_GREEDY:
                    results = self.explorer.evaluate_greedy(scenarios)
                else:
                    # One batched call so a multi-scenario submission keeps
                    # the engine's process-pool parallelism and warm-start
                    # waves; the token is polled at solve boundaries inside
                    # the batch.  The remaining deadline (if any) caps the
                    # solver budget so a runaway solve cannot overshoot the
                    # end-to-end deadline.
                    results = self.explorer.evaluate_ilp(
                        scenarios,
                        time_limit=capped_time_limit(
                            spec.time_limit,
                            self.explorer.time_limit,
                            job.deadline_at,
                        ),
                        should_cancel=job.token,
                    )
        for result in results:
            self.registry.add_result(job, result_payload(result))
        if job.token.cancelled:
            self.registry.finish(job, JOB_CANCELLED)
            return
        failed = [r for r in job.results if r.get("status") != "ok"]
        if failed:
            self.registry.finish(
                job, JOB_ERROR, error=f"{len(failed)} scenario(s) failed"
            )
        else:
            self.registry.finish(job, JOB_DONE)


# ----------------------------------------------------------------------
class _WorkerHandle:
    """The supervisor's view of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.name = f"worker-{index}"
        self.process = None
        self.task_queue = None
        self.cancel_event = None
        self.pid: int | None = None
        self.ready = False
        self.job: str | None = None  # currently dispatched job id
        self.dispatched_at: float | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "pid": self.pid,
            "alive": self.alive,
            "ready": self.ready,
            "job": self.job,
            "restarts": self.restarts,
        }


class Supervisor:
    """Spawns, feeds and resurrects the fleet's worker processes.

    One background thread runs the whole control loop: drain worker
    messages, reap dead processes (respawning them), expire silent
    leases, propagate cancellations, dispatch claimable ledger jobs to
    idle workers.  Workers are spawned (never forked — the daemon
    carries journal/probe/handler threads) and own crash-safe state
    only, so ``kill -9`` on any of them costs one lease TTL, not data.

    Result-cache merging: each worker publishes finished payloads into
    its own ``worker-<i>`` shard of the cache directory; the supervisor
    copies new fingerprints into a ``merged`` shard after each result
    and primes new workers' shards from it, so a mapping solved by one
    worker is a disk hit for every later one.
    """

    #: Control-loop tick; also the message-drain poll timeout.
    POLL_INTERVAL = 0.05

    def __init__(
        self,
        service: MappingService,
        fleet: int,
        config: FleetConfig,
        ledger: JobLedger,
    ) -> None:
        if fleet < 1:
            raise ValueError("fleet must be >= 1")
        self.service = service
        self.config = config
        self.ledger = ledger
        self._ctx = multiprocessing.get_context("spawn")
        self._result_queue = self._ctx.Queue()
        self._handles = [_WorkerHandle(index) for index in range(fleet)]
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._draining = False
        self._thread: threading.Thread | None = None
        self._started = False
        #: Per-source byte offsets into worker span journals (merge state).
        self._trace_offsets: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------
    @property
    def merged_cache_dir(self) -> Path | None:
        if self.config.cache_dir is None:
            return None
        return Path(self.config.cache_dir) / "merged"

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._reconcile()
        for handle in self._handles:
            self._spawn(handle)
        self._thread = threading.Thread(
            target=self._loop, name="repro-fleet-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, wait: bool = True, timeout: float | None = None) -> None:
        """Drain, then shut the fleet down.

        Busy workers get up to ``drain_timeout`` to finish their leased
        job; whatever is still running is re-queued without charging its
        retry budget — the next daemon on this ledger re-runs it.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        with self._lock:
            self._draining = True
        if wait:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not any(handle.job for handle in self._handles):
                        break
                time.sleep(self.POLL_INTERVAL)
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        with self._lock:
            for handle in self._handles:
                if handle.job is not None:
                    # The drain timed out on this one: hand the job back.
                    self.ledger.requeue_for_restart(handle.job, "shutdown")
                    job = self.service.registry.get(handle.job)
                    if job is not None:
                        self.service.registry.requeue(job, "shutdown")
                    handle.job = None
                if handle.task_queue is not None:
                    try:
                        handle.task_queue.put(None)  # quit sentinel
                    except (OSError, ValueError):
                        pass
            for handle in self._handles:
                process = handle.process
                if process is None:
                    continue
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=2.0)
                self._merge_cache(handle.index)
            self._merge_trace()

    # -- startup reconcile ---------------------------------------------
    def _reconcile(self) -> None:
        """Make the ledger and the registry agree before dispatching.

        The two journals replay independently; after a crash either can
        know jobs the other lost.  Ledger-only jobs are adopted into the
        registry (so their ids answer over HTTP); registry-only queued
        jobs are enqueued into the ledger (so they actually run);
        registry-terminal jobs close their ledger record.
        """
        registry = self.service.registry
        for lease in self.ledger.jobs():
            if lease.terminal:
                continue
            job = registry.get(lease.id)
            if job is None:
                try:
                    registry.adopt(lease.id, parse_job(lease.spec))
                except WireError:
                    # Unreplayable spec (schema drift): close it out
                    # rather than dispatching garbage forever.
                    self.ledger.finish(lease.id, "dropped: unparseable spec")
            elif job.finished:
                self.ledger.finish(lease.id, job.status)
        for job in registry.jobs():
            if not job.finished and self.ledger.get(job.id) is None:
                self.ledger.enqueue(
                    job.id,
                    job.spec.payload(),
                    priority=job.spec.priority,
                    deadline_at=job.deadline_at,
                )

    # -- worker processes ----------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        # Fresh queue + event per incarnation: a SIGKILLed worker can
        # leave its old queue's pipe in an unusable state.
        handle.task_queue = self._ctx.Queue()
        handle.cancel_event = self._ctx.Event()
        handle.ready = False
        handle.job = None
        self._prime_cache(handle.index)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.index,
                self.config,
                handle.task_queue,
                self._result_queue,
                handle.cancel_event,
            ),
            name=f"repro-fleet-{handle.name}",
            daemon=True,
        )
        process.start()
        handle.process = process
        handle.pid = process.pid

    def _handle_named(self, worker: str | None) -> _WorkerHandle | None:
        for handle in self._handles:
            if handle.name == worker:
                return handle
        return None

    # -- control loop --------------------------------------------------
    def _loop(self) -> None:
        while not self._stop_event.is_set():
            self._drain_messages()
            with self._lock:
                self._reap_dead()
                self._expire_leases()
                self._sweep_deadlines()
                self._propagate_cancels()
                self._dispatch()
        self._drain_messages()  # a last sweep so results beat shutdown

    def _drain_messages(self) -> None:
        block = True
        while True:
            try:
                message = self._result_queue.get(
                    timeout=self.POLL_INTERVAL if block else 0.0
                )
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # queue torn down mid-shutdown
                return
            block = False
            try:
                self._handle_message(message)
            except Exception:
                # A corrupt message (a worker SIGKILLed mid-put) must
                # not kill the control loop; the lease machinery will
                # recover the job.
                self.service.metrics.inc("fleet_bad_messages")

    def _handle_message(self, message: dict) -> None:
        kind = message.get("type")
        worker = message.get("worker")
        job_id = message.get("job")
        with self._lock:
            handle = self._handle_named(worker)
            if kind == "ready":
                if handle is not None:
                    handle.ready = True
                    handle.pid = message.get("pid", handle.pid)
                return
            if kind == "heartbeat":
                self.ledger.heartbeat(job_id)
                progress = message.get("progress")
                if isinstance(progress, dict) and isinstance(job_id, str):
                    # The worker's live solver progress (incumbent/bound/
                    # gap) surfaces through the daemon's /metrics gauge.
                    self.service.metrics.set_solver_progress(job_id, progress)
                return
            if kind == "started":
                job = self.service.registry.get(job_id)
                if job is not None and not self.service.registry.start(job):
                    # A cancel won the race: tell the worker to bail at
                    # the next solve boundary.
                    if handle is not None and handle.cancel_event is not None:
                        handle.cancel_event.set()
                return
            if kind == "result":
                self._finish_job(
                    handle,
                    job_id,
                    message.get("results") or [],
                    bool(message.get("cancelled")),
                )
                return
            if kind == "failed":
                if handle is not None and handle.job == job_id:
                    self._observe_duration(handle)
                    handle.job = None
                self._attempt_failed(job_id, str(message.get("error")))
                return
            if kind == "deadline":
                # The deadline lapsed between claim and pickup: the
                # worker declined without touching its mapper.
                if handle is not None and handle.job == job_id:
                    self._observe_duration(handle)
                    handle.job = None
                self.ledger.finish(job_id, JOB_DEADLINE)
                job = self.service.registry.get(job_id)
                if job is not None and not job.finished:
                    self.service.registry.finish(
                        job, JOB_DEADLINE, error="deadline exceeded before solve"
                    )
                if job is not None:
                    self.service._finish_trace(job)
                return
            self.service.metrics.inc("fleet_bad_messages")

    def _observe_duration(self, handle: _WorkerHandle) -> None:
        if handle.dispatched_at is not None:
            self.service.metrics.observe(
                "job_duration", time.monotonic() - handle.dispatched_at
            )
            handle.dispatched_at = None

    def _finish_job(
        self,
        handle: _WorkerHandle | None,
        job_id: str,
        results: list[dict],
        worker_cancelled: bool,
    ) -> None:
        registry = self.service.registry
        lease_duration = None
        lease_worker = None
        if handle is not None and handle.job == job_id:
            if handle.dispatched_at is not None:
                lease_duration = time.monotonic() - handle.dispatched_at
                lease_worker = handle.name
            self._observe_duration(handle)
            handle.job = None
            self._merge_cache(handle.index)
            self._merge_trace()
        job = registry.get(job_id)
        if job is None:  # evicted mid-flight; the answer is in the store
            self.ledger.finish(job_id, JOB_DONE)
            return
        context = self.service._job_context(job)
        if context is not None and lease_duration is not None:
            # The lease span is reconstructed supervisor-side: dispatch to
            # result, the interval the worker held the job.
            trace.record_span(
                "lease",
                context,
                start=time.time() - lease_duration,
                duration=lease_duration,
                job=job_id,
                worker=lease_worker,
            )
        if job.finished:  # a cancel landed while the result was in transit
            self.ledger.finish(job_id, job.status)
            return
        for result in results:
            registry.add_result(job, result)
        if worker_cancelled or job.token.cancelled:
            registry.finish(job, JOB_CANCELLED)
            self.ledger.finish(job_id, JOB_CANCELLED)
            self.service._finish_trace(job)
            return
        failed = [r for r in results if r.get("status") != "ok"]
        if failed:
            # Deterministic per-scenario failures (construction errors,
            # infeasible instances) are answers, not crashes: finishing
            # mirrors single-process mode instead of burning retries.
            registry.finish(job, JOB_ERROR, error=f"{len(failed)} scenario(s) failed")
            self.ledger.finish(job_id, JOB_ERROR)
        else:
            registry.finish(job, JOB_DONE)
            self.ledger.finish(job_id, JOB_DONE)
        self.service._finish_trace(job)

    def _attempt_failed(self, job_id: str, error: str) -> None:
        state = self.ledger.fail_attempt(job_id, error)
        job = self.service.registry.get(job_id)
        if state == LEASE_DEAD_LETTER:
            lease = self.ledger.get(job_id)
            attempts = lease.attempts if lease is not None else 0
            if job is not None:
                self.service.registry.finish(
                    job,
                    JOB_ERROR,
                    error=f"dead-letter after {attempts} attempt(s): {error}",
                )
                self.service._finish_trace(job)
        elif state == LEASE_PENDING and job is not None:
            self.service.registry.requeue(job, reason=error)
            context = self.service._job_context(job)
            if context is not None:
                trace.event("requeued", context, job=job_id, reason=error)

    def _reap_dead(self) -> None:
        for handle in self._handles:
            process = handle.process
            if process is None or process.is_alive():
                continue
            exitcode = process.exitcode
            handle.process = None
            handle.ready = False
            job_id, handle.job = handle.job, None
            self._merge_cache(handle.index)  # salvage finished payloads
            self._merge_trace()  # salvage the dead worker's spans too
            if job_id is not None:
                self._observe_duration(handle)
                self._attempt_failed(
                    job_id, f"worker died mid-job (exit {exitcode})"
                )
            if not self._draining and not self._stop_event.is_set():
                handle.restarts += 1
                self.service.metrics.inc("worker_restarts")
                self._spawn(handle)

    def _expire_leases(self) -> None:
        for lease in self.ledger.expired():
            holder = None
            for handle in self._handles:
                if handle.job == lease.id:
                    holder = handle
                    break
            if holder is not None:
                # Alive but silent: hung solver, stuck disk, whatever —
                # the lease is the contract, so the worker is killed and
                # respawned by the next reap pass.
                holder.job = None
                if holder.process is not None and holder.process.is_alive():
                    holder.process.terminate()
            self._attempt_failed(lease.id, "lease expired (missed heartbeats)")

    def _sweep_deadlines(self) -> None:
        # Pending jobs past their deadline finish as JOB_DEADLINE without
        # ever being leased: zero mapper invocations, zero retry charge.
        for lease in self.ledger.deadline_expired():
            job = self.service.registry.get(lease.id)
            if job is not None and not job.finished:
                self.service.registry.finish(
                    job, JOB_DEADLINE, error="deadline exceeded before start"
                )

    def _propagate_cancels(self) -> None:
        for handle in self._handles:
            if handle.job is None or handle.cancel_event is None:
                continue
            job = self.service.registry.get(handle.job)
            if (
                job is not None
                and job.token.cancelled
                and not handle.cancel_event.is_set()
            ):
                handle.cancel_event.set()

    def _dispatch(self) -> None:
        if self._draining:
            return
        registry = self.service.registry
        for handle in self._handles:
            if not (handle.ready and handle.alive and handle.job is None):
                continue
            while True:
                lease = self.ledger.claim(handle.name)
                if lease is None:
                    return
                job = registry.get(lease.id)
                if job is None:
                    try:
                        job = registry.adopt(lease.id, parse_job(lease.spec))
                    except WireError:
                        self.ledger.finish(lease.id, "dropped: unparseable spec")
                        continue
                if job.finished:  # cancelled while pending
                    self.ledger.finish(lease.id, job.status)
                    continue
                break
            handle.cancel_event.clear()
            handle.job = lease.id
            handle.dispatched_at = time.monotonic()
            waited = max(0.0, time.time() - job.submitted_at)
            self.service.metrics.observe("queue_wait", waited)
            self.service.metrics.observe(f"queue_wait_{lease.priority}", waited)
            context = self.service._job_context(job)
            if context is not None:
                # Queue wait: ledger enqueue (or submission) to claim.
                enqueued = getattr(lease, "enqueued_at", None) or job.submitted_at
                trace.record_span(
                    "queue",
                    context,
                    start=enqueued,
                    duration=max(0.0, time.time() - enqueued),
                    job=lease.id,
                    priority=lease.priority,
                    worker=handle.name,
                )
            try:
                handle.task_queue.put(
                    {
                        "job": lease.id,
                        "spec": lease.spec,
                        "deadline_at": lease.deadline_at,
                        "trace": job.spec.trace,
                    }
                )
            except (OSError, ValueError):
                # The worker's pipe is broken (it just died); the reap
                # pass will fail the attempt and respawn.
                pass

    # -- span-journal merging ------------------------------------------
    def _merge_trace(self) -> None:
        """Fold new worker span-journal lines into ``merged.jsonl``.

        Incremental (per-source byte offsets) and torn-tail safe: a line
        a SIGKILLed worker half-wrote is left for the next pass, which
        will skip it the same way.  Reading tools dedup merged + source
        copies, so merging is free to run as often as convenient.
        """
        trace_dir = self.service.trace_dir
        if trace_dir is None:
            return
        dest = trace_dir / trace.MERGED_NAME
        for source in sorted(trace_dir.glob("worker-*.jsonl")):
            offset = self._trace_offsets.get(source.name, 0)
            self._trace_offsets[source.name] = trace.merge_journal(
                source, dest, offset
            )

    # -- result-cache merging ------------------------------------------
    def _prime_cache(self, worker_id: int) -> None:
        merged = self.merged_cache_dir
        worker_dir = self.config.worker_cache_dir(worker_id)
        if merged is None or worker_dir is None or not merged.exists():
            return
        self._copy_new_entries(merged, Path(worker_dir))

    def _merge_cache(self, worker_id: int) -> None:
        merged = self.merged_cache_dir
        worker_dir = self.config.worker_cache_dir(worker_id)
        if merged is None or worker_dir is None:
            return
        source = Path(worker_dir)
        if source.exists():
            self._copy_new_entries(source, merged)

    @staticmethod
    def _copy_new_entries(source: Path, target: Path) -> None:
        target.mkdir(parents=True, exist_ok=True)
        for entry in source.glob("*.json"):
            destination = target / entry.name
            if destination.exists():
                continue  # fingerprints are content-addressed: same answer
            tmp = destination.with_suffix(".json.tmp")
            try:
                tmp.write_bytes(entry.read_bytes())
                tmp.replace(destination)  # atomic publish, like the cache
            except OSError:
                continue

    # -- inspection ----------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/healthz``/``/metrics`` fleet section."""
        with self._lock:
            return {
                "size": len(self._handles),
                "draining": self._draining,
                "workers": [handle.snapshot() for handle in self._handles],
                "worker_restarts": sum(h.restarts for h in self._handles),
            }


# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`MappingService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: MappingService,
        max_body_bytes: int = MAX_BODY_BYTES,
        handler_timeout: float | None = HANDLER_TIMEOUT,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.max_body_bytes = max_body_bytes
        self.handler_timeout = handler_timeout


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # Quiet by default: the daemon is long-lived and per-request lines
    # belong to the operator's access log, not stderr.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def setup(self) -> None:
        # The per-server socket timeout: http.server applies self.timeout
        # in setup(), and handle_one_request() treats a timed-out read as
        # close_connection — so a client that connects and never sends
        # releases its handler thread instead of pinning it forever.
        self.timeout = self.server.handler_timeout
        super().setup()

    @property
    def service(self) -> MappingService:
        return self.server.service

    # -- plumbing ------------------------------------------------------
    def _send_json(
        self, payload: dict, status: int = 200, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise WireError("Content-Length is not an integer") from None
        if length < 0:
            raise WireError("Content-Length is negative")
        if length > self.server.max_body_bytes:
            # Reject on the *declared* size, before reading a byte: an
            # unbounded read here would hand memory to any rude client.
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise WireError("empty request body (expected JSON)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from None

    def _job_or_404(self, job_id: str) -> ServiceJob | None:
        job = self.service.registry.get(job_id)
        if job is None:
            self._send_error_json(404, f"no such job {job_id!r}")
        return job

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if not parts:
            self._send_json(
                {
                    "service": "repro-mapping-service",
                    "format": WIRE_FORMAT,
                    "endpoints": [
                        "POST /jobs",
                        "GET /jobs",
                        "GET /jobs/<id>",
                        "GET /jobs/<id>/stream",
                        "GET /jobs/<id>/trace",
                        "POST /jobs/<id>/cancel",
                        "GET /healthz",
                        "GET /metrics",
                        "POST /shutdown",
                    ],
                }
            )
        elif parts == ["healthz"]:
            self._send_json(self.service.stats())
        elif parts == ["metrics"]:
            self._send_json(self.service.metrics_payload())
        elif parts == ["jobs"]:
            self._send_json(
                {"jobs": [job.summary() for job in self.service.registry.jobs()]}
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(job.detail())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._stream(job)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            payload = self.service.trace_payload(parts[1])
            if payload is None:
                self._send_error_json(404, f"no such job {parts[1]!r}")
            else:
                self._send_json(payload)
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if parts == ["jobs"]:
            try:
                spec = parse_job(self._read_json())
                header = self.headers.get("X-Repro-Client")
                if header:
                    # The header wins over a body `client` key; replace()
                    # re-runs validation, so a bad header is still a 400.
                    spec = dataclass_replace(spec, client=header.strip())
                trace_header = self.headers.get(trace.TRACE_HEADER)
                if trace_header:
                    # Same contract as the client header: the caller's
                    # context wins, and a malformed one is a 400.
                    spec = dataclass_replace(spec, trace=trace_header.strip())
            except PayloadTooLarge as exc:
                self._send_error_json(413, str(exc))
                return
            except WireError as exc:
                self._send_error_json(400, str(exc))
                return
            try:
                job = self.service.submit(spec)
            except QueueFull as exc:
                # Backpressure, not failure: the client is told exactly
                # when the backlog should have room again.
                retry_after = max(1, math.ceil(exc.retry_after or 1.0))
                self._send_json(
                    {"error": str(exc), "retry_after": retry_after},
                    status=429,
                    headers={"Retry-After": str(retry_after)},
                )
                return
            self._send_json({**job.summary(), "stream": f"/jobs/{job.id}/stream"}, 202)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            job = self.service.cancel(parts[1])
            if job is None:
                self._send_error_json(404, f"no such job {parts[1]!r}")
            else:
                self._send_json(job.summary())
        elif parts == ["shutdown"]:
            self._send_json({"status": "shutting-down"})
            # shutdown() blocks until serve_forever exits, so it must run
            # off the handler thread; the serve loop then stops workers.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    # -- streaming -----------------------------------------------------
    def _stream(self, job: ServiceJob) -> None:
        """NDJSON event stream: replay, then follow until terminal."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        index = 0
        last_write = time.monotonic()
        registry = self.service.registry
        try:
            while True:
                events, index, drained = registry.events_since(job, index, timeout=0.5)
                for event in events:
                    self.wfile.write(
                        json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
                    )
                if events:
                    self.wfile.flush()
                    last_write = time.monotonic()
                if drained:
                    return
                if time.monotonic() - last_write > STREAM_HEARTBEAT:
                    # Keep idle streams alive through client read timeouts
                    # and proxies while a long solve produces no events.
                    self.wfile.write(b'{"event":"ping"}\n')
                    self.wfile.flush()
                    last_write = time.monotonic()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; the job keeps running


# ----------------------------------------------------------------------
def make_server(
    service: MappingService,
    host: str = "127.0.0.1",
    port: int = 8100,
    max_body_bytes: int = MAX_BODY_BYTES,
    handler_timeout: float | None = HANDLER_TIMEOUT,
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP front end; ``port=0`` picks a free one."""
    return ServiceHTTPServer(
        (host, port),
        service,
        max_body_bytes=max_body_bytes,
        handler_timeout=handler_timeout,
    )


def run_server(
    service: MappingService,
    server: ServiceHTTPServer,
) -> None:
    """Serve until ``POST /shutdown`` (or Ctrl-C), then stop the workers."""
    service.start()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop(wait=True)
