"""Solver-backend bench: HiGHS vs pure-Python branch and bound.

On a mapping-shaped instance both backends must agree on the optimum;
HiGHS is expected to be much faster (the B&B exists for incumbent-stream
recording, not raw speed), and the B&B must produce a usable incumbent
trace with nondecreasing deterministic timestamps.
"""

import pytest

from bench_config import once
from repro.ilp.bnb_backend import BnBBackend, BnBOptions
from repro.ilp.highs_backend import HighsBackend
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


def _instance():
    net = random_network(10, 20, seed=18, max_fan_in=5)
    arch = custom_architecture(
        [(CrossbarType(4, 4), 4), (CrossbarType(8, 8), 2)]
    )
    problem = MappingProblem(net, arch)
    return problem, AreaModel(problem)


def test_benchmark_bnb_backend(benchmark):
    problem, handle = _instance()
    warm = handle.warm_start_from(greedy_first_fit(problem))

    result = once(
        benchmark,
        lambda: BnBBackend(BnBOptions(max_nodes=20_000)).solve(
            handle.model, warm_start=warm
        ),
    )
    highs = HighsBackend().solve(handle.model, warm_start=warm)
    assert result.objective == pytest.approx(highs.objective)
    # Incumbent stream: improving objectives, nondecreasing det stamps.
    objs = [inc.objective for inc in result.incumbents]
    assert objs == sorted(objs, reverse=True)
    stamps = [inc.det_time for inc in result.incumbents]
    assert stamps == sorted(stamps)


def test_benchmark_highs_backend(benchmark):
    problem, handle = _instance()
    warm = handle.warm_start_from(greedy_first_fit(problem))
    result = once(benchmark, lambda: HighsBackend().solve(handle.model, warm_start=warm))
    assert result.status.has_solution()
    mapping = handle.extract_mapping(result)
    assert mapping.is_valid()
