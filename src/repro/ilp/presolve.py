"""Model presolve: cheap reductions applied before a solve.

Real MILP solvers spend much of their effort in presolve; this module
implements the classic safe reductions on our :class:`Model` so the
pure-Python branch-and-bound backend starts from a smaller, tighter
instance (and so tests can reason about the transformations explicitly):

- **empty / tautological rows** (no variables, constant satisfies) drop;
- **singleton rows** tighten the single variable's bounds, then drop;
- **binary fixing**: bounds tightened into {0} or {1} fix the variable;
- **duplicate rows** (identical sign-normalized coefficient vectors with
  compatible senses) keep only the tightest;
- **fixed-variable substitution** folds ``lb == ub`` variables into row
  constants.

All reductions are *safe*: the reduced model has exactly the same set of
feasible completions and optimal objective value.  :func:`presolve`
returns a new model plus a report of what happened; solutions of the
reduced model extend to the original by re-adding fixed variables.

The passes run on the model's assembled sparse system
(:meth:`~repro.ilp.model.Model.row_system`), not on per-constraint Python
objects: empty/singleton rows come from row-nnz masks, fixed-variable
substitution is one sparse mat-vec, and duplicate detection hashes each
sign-normalized row exactly once (linear in total nonzeros, where the old
per-object scan re-normalized rows per comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .expr import LinExpr, Sense, Variable
from .model import CODE_SENSES, Model

#: Sense codes (see :data:`repro.ilp.model.SENSE_CODES`).
_LE, _GE, _EQ = 0, 1, 2


@dataclass
class PresolveReport:
    """What presolve changed."""

    rows_dropped: int = 0
    singleton_rows: int = 0
    duplicate_rows: int = 0
    vars_fixed: int = 0
    bounds_tightened: int = 0
    fixed_values: dict[str, float] = field(default_factory=dict)

    def total_reductions(self) -> int:
        return self.rows_dropped + self.vars_fixed + self.bounds_tightened


class InfeasibleModelError(ValueError):
    """Presolve proved the model infeasible."""


def _tighten_from_singleton(
    var: Variable, coef: float, rhs: float, sense: Sense, report: PresolveReport
) -> None:
    """Apply ``coef * x (<=|>=|==) rhs`` to x's bounds."""
    bound = rhs / coef
    senses: list[Sense]
    if sense is Sense.EQ:
        senses = [Sense.LE, Sense.GE]
    else:
        senses = [sense]
    for one in senses:
        # coef*x <= rhs: upper bound if coef > 0 else lower bound (dually).
        upper = (one is Sense.LE) == (coef > 0)
        if upper:
            if bound < var.ub - 1e-12:
                var.ub = bound
                report.bounds_tightened += 1
        else:
            if bound > var.lb + 1e-12:
                var.lb = bound
                report.bounds_tightened += 1
    if var.is_integer():
        var.lb = math.ceil(var.lb - 1e-9)
        var.ub = math.floor(var.ub + 1e-9)
    if var.lb > var.ub + 1e-9:
        raise InfeasibleModelError(
            f"singleton row on {var.name} empties its domain"
        )


def _constant_rows_ok(codes: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Feasibility of variable-free rows ``0 <sense> rhs`` (tolerance 1e-9)."""
    return np.where(
        codes == _LE,
        rhs >= -1e-9,
        np.where(codes == _GE, rhs <= 1e-9, np.abs(rhs) <= 1e-9),
    )


def presolve(model: Model) -> tuple[Model, PresolveReport]:
    """Produce a reduced, equivalent model.

    Raises :class:`InfeasibleModelError` when a reduction proves the
    model infeasible outright.  Singleton-row tightening mutates the
    *original* model's variable bounds (Variable objects are shared with
    callers), exactly as before.
    """
    report = PresolveReport()
    variables = model.variables
    system = model.row_system()
    a = system.a_matrix
    codes = system.sense_code
    rhs = system.rhs
    nnz = np.diff(a.indptr)

    # Pass 1: empty rows must be tautological; singleton rows tighten the
    # single variable's bounds.  Both kinds then drop.
    empty = np.flatnonzero(nnz == 0)
    if empty.size:
        ok = _constant_rows_ok(codes[empty], rhs[empty])
        if not ok.all():
            bad = int(empty[np.argmin(ok)])
            label = model.row_name(bad) or f"#{bad}"
            raise InfeasibleModelError(
                f"constant constraint {label} is violated"
            )
        report.rows_dropped += int(empty.size)
    singles = np.flatnonzero(nnz == 1)
    for r in singles:
        entry = a.indptr[r]
        _tighten_from_singleton(
            variables[int(a.indices[entry])],
            float(a.data[entry]),
            float(rhs[r]),
            CODE_SENSES[codes[r]],
            report,
        )
    report.singleton_rows = int(singles.size)
    report.rows_dropped += int(singles.size)

    # Pass 2: collect fixed variables (including freshly fixed binaries).
    n = len(variables)
    var_lb = np.fromiter((v.lb for v in variables), dtype=np.float64, count=n)
    var_ub = np.fromiter((v.ub for v in variables), dtype=np.float64, count=n)
    fixed_mask = var_ub - var_lb <= 1e-9
    fixed_idx = np.flatnonzero(fixed_mask)
    for i in fixed_idx:
        report.fixed_values[variables[i].name] = float(var_lb[i])
    report.vars_fixed = int(fixed_idx.size)

    # Pass 3: substitute fixed variables into the surviving (nnz >= 2)
    # rows' constants and drop their columns — one sparse mat-vec.
    surv = np.flatnonzero(nnz >= 2)
    a_surv = a[surv]
    rhs_surv = rhs[surv].copy()
    codes_surv = codes[surv]
    if fixed_idx.size:
        rhs_surv -= a_surv[:, fixed_idx] @ var_lb[fixed_idx]
    free_idx = np.flatnonzero(~fixed_mask)
    a_free = a_surv[:, free_idx].tocsr()
    a_free.sort_indices()
    nnz_free = np.diff(a_free.indptr)

    emptied = nnz_free == 0
    if emptied.any():
        ok = _constant_rows_ok(codes_surv[emptied], rhs_surv[emptied])
        if not ok.all():
            bad = int(surv[np.flatnonzero(emptied)[np.argmin(ok)]])
            label = model.row_name(bad) or f"#{bad}"
            raise InfeasibleModelError(
                f"constraint {label} violated after fixing"
            )
        report.rows_dropped += int(np.count_nonzero(emptied))
    live = ~emptied
    a_free = a_free[live]
    rhs_live = rhs_surv[live]
    codes_live = codes_surv[live]
    orig_rows = surv[live]

    # Pass 4: duplicate rows.  Sign-normalize each row (first coefficient
    # becomes +1; LE/GE flip when it was negative), hash the normalized
    # pattern ONCE, and keep the tightest right-hand side per group.
    indptr = a_free.indptr
    indices = a_free.indices
    data = a_free.data
    num_live = a_free.shape[0]
    scale = data[indptr[:-1]] if num_live else np.empty(0)
    norm_data = np.round(data / np.repeat(scale, np.diff(indptr)), 12) + 0.0
    norm_rhs = rhs_live / scale
    flip = scale < 0
    norm_codes = np.where(
        flip & (codes_live == _LE),
        _GE,
        np.where(flip & (codes_live == _GE), _LE, codes_live),
    )

    keep_pos: list[int] = []
    kept_rhs: list[float] = []
    seen: dict[tuple, int] = {}
    for pos in range(num_live):
        lo, hi = indptr[pos], indptr[pos + 1]
        key = (
            int(norm_codes[pos]),
            indices[lo:hi].tobytes(),
            norm_data[lo:hi].tobytes(),
        )
        prior = seen.get(key)
        if prior is None:
            seen[key] = len(keep_pos)
            keep_pos.append(pos)
            kept_rhs.append(float(norm_rhs[pos]))
            continue
        code = int(norm_codes[pos])
        if code == _EQ:
            if abs(float(norm_rhs[pos]) - kept_rhs[prior]) > 1e-9:
                raise InfeasibleModelError("conflicting duplicate equality rows")
        elif code == _LE:
            kept_rhs[prior] = min(kept_rhs[prior], float(norm_rhs[pos]))
        else:
            kept_rhs[prior] = max(kept_rhs[prior], float(norm_rhs[pos]))
        report.duplicate_rows += 1
        report.rows_dropped += 1

    keep_arr = np.asarray(keep_pos, dtype=np.int64)
    a_kept = a_free[keep_arr]
    # Tightened rhs is tracked in normalized space; map back through the
    # kept row's own scale so its stored coefficients stay untouched.
    rhs_kept = np.asarray(kept_rhs) * scale[keep_arr] if keep_arr.size else np.empty(0)
    codes_kept = codes_live[keep_arr]

    # Rebuild: surviving variables (with tightened bounds), surviving rows
    # as one block, objective with fixed variables folded into constants.
    reduced = Model(f"{model.name}-presolved")
    for i in free_idx:
        v = variables[i]
        reduced.add_var(v.name, v.lb, v.ub, v.vartype)
    if keep_arr.size:
        coo = a_kept.tocoo()
        reduced.add_block(
            coo.row,
            coo.col,
            coo.data,
            codes_kept,
            rhs_kept,
            num_rows=int(a_kept.shape[0]),
            name=[model.row_name(int(r)) for r in orig_rows[keep_arr]],
        )

    colmap = np.full(n, -1, dtype=np.int64)
    colmap[free_idx] = np.arange(free_idx.size)
    obj_coeffs: dict[int, float] = {}
    constant = model.objective.constant
    for idx, coef in model.objective.coeffs.items():
        if fixed_mask[idx]:
            constant += coef * var_lb[idx]
        elif coef != 0.0:
            obj_coeffs[int(colmap[idx])] = coef
    objective = LinExpr(obj_coeffs, constant)
    if model.objective_sense.value == "minimize":
        reduced.minimize(objective)
    else:
        reduced.maximize(objective)
    return reduced, report


def extend_solution(
    report: PresolveReport, reduced_values: dict[str, float]
) -> dict[str, float]:
    """Lift a reduced-model solution back to the original variable set."""
    full = dict(reduced_values)
    full.update(report.fixed_values)
    return full
