"""Search drivers: exhaustive grid and adaptive successive halving.

Both drivers take a :class:`~repro.dse.scenario.DesignSpace` (or an
explicit scenario list) and an :class:`~repro.dse.explorer.Explorer`,
and return an :class:`~repro.dse.explorer.ExplorationResult`.

- :func:`explore_grid` — ILP-evaluate every scenario.  The reference
  frontier; O(grid) solver budget.
- :func:`explore_adaptive` — successive halving on solver budget.
  Rung 0 scores the whole grid with greedy first-fit bounds (no ILP,
  milliseconds each); rung 1 probes the band of promising candidates,
  cheapest pipelines first; later rungs refine the survivors.  Between
  rungs the candidate set is *halved* two ways: bounds are tightened
  with confirmed prefix-sibling results (an ``area+snu`` scenario can
  only improve on the confirmed ``area`` point of the same instance, so
  that point becomes its bound), and candidates whose optimistic bound a
  confirmed point dominates are pruned outright.  Total ILP spend is
  hard-capped at ``budget_fraction`` of what the exhaustive grid would
  pay — met by construction, not by luck.

Both drivers are resumable for free: every evaluation goes store-first
through the explorer, so re-running a finished sweep costs zero solves
and an interrupted one picks up where it stopped.
"""

from __future__ import annotations

import math
import time

import numpy as np

from .explorer import ExplorationResult, Explorer, ScenarioResult
from .fidelity import rung_solver_specs
from .objectives import objective_matrix
from .pareto import crowding_distance, pareto_rank
from .scenario import DesignSpace, Scenario

DRIVERS = ("grid", "adaptive")

#: One adaptive candidate: the scenario plus its greedy rung-0 result.
Candidate = tuple[Scenario, ScenarioResult]


def _as_scenarios(space: DesignSpace | list[Scenario]) -> list[Scenario]:
    return space.scenarios() if isinstance(space, DesignSpace) else list(space)


def _accounting(results: list[ScenarioResult]) -> tuple[int, int]:
    """(executed ILP solves, store-resumed results) over ``results``."""
    solves = sum(r.solves for r in results)
    resumed = sum(1 for r in results if r.from_store)
    return solves, resumed


def explore_grid(
    space: DesignSpace | list[Scenario],
    explorer: Explorer | None = None,
    time_limit: float | None = None,
) -> ExplorationResult:
    """Exhaustive sweep: the full grid through the ILP pipeline."""
    explorer = explorer or Explorer()
    scenarios = _as_scenarios(space)
    start = time.perf_counter()
    evaluated = explorer.evaluate_ilp(scenarios, time_limit=time_limit)
    # Duplicate spellings of one instance share a single result object;
    # keep one copy so solve accounting and the frontier stay per-instance.
    results = list({r.fingerprint: r for r in evaluated}.values())
    solves, resumed = _accounting(results)
    return ExplorationResult(
        results=results,
        driver="grid",
        ilp_solves=solves,
        resumed=resumed,
        wall_time=time.perf_counter() - start,
        meta={"scenarios": len(scenarios)},
    )


def explore_adaptive(
    space: DesignSpace | list[Scenario],
    explorer: Explorer | None = None,
    time_limit: float | None = None,
    keep: float = 0.7,
    budget_fraction: float = 0.5,
    max_rungs: int = 3,
    prune_slack: float = 0.25,
) -> ExplorationResult:
    """Successive-halving sweep: greedy bounds first, ILP on the band.

    ``budget_fraction`` is a hard ceiling on ILP stage-solves relative to
    what :func:`explore_grid` would spend on the same grid (estimated as
    one solve per pipeline stage per scenario); promotion never exceeds
    it.  ``keep`` is each rung's share of the *remaining* budget (the
    final rung drains it), so early rungs probe broadly with cheap
    pipelines and later rungs concentrate on refinement.

    ``prune_slack`` is how optimistic the halving step assumes a bound to
    be: a candidate is pruned only when a confirmed ILP point dominates
    its bound scaled down by ``1 - prune_slack``.  Greedy placements are
    pessimistic in every objective (the solver can only shrink area,
    reroute packets, shorten paths), so slack 0 would prune exactly the
    candidates the solver could still vindicate.

    Scenarios never promoted to the ILP tier are reported in
    ``result.pruned`` — the driver bet no solver budget on them.
    """
    if not 0 < keep <= 1:
        raise ValueError("keep must be in (0, 1]")
    if not 0 < budget_fraction <= 1:
        raise ValueError("budget_fraction must be in (0, 1]")
    if max_rungs < 1:
        raise ValueError("need at least one rung")
    if not 0 <= prune_slack < 1:
        raise ValueError("prune_slack must be in [0, 1)")
    explorer = explorer or Explorer()
    scenarios = _as_scenarios(space)
    start = time.perf_counter()

    # Rung 0: cheap bounds for the whole grid (store-first, no ILP).
    greedy = explorer.evaluate_greedy(scenarios, meta={"rung": 0})
    greedy_evals = len(greedy)
    candidates: dict[str, Candidate] = {}
    failures: dict[str, ScenarioResult] = {}
    for scenario, result in zip(scenarios, greedy):
        if result.fingerprint in candidates or result.fingerprint in failures:
            continue
        if result.ok:
            candidates[result.fingerprint] = (scenario, result)
        else:
            # Surfaced in the final results: a scenario that cannot even
            # be scored must show up as failed, not silently vanish.
            failures[result.fingerprint] = result

    # The hard solve budget, denominated in grid-equivalent stage solves.
    grid_solves = sum(
        len(s.formulation.stages) for s, _ in candidates.values()
    )
    budget = math.floor(grid_solves * budget_fraction)

    bounds = {
        fp: result.objectives.vector()  # type: ignore[union-attr]
        for fp, (_, result) in candidates.items()
    }
    ilp_results: dict[str, ScenarioResult] = {}
    remaining = dict(candidates)
    rung = 1
    while remaining and rung <= max_rungs and budget > 0:
        quota = budget if rung == max_rungs else max(1, math.ceil(budget * keep))
        promote = _select_band(remaining, bounds, min(quota, budget))
        if not promote:
            break
        # Portfolio runs scale solver fidelity with the rung: cheap rungs
        # race loose-gap node-capped arms behind the lp_round heuristic,
        # the top rung races full-fidelity exact arms (see dse.fidelity).
        # Single-backend runs keep their historical configuration.
        specs = (
            rung_solver_specs(rung, max_rungs)
            if explorer.portfolio and not callable(explorer.portfolio)
            else None
        )
        batch = explorer.evaluate_ilp(
            [remaining[fp][0] for fp in promote],
            time_limit=time_limit,
            meta={"rung": rung},
            solver_specs=specs,
        )
        for fingerprint, result in zip(promote, batch):
            ilp_results[fingerprint] = result
            remaining.pop(fingerprint, None)
        # Decrement by the *estimated* cost, not executed solves, so a
        # fresh (store-less) rerun of the same schedule also fits.
        budget -= sum(
            len(candidates[fp][0].formulation.stages) for fp in promote
        )
        _tighten_bounds(remaining, bounds, ilp_results)
        remaining = _filter_dominated(remaining, bounds, ilp_results, prune_slack)
        rung += 1

    results = list(ilp_results.values())
    solves, resumed = _accounting(results)
    resumed += sum(1 for r in greedy if r.from_store)
    return ExplorationResult(
        results=results + list(failures.values()),
        driver="adaptive",
        ilp_solves=solves,
        greedy_evaluations=greedy_evals,
        resumed=resumed,
        pruned=tuple(remaining),
        wall_time=time.perf_counter() - start,
        meta={
            "scenarios": len(scenarios),
            "keep": keep,
            "budget_fraction": budget_fraction,
            "prune_slack": prune_slack,
            "grid_solve_estimate": grid_solves,
            "rungs": rung - 1,
        },
    )


def _select_band(
    remaining: dict[str, Candidate],
    bounds: dict[str, np.ndarray],
    quota: int,
) -> list[str]:
    """Fingerprints to promote this rung, best-first, within ``quota``.

    Candidates are ordered by Pareto rank of their current bound (among
    the remaining candidates), ties broken toward isolated points
    (crowding distance) and then toward *shorter* stage prefixes — a
    one-solve probe of a fresh instance buys more information than the
    second stage of a known one, and its result tightens the sibling
    bounds for the next rung.  A candidate whose pipeline would not fit
    in the remaining quota is skipped — never overshoots.
    """
    fingerprints = list(remaining)
    points = np.vstack([bounds[fp] for fp in fingerprints])
    ranks = pareto_rank(points)
    crowding = crowding_distance(points)
    order = sorted(
        range(len(fingerprints)),
        key=lambda i: (
            ranks[i],
            -crowding[i],
            len(remaining[fingerprints[i]][0].formulation.stages),
        ),
    )
    promoted: list[str] = []
    spent = 0
    for i in order:
        fingerprint = fingerprints[i]
        cost = len(remaining[fingerprint][0].formulation.stages)
        if spent + cost > quota:
            continue
        promoted.append(fingerprint)
        spent += cost
    return promoted


def _instance_key(scenario: Scenario):
    """Scenarios sharing this key map the same problem, same ILP variant.

    Stage prefixes are deliberately excluded: within one key, a longer
    prefix starts from the shorter prefix's solution and only improves
    it, which is what makes sibling results valid bounds.
    """
    return (
        scenario.workload,
        scenario.architecture,
        scenario.formulation.options,
        scenario.formulation.precision,
    )


def _tighten_bounds(
    remaining: dict[str, Candidate],
    bounds: dict[str, np.ndarray],
    ilp_results: dict[str, ScenarioResult],
) -> None:
    """Replace greedy bounds with confirmed prefix-sibling points.

    A confirmed ``area`` result for an instance is achievable by the
    ``area+snu`` scenario of the same instance (the snu stage starts from
    that very mapping and keeps its enabled set), so it is a tighter
    pessimistic bound than rung 0's greedy placement — the next rung
    ranks refinement candidates by real solver evidence, not first-fit.
    """
    confirmed: dict[tuple, list[tuple[tuple[str, ...], np.ndarray]]] = {}
    for result in ilp_results.values():
        if not result.ok or result.objectives is None:
            continue
        confirmed.setdefault(_instance_key(result.scenario), []).append(
            (result.scenario.formulation.stages, result.objectives.vector())
        )
    for fingerprint, (scenario, _) in remaining.items():
        stages = scenario.formulation.stages
        for sibling_stages, vector in confirmed.get(_instance_key(scenario), ()):
            if stages[: len(sibling_stages)] == sibling_stages:
                bounds[fingerprint] = np.minimum(bounds[fingerprint], vector)


def _filter_dominated(
    remaining: dict[str, Candidate],
    bounds: dict[str, np.ndarray],
    ilp_results: dict[str, ScenarioResult],
    slack: float,
) -> dict[str, Candidate]:
    """Drop candidates whose *optimistic* bound an ILP point dominates.

    Each bound is scaled down by ``1 - slack`` before the dominance test,
    so a candidate falls out only when a confirmed point beats even the
    improvement the solver could plausibly deliver.  This is the halving
    step — interior candidates fall out, frontier-adjacent ones survive
    to the next rung.
    """
    confirmed = objective_matrix(
        [r.objectives for r in ilp_results.values() if r.ok and r.objectives]
    )
    if confirmed.size == 0 or not remaining:
        return remaining
    survivors: dict[str, Candidate] = {}
    for fingerprint, candidate in remaining.items():
        bound = bounds[fingerprint] * (1.0 - slack)
        dominated = bool(
            np.any(
                (confirmed <= bound).all(axis=1)
                & (confirmed < bound).any(axis=1)
            )
        )
        if not dominated:
            survivors[fingerprint] = candidate
    return survivors
