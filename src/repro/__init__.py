"""repro — reproduction of "Mapping Spiking Neural Networks to
Heterogeneous Crossbar Architectures using Integer Linear Programming"
(DATE 2025).

Public API tour
---------------
- :mod:`repro.snn` — networks, statistics, simulation, generators, EONS.
- :mod:`repro.mca` — crossbar types/pools (Table II), NoC, processor model.
- :mod:`repro.ilp` — ILP modeling layer with HiGHS and branch-and-bound
  backends (the CP-SAT stand-in), plus picklable
  :class:`~repro.ilp.solve.SolverSpec` solve entries for worker processes.
- :mod:`repro.mapping` — the paper's formulations (area / SNU / PGO), the
  SpikeHard baseline, approximate baselines, the staged pipeline, and
  process-stable problem fingerprints.
- :mod:`repro.batch` — the sweep-scale layer: :class:`BatchMapper` runs
  many pipelines at once across a process pool, optionally racing solver
  backends per stage and caching solved instances by fingerprint.
- :mod:`repro.profile` — synthetic SmartPixel data and spike profiling.
- :mod:`repro.experiments` — one module per paper table/figure; the
  multi-network sweeps route through :mod:`repro.batch` (``--jobs N``,
  ``--portfolio``).

Quickstart
----------
>>> from repro import quick_map
>>> from repro.snn import random_network
>>> mapping = quick_map(random_network(32, 64, seed=1))
>>> mapping.is_valid()
True

Batch sweep (see ``examples/batch_sweep.py`` for the full tour):

>>> from repro import BatchJob, BatchMapper                 # doctest: +SKIP
>>> result = BatchMapper(jobs=4).map_all(jobs)              # doctest: +SKIP
"""

from .batch.cache import ResultCache
from .batch.engine import BatchJob, BatchMapper, BatchResult, JobRecord
from .ilp.highs_backend import HighsBackend, HighsOptions
from .ilp.solve import SolverSpec
from .mapping.axon_sharing import AreaModel, FormulationOptions
from .mapping.greedy import greedy_first_fit
from .mapping.pipeline import MappingPipeline
from .mapping.problem import MappingProblem
from .mapping.solution import Mapping
from .mca.architecture import (
    heterogeneous_architecture,
    homogeneous_architecture,
)
from .snn.network import Network

__version__ = "1.1.0"

__all__ = [
    "AreaModel",
    "BatchJob",
    "BatchMapper",
    "BatchResult",
    "FormulationOptions",
    "HighsBackend",
    "HighsOptions",
    "JobRecord",
    "Mapping",
    "MappingPipeline",
    "MappingProblem",
    "Network",
    "ResultCache",
    "SolverSpec",
    "greedy_first_fit",
    "heterogeneous_architecture",
    "homogeneous_architecture",
    "quick_map",
]

#: Backends :func:`quick_map` understands.
QUICK_MAP_BACKENDS = ("highs", "bnb", "portfolio")


def quick_map(
    network: Network,
    heterogeneous: bool = True,
    time_limit: float = 10.0,
    backend: str = "highs",
    seed: int | None = None,
) -> Mapping:
    """One-call mapping: area-optimize a network onto a default pool.

    Uses the Table-II heterogeneous pool (or a 16x16 homogeneous pool) and
    returns the best mapping found within ``time_limit`` seconds, warm-
    started by greedy first-fit so a valid mapping is always returned.

    ``backend`` picks the solver: ``"highs"`` (default), ``"bnb"`` (the
    pure-Python branch and bound), or ``"portfolio"`` (race both, keep the
    best incumbent).  ``seed`` — when given — shuffles the greedy
    warm-start's placement order reproducibly, which diversifies the
    starting incumbent across calls.
    """
    if backend not in QUICK_MAP_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {QUICK_MAP_BACKENDS}"
        )
    if heterogeneous:
        arch = heterogeneous_architecture(network.num_neurons)
    else:
        arch = homogeneous_architecture(network.num_neurons)
    problem = MappingProblem(network, arch)
    handle = AreaModel(problem)
    if seed is None:
        greedy = greedy_first_fit(problem)
    else:
        greedy = greedy_first_fit(problem, order="random", seed=seed)
    warm = handle.warm_start_from(greedy)

    if backend == "portfolio":
        from .batch.portfolio import portfolio_solver_factory

        # The factory splits the budget across the sequential race's
        # members, so the documented time_limit holds as a total.
        solver = portfolio_solver_factory()(time_limit)
    else:
        solver = SolverSpec(
            backend,
            time_limit=time_limit,
            node_limit=20_000 if backend == "bnb" else None,
        ).build()
    result = solver.solve(handle.model, warm_start=warm)
    return handle.extract_mapping(result)
