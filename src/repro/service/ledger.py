"""Durable lease-based job ledger for the multi-process solver fleet.

The registry (:mod:`repro.service.jobs`) answers *clients* — what did I
submit, what happened to it.  The ledger answers the *fleet* — which
jobs still need work, who is working on them right now, and which ones
have burned their retry budget.  Keeping the two separate keeps each
journal replayable on its own: the registry can evict old jobs while the
ledger keeps execution state, and vice versa.

Every job moves through a small lease state machine::

    PENDING --claim--> LEASED --finish--> FINISHED
       ^                  |
       |    fail/expiry   +--fail_attempt--> PENDING (backoff)
       +------------------+                    |
                                               v  after max_attempts
                                          DEAD_LETTER

A worker *claims* a pending job, receiving a lease with a TTL, and
renews it via heartbeat while solving.  If the worker dies (SIGKILL, OOM
kill, hang), its heartbeats stop, the lease expires, and the supervisor
re-queues the job with exponential backoff — bounded by ``max_attempts``,
after which the job is dead-lettered instead of retried forever.  A
daemon restart re-queues leased jobs immediately *without* charging the
retry budget: the worker didn't fail, the whole process went away.

Durability follows the PR-6 journal idiom: every transition appends one
JSONL line through a write-behind :class:`~repro.service.metrics.
JsonlWriter` (flushed synchronously for state changes; heartbeats are
fire-and-forget, losing one costs at most a spurious retry), and a new
ledger pointed at the same file replays it on construction — torn or
stale lines are skipped and counted, never fatal.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..batch.queue import (
    DEFAULT_AGING_INTERVAL,
    PRIORITIES,
    PRIORITY_NORMAL,
    PRIORITY_RANK,
    effective_priority,
)
from .metrics import JsonlWriter, read_jsonl

#: Bump when the ledger record schema changes; stale lines are skipped.
LEDGER_FORMAT = 1

LEASE_PENDING = "pending"
LEASE_LEASED = "leased"
LEASE_FINISHED = "finished"
LEASE_DEAD_LETTER = "dead_letter"

#: States a ledger job never leaves.
LEDGER_TERMINAL = (LEASE_FINISHED, LEASE_DEAD_LETTER)


@dataclass
class LedgerJob:
    """One job's execution state (the registry holds the client view)."""

    id: str
    spec: dict  # wire-format submission payload, replayable on restart
    state: str = LEASE_PENDING
    attempts: int = 0  # leases granted (claims), including the active one
    enqueued_at: float = field(default_factory=time.time)
    not_before: float = 0.0  # backoff gate: claimable once now >= this
    worker: str | None = None  # current lease holder
    lease_expires: float | None = None
    last_error: str | None = None
    outcome: str | None = None  # "done" | "cancelled" | ... when FINISHED
    priority: str = PRIORITY_NORMAL  # scheduling lane (aged at claim time)
    deadline_at: float | None = None  # absolute wall-clock deadline

    @property
    def terminal(self) -> bool:
        return self.state in LEDGER_TERMINAL

    def snapshot(self) -> dict:
        """The inspection view (``/healthz`` fleet section, tests)."""
        return {
            "id": self.id,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "lease_expires": self.lease_expires,
            "not_before": self.not_before,
            "last_error": self.last_error,
            "outcome": self.outcome,
            "priority": self.priority,
            "deadline_at": self.deadline_at,
        }


class JobLedger:
    """Thread-safe, journal-backed lease ledger.

    ``path=None`` keeps the ledger in memory (tests, ``--fleet 0``);
    otherwise every transition is journaled and replayed on restart.
    All public methods take the internal lock; callers never hold it.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        max_attempts: int = 3,
        lease_ttl: float = 15.0,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        aging_interval: float = DEFAULT_AGING_INTERVAL,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if aging_interval <= 0:
            raise ValueError("aging_interval must be > 0")
        self.max_attempts = max_attempts
        self.lease_ttl = lease_ttl
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.aging_interval = aging_interval
        self._jobs: dict[str, LedgerJob] = {}
        self._lock = threading.Lock()
        self._replay_skipped = 0
        self._counters = {
            "leases_granted": 0,
            "leases_expired": 0,
            "requeues": 0,
            "dead_letters": 0,
            "deadline_expired": 0,
        }
        self._journal = JsonlWriter(path) if path is not None else None
        if path is not None:
            self._replay(Path(path))

    # -- journal -------------------------------------------------------
    def _append(self, record: dict, durable: bool = True) -> None:
        # Caller holds the lock.  The enqueue itself is O(1); ``durable``
        # transitions block until the line is on disk so a crash right
        # after the call cannot un-happen them.  Heartbeats skip the
        # flush: losing one costs at most a spurious lease expiry.
        if self._journal is None:
            return
        self._journal.append({"format": LEDGER_FORMAT, "ts": time.time(), **record})
        if durable:
            self._journal.flush()

    def _replay(self, path: Path) -> None:
        """Rebuild lease state from the journal of an earlier process.

        Jobs that were LEASED when that process died come back PENDING,
        immediately claimable, and journaled as restart re-queues — the
        attempt that died with the fleet is refunded, so daemon restarts
        never eat into a job's retry budget.
        """
        jobs: dict[str, LedgerJob] = {}
        for record in read_jsonl(path):
            if record.get("format") != LEDGER_FORMAT:
                self._replay_skipped += 1
                continue
            job_id = record.get("job")
            event = record.get("event")
            ts = float(record.get("ts") or 0.0)
            if not isinstance(job_id, str) or not isinstance(event, str):
                self._replay_skipped += 1
                continue
            job = jobs.get(job_id)
            if event == "enqueued":
                if job is not None:
                    continue
                spec = record.get("spec")
                if not isinstance(spec, dict):
                    self._replay_skipped += 1
                    continue
                priority = record.get("priority", PRIORITY_NORMAL)
                if priority not in PRIORITY_RANK:
                    priority = PRIORITY_NORMAL
                deadline_at = record.get("deadline_at")
                jobs[job_id] = LedgerJob(
                    id=job_id,
                    spec=spec,
                    enqueued_at=ts,
                    priority=priority,
                    deadline_at=(
                        float(deadline_at) if deadline_at is not None else None
                    ),
                )
                continue
            if job is None or job.terminal:
                self._replay_skipped += 1
                continue
            if event == "leased":
                job.state = LEASE_LEASED
                job.worker = str(record.get("worker") or "")
                job.attempts = int(record.get("attempt") or job.attempts + 1)
                job.lease_expires = float(record.get("expires") or 0.0)
            elif event == "heartbeat":
                job.lease_expires = float(record.get("expires") or 0.0)
            elif event == "requeued":
                job.state = LEASE_PENDING
                job.worker = None
                job.lease_expires = None
                job.not_before = float(record.get("not_before") or 0.0)
                # `or` would eat a legitimate 0 (a drain-refunded attempt).
                attempt = record.get("attempt")
                if attempt is not None:
                    job.attempts = int(attempt)
                job.last_error = record.get("error") or job.last_error
            elif event == "dead_letter":
                job.state = LEASE_DEAD_LETTER
                job.worker = None
                job.lease_expires = None
                job.last_error = record.get("error") or job.last_error
            elif event == "finished":
                job.state = LEASE_FINISHED
                job.worker = None
                job.lease_expires = None
                job.outcome = record.get("outcome")
            else:
                self._replay_skipped += 1
        with self._lock:
            self._jobs.update(jobs)
            for job in jobs.values():
                if job.state == LEASE_LEASED:
                    job.state = LEASE_PENDING
                    job.worker = None
                    job.lease_expires = None
                    job.not_before = 0.0
                    job.attempts = max(0, job.attempts - 1)  # refund
                    self._append(
                        {
                            "event": "requeued",
                            "job": job.id,
                            "reason": "daemon restart",
                            "attempt": job.attempts,
                            "not_before": 0.0,
                        }
                    )

    @property
    def replay_skipped(self) -> int:
        """Journal lines dropped during replay (torn/stale/orphaned)."""
        return self._replay_skipped

    # -- transitions ---------------------------------------------------
    def enqueue(
        self,
        job_id: str,
        spec: dict,
        priority: str = PRIORITY_NORMAL,
        deadline_at: float | None = None,
    ) -> LedgerJob:
        """Add a pending job (idempotent: an existing id is returned)."""
        if priority not in PRIORITY_RANK:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            )
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
            job = LedgerJob(
                id=job_id,
                spec=dict(spec),
                priority=priority,
                deadline_at=deadline_at,
            )
            self._jobs[job_id] = job
            record = {"event": "enqueued", "job": job_id, "spec": job.spec}
            if priority != PRIORITY_NORMAL:
                record["priority"] = priority
            if deadline_at is not None:
                record["deadline_at"] = deadline_at
            self._append(record)
            return job

    def claim(self, worker: str, now: float | None = None) -> LedgerJob | None:
        """Lease the best claimable pending job to ``worker``.

        Claimable pending jobs (backoff gate passed, deadline not blown)
        are ranked by :func:`~repro.batch.queue.effective_priority` —
        lane rank minus age credit — with insertion order breaking ties,
        so ``high`` work runs first but a starved ``batch`` job ages its
        way to the front.  Deadline-expired pending jobs are *skipped*,
        not claimed: :meth:`deadline_expired` sweeps them to a terminal
        state without ever charging a lease against their retry budget.
        ``None`` when nothing is claimable.
        """
        now = time.time() if now is None else now
        with self._lock:
            best: LedgerJob | None = None
            best_score = 0.0
            for job in self._jobs.values():  # insertion order == FIFO tie-break
                if job.state != LEASE_PENDING or job.not_before > now:
                    continue
                if job.deadline_at is not None and job.deadline_at <= now:
                    continue  # deadline sweep's business, not a lease
                score = effective_priority(
                    job.priority, now - job.enqueued_at, self.aging_interval
                )
                if best is None or score < best_score:
                    best, best_score = job, score
            if best is None:
                return None
            best.state = LEASE_LEASED
            best.worker = worker
            best.attempts += 1
            best.lease_expires = now + self.lease_ttl
            self._counters["leases_granted"] += 1
            self._append(
                {
                    "event": "leased",
                    "job": best.id,
                    "worker": worker,
                    "attempt": best.attempts,
                    "expires": best.lease_expires,
                }
            )
            return best

    def heartbeat(self, job_id: str, now: float | None = None) -> bool:
        """Renew a lease; false if the job is no longer leased (stale)."""
        now = time.time() if now is None else now
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != LEASE_LEASED:
                return False
            job.lease_expires = now + self.lease_ttl
            self._append(
                {
                    "event": "heartbeat",
                    "job": job_id,
                    "expires": job.lease_expires,
                },
                durable=False,
            )
            return True

    def finish(self, job_id: str, outcome: str) -> None:
        """Terminal success path (also used for cancellations)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            job.state = LEASE_FINISHED
            job.worker = None
            job.lease_expires = None
            job.outcome = outcome
            self._append({"event": "finished", "job": job_id, "outcome": outcome})

    def fail_attempt(
        self, job_id: str, error: str, now: float | None = None
    ) -> str | None:
        """One attempt failed (worker died, crashed, or its lease expired).

        Returns the job's new state — re-queued with exponential backoff,
        or ``dead_letter`` once the retry budget (``max_attempts``) is
        spent.  ``None`` if the job is unknown or already terminal.
        """
        now = time.time() if now is None else now
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return None
            job.worker = None
            job.lease_expires = None
            job.last_error = error
            if job.attempts >= self.max_attempts:
                job.state = LEASE_DEAD_LETTER
                self._counters["dead_letters"] += 1
                self._append({"event": "dead_letter", "job": job_id, "error": error})
                return LEASE_DEAD_LETTER
            backoff = min(
                self.backoff_cap,
                self.backoff_base * (2 ** max(0, job.attempts - 1)),
            )
            job.state = LEASE_PENDING
            job.not_before = now + backoff
            self._counters["requeues"] += 1
            self._append(
                {
                    "event": "requeued",
                    "job": job_id,
                    "reason": "attempt failed",
                    "error": error,
                    "attempt": job.attempts,
                    "not_before": job.not_before,
                }
            )
            return LEASE_PENDING

    def requeue_for_restart(self, job_id: str, reason: str = "shutdown") -> bool:
        """Re-queue a leased job without charging its retry budget.

        The drain path: the daemon is going away, not the job — the
        in-flight attempt is refunded so the next process retries it
        immediately.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != LEASE_LEASED:
                return False
            job.state = LEASE_PENDING
            job.worker = None
            job.lease_expires = None
            job.not_before = 0.0
            job.attempts = max(0, job.attempts - 1)
            self._append(
                {
                    "event": "requeued",
                    "job": job_id,
                    "reason": reason,
                    "attempt": job.attempts,
                    "not_before": 0.0,
                }
            )
            return True

    def expired(self, now: float | None = None) -> list[LedgerJob]:
        """Leased jobs whose TTL has lapsed (missed heartbeats).

        Read-only: the supervisor decides what expiry means (kill the
        worker, then :meth:`fail_attempt`).  Each expiry is counted once
        here; the job's ``lease_expires`` is cleared so a slow
        supervisor loop doesn't double-count it.
        """
        now = time.time() if now is None else now
        with self._lock:
            lapsed = []
            for job in self._jobs.values():
                if (
                    job.state == LEASE_LEASED
                    and job.lease_expires is not None
                    and job.lease_expires < now
                ):
                    job.lease_expires = None
                    self._counters["leases_expired"] += 1
                    lapsed.append(job)
            return lapsed

    def deadline_expired(self, now: float | None = None) -> list[LedgerJob]:
        """Finish pending jobs whose end-to-end deadline has passed.

        A job past its deadline when it *would* be claimed fails fast:
        it moves straight to FINISHED with outcome ``"deadline"`` —
        never leased, so zero mapper invocations and zero retry-budget
        charge.  Returns the swept jobs so the supervisor can mirror the
        terminal state into the client-facing registry.
        """
        now = time.time() if now is None else now
        with self._lock:
            swept = []
            for job in self._jobs.values():
                if (
                    job.state == LEASE_PENDING
                    and job.deadline_at is not None
                    and job.deadline_at <= now
                ):
                    job.state = LEASE_FINISHED
                    job.worker = None
                    job.lease_expires = None
                    job.outcome = "deadline"
                    self._counters["deadline_expired"] += 1
                    self._append(
                        {"event": "finished", "job": job.id, "outcome": "deadline"}
                    )
                    swept.append(job)
            return swept

    # -- inspection ----------------------------------------------------
    def get(self, job_id: str) -> LedgerJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[LedgerJob]:
        with self._lock:
            return list(self._jobs.values())

    def dead_letters(self) -> list[LedgerJob]:
        with self._lock:
            return [
                job for job in self._jobs.values() if job.state == LEASE_DEAD_LETTER
            ]

    def depth(self) -> int:
        """Jobs still owed work (pending + leased)."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if not job.terminal)

    def lane_snapshot(self, now: float | None = None) -> dict[str, dict]:
        """Per-lane pending depth and oldest wait, for ``/metrics``."""
        now = time.time() if now is None else now
        with self._lock:
            body: dict[str, dict] = {
                lane: {"depth": 0, "oldest_wait": None} for lane in PRIORITIES
            }
            for job in self._jobs.values():
                if job.state != LEASE_PENDING:
                    continue
                lane = body.get(job.priority)
                if lane is None:
                    continue
                lane["depth"] += 1
                waited = now - job.enqueued_at
                if lane["oldest_wait"] is None or waited > lane["oldest_wait"]:
                    lane["oldest_wait"] = waited
            return body

    def pending_snapshot(self) -> list[LedgerJob]:
        """Pending jobs (shed picker input); callers must not mutate."""
        with self._lock:
            return [
                job for job in self._jobs.values() if job.state == LEASE_PENDING
            ]

    def counts(self) -> dict:
        """Per-state totals plus lifetime lease/retry counters."""
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {"by_state": by_state, **self._counters}

    def close(self, timeout: float | None = 10.0) -> None:
        if self._journal is not None:
            self._journal.close(timeout=timeout)

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
