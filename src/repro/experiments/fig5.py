"""Fig. 5 reproduction: SNU route optimization, homogeneous target.

Takes each network's area-optimal homogeneous solution, freezes its
enabled-crossbar set, and minimizes global routes (objective 11).  The
paper observes 9.2-26.9% route reduction with no area increase;
improvement is relative to the most-area-optimal solution the solver
found.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.metrics import improvement_pct
from ..mapping.problem import MappingProblem
from .common import ExhibitResult, batch_pipeline_records, homo_problem
from .networks import NETWORK_NAMES, paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class SnuRow:
    """Route counts before/after SNU over a frozen crossbar set."""

    network: str
    area: float
    routes_before: int
    routes_after: int
    det_time: float

    @property
    def improvement(self) -> float:
        if self.routes_before == 0:
            return 0.0
        return improvement_pct(self.routes_before, self.routes_after)


def snu_rows(
    named_problems: list[tuple[str, MappingProblem]], config: ExperimentConfig
) -> list[SnuRow]:
    """Shared Fig. 5 / Fig. 6 protocol: area -> SNU over each instance.

    The whole sweep runs through the batch engine, so ``config.jobs`` and
    ``config.portfolio`` parallelize and harden it without changing the
    serial (default) results.
    """
    records = batch_pipeline_records(named_problems, config, stages=("area", "snu"))
    rows: list[SnuRow] = []
    for name, _ in named_problems:
        area_stage = records[name].stages["area"]
        snu_stage = records[name].stages["snu"]
        assert snu_stage.mapping.area() <= area_stage.mapping.area() + 1e-9
        rows.append(
            SnuRow(
                network=name,
                area=area_stage.mapping.area(),
                routes_before=area_stage.mapping.global_routes(),
                routes_after=snu_stage.mapping.global_routes(),
                det_time=snu_stage.det_time,
            )
        )
    return rows


def snu_over_area_optimal(
    name: str, problem: MappingProblem, config: ExperimentConfig
) -> SnuRow:
    """One (network, target) pair through the same batched protocol."""
    return snu_rows([(name, problem)], config)[0]


def run_fig5(config: ExperimentConfig) -> ExhibitResult:
    named_problems = [
        (name, homo_problem(paper_network(name, scale=config.scale), config))
        for name in NETWORK_NAMES
    ]
    rows = snu_rows(named_problems, config)
    table_rows = [
        (
            r.network,
            r.area,
            r.routes_before,
            r.routes_after,
            round(r.improvement, 1),
        )
        for r in rows
    ]
    headers = ["Net", "Area", "Global routes (area-opt)", "Global routes (SNU)", "Gain %"]
    note = "paper shape: 9.2-26.9% route reduction at unchanged area (homogeneous)"
    return ExhibitResult(
        report=format_table(headers, table_rows) + "\n" + note,
        rows=table_rows,
    )
