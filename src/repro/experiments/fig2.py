"""Fig. 2 reproduction: area optimization across the four configurations.

For every network the paper compares MCC packing (SpikeHard, iterated to
convergence) against the axon-sharing formulation, each targeting the
homogeneous 16x16 pool and the Table-II heterogeneous pool.  Improvement
is reported relative to the network's best MCC-homogeneous result, and
solver effort (deterministic time) is recorded to reproduce the paper's
break-even discussion: axon sharing needs 2.5-13.2x more solver time than
MCC for homogeneous targets but only 0.15-3.73x for heterogeneous ones.

Expected shape (paper): axon sharing reduces area 16.7-27.6% over MCC on
homogeneous MCAs and a further 66.9-72.7% on heterogeneous MCAs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ilp.highs_backend import HighsOptions
from ..mapping.greedy import greedy_first_fit
from ..mapping.metrics import improvement_pct
from ..mapping.spikehard import iterate_spikehard
from .common import (
    ExhibitResult,
    area_optimize,
    het_problem,
    homo_problem,
    spikehard_problem,
)
from .networks import NETWORK_NAMES, paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class Fig2Row:
    """One network's four-configuration area comparison."""

    network: str
    mcc_homo_area: float
    axon_homo_area: float
    mcc_het_area: float
    axon_het_area: float
    mcc_homo_det: float
    axon_homo_det: float
    mcc_het_det: float
    axon_het_det: float

    @property
    def axon_homo_improvement(self) -> float:
        """Axon-sharing gain over the MCC-homogeneous baseline (%)."""
        return improvement_pct(self.mcc_homo_area, self.axon_homo_area)

    @property
    def axon_het_improvement(self) -> float:
        """Heterogeneous axon-sharing gain over the same baseline (%)."""
        return improvement_pct(self.mcc_homo_area, self.axon_het_area)

    @property
    def het_further_improvement(self) -> float:
        """Further reduction of het axon sharing over homo axon sharing (%)."""
        return improvement_pct(self.axon_homo_area, self.axon_het_area)

    @property
    def homo_breakeven(self) -> float:
        """Solver-effort ratio axon/MCC for the homogeneous target."""
        return self.axon_homo_det / max(self.mcc_homo_det, 1e-9)

    @property
    def het_breakeven(self) -> float:
        return self.axon_het_det / max(self.mcc_het_det, 1e-9)


def run_network(name: str, config: ExperimentConfig) -> Fig2Row:
    """All four configurations for one network."""
    network = paper_network(name, scale=config.scale)
    solver = HighsOptions(time_limit=config.area_time_limit)

    homo = homo_problem(network, config)
    het = het_problem(network, config)
    # SpikeHard gets its own (larger) pools: summed-input accounting can
    # need more slots than the exact formulation; enabled area is what is
    # compared, so pool size does not bias the comparison.
    sh_homo = spikehard_problem(network, config, heterogeneous=False)
    sh_het = spikehard_problem(network, config, heterogeneous=True)

    mcc_homo = iterate_spikehard(
        sh_homo, initial=greedy_first_fit(sh_homo), solver_options=solver
    )
    axon_homo = area_optimize(homo, config, warm=greedy_first_fit(homo))
    mcc_het = iterate_spikehard(
        sh_het, initial=greedy_first_fit(sh_het), solver_options=solver
    )
    axon_het = area_optimize(het, config, warm=greedy_first_fit(het))

    return Fig2Row(
        network=name,
        mcc_homo_area=mcc_homo.mapping.area(),
        axon_homo_area=axon_homo.mapping.area(),
        mcc_het_area=mcc_het.mapping.area(),
        axon_het_area=axon_het.mapping.area(),
        mcc_homo_det=mcc_homo.det_time,
        axon_homo_det=axon_homo.det_time,
        mcc_het_det=mcc_het.det_time,
        axon_het_det=axon_het.det_time,
    )


def run_fig2(config: ExperimentConfig) -> ExhibitResult:
    from functools import partial

    from ..batch.engine import parallel_map

    rows: list[Fig2Row] = parallel_map(
        partial(run_network, config=config), NETWORK_NAMES, jobs=config.jobs
    )
    headers = [
        "Net",
        "MCC-homo",
        "Axon-homo",
        "MCC-het",
        "Axon-het",
        "homo gain %",
        "het further %",
        "homo det x",
        "het det x",
    ]
    table_rows = [
        (
            r.network,
            r.mcc_homo_area,
            r.axon_homo_area,
            r.mcc_het_area,
            r.axon_het_area,
            round(r.axon_homo_improvement, 1),
            round(r.het_further_improvement, 1),
            round(r.homo_breakeven, 2),
            round(r.het_breakeven, 2),
        )
        for r in rows
    ]
    note = (
        "paper shape: homo gain 16.7-27.6%, het further 66.9-72.7%; "
        "det ratios homo 2.5-13.2x, het 0.15-3.73x"
    )
    return ExhibitResult(
        report=format_table(headers, table_rows) + "\n" + note,
        rows=table_rows,
    )
