"""Large-Neighborhood Search over the exact area ILP.

The paper observes (§V-E) that its solver finds near-best solutions
quickly and then refines slowly, and suggests research into "finding
optimal solutions more quickly".  LNS is the standard answer for exactly
this profile: repeatedly *destroy* part of the incumbent (free a random
subset of neurons) and *repair* it optimally with the same axon-sharing
ILP, fixing everything else.  Each repair is a small, fast MILP, so the
anytime curve improves far faster than the monolithic solve while every
intermediate solution remains valid.

Fixing is done through variable bounds: pinning ``x[i, j*] = 1`` for a
kept neuron forces its other placement variables to zero via constraint 3,
so the sub-MILP only decides the destroyed neurons (plus all ``s``/``y``
consequences — axon sharing stays exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ilp.highs_backend import HighsBackend, HighsOptions
from .axon_sharing import AreaModel, FormulationOptions, x_name
from .delta import DeltaEvaluator
from .greedy import greedy_first_fit
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class LnsOptions:
    """Destroy/repair schedule."""

    rounds: int = 10
    destroy_fraction: float = 0.3  # share of neurons freed per round
    repair_time_limit: float = 3.0  # HiGHS seconds per repair
    seed: int = 0
    adaptive: bool = True  # grow the neighbourhood after stalls
    #: Assert delta-evaluated objectives against full re-evaluation after
    #: every applied move (slow; tests and debugging only).
    verify_deltas: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < self.destroy_fraction <= 1.0:
            raise ValueError("destroy_fraction must be in (0, 1]")
        if self.repair_time_limit <= 0:
            raise ValueError("repair_time_limit must be positive")


@dataclass
class LnsResult:
    """Best mapping plus the per-round anytime trace."""

    mapping: Mapping
    history: list[tuple[int, float]] = field(default_factory=list)  # (round, area)
    repairs_improved: int = 0


def _repair(
    problem: MappingProblem,
    incumbent: Mapping,
    destroyed: set[int],
    time_limit: float,
) -> Mapping:
    """Optimally re-place ``destroyed`` with everything else pinned."""
    # Symmetry breaking must be off: pinned neurons already commit
    # specific slots, which canonical slot ordering could contradict.
    handle = AreaModel(
        problem, FormulationOptions(symmetry_breaking=False)
    )
    for i, j in incumbent.assignment.items():
        if i not in destroyed:
            handle.model.fix_var(x_name(i, j), 1.0)
    warm = handle.warm_start_from(incumbent)
    result = HighsBackend(HighsOptions(time_limit=time_limit)).solve(
        handle.model, warm_start=warm
    )
    return handle.extract_mapping(result)


def lns_area(
    problem: MappingProblem,
    initial: Mapping | None = None,
    options: LnsOptions | None = None,
) -> LnsResult:
    """Run the destroy/repair loop; the result is never worse than
    ``initial`` (each repair is warm-started with the incumbent)."""
    opts = options or LnsOptions()
    rng = np.random.default_rng(opts.seed)
    incumbent = initial if initial is not None else greedy_first_fit(problem)
    neurons = problem.network.neuron_ids()
    history: list[tuple[int, float]] = [(0, incumbent.area())]
    improved_count = 0
    fraction = opts.destroy_fraction
    stall = 0
    # The incumbent's objective is tracked incrementally: a repair is
    # scored by replaying only its changed placements through the delta
    # evaluator (O(affected slots)), not by re-evaluating the mapping.
    evaluator = DeltaEvaluator.from_mapping(
        incumbent, verify=opts.verify_deltas
    )

    for round_idx in range(1, opts.rounds + 1):
        size = max(1, int(round(fraction * len(neurons))))
        destroyed = set(
            int(i) for i in rng.choice(neurons, size=min(size, len(neurons)), replace=False)
        )
        repaired = _repair(problem, incumbent, destroyed, opts.repair_time_limit)
        before_area = evaluator.area()
        applied = [
            (i, evaluator.move(i, j))
            for i, j in repaired.assignment.items()
            if evaluator.slot_of(i) != j
        ]
        if evaluator.area() < before_area - 1e-9:
            incumbent = repaired
            improved_count += 1
            stall = 0
        else:
            for neuron, src in reversed(applied):
                evaluator.move(neuron, src)
            stall += 1
            if opts.adaptive and stall >= 2 and fraction < 1.0:
                # Widen the neighbourhood when small repairs stop paying.
                fraction = min(1.0, fraction * 1.5)
                stall = 0
        history.append((round_idx, evaluator.area()))

    issues = incumbent.validate()
    if issues:  # pragma: no cover - repairs are extract-validated
        raise AssertionError(f"LNS produced an invalid mapping: {issues}")
    return LnsResult(
        mapping=incumbent, history=history, repairs_improved=improved_count
    )
