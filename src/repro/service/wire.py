"""The service wire format: JSON job submissions and result payloads.

A client submits a job as one JSON object::

    {
      "format": 1,
      "scenario":  { ... Scenario.payload() ... },   # single scenario, or
      "scenarios": [ { ... }, ... ],                  # an ordered batch
      "tier": "ilp" | "greedy",                       # default "ilp"
      "time_limit": 10.0,                             # per-stage seconds
      "priority": "high" | "normal" | "batch",        # default "normal"
      "deadline_ms": 30000,                           # end-to-end budget
      "client": "team-a"                              # usually via header
    }

Scenario payloads are exactly what :meth:`repro.dse.scenario.Scenario.
payload` emits (and what the run store records), so anything the DSE
layer can sweep, a client can submit — the wire format is the scenario
registry's plain-data view, not a second schema.

Client identity normally rides the ``X-Repro-Client`` HTTP header (the
header wins over a ``client`` body key); it lives in the spec too so a
fleet re-queue or a journal replay keeps the job attributed to its
submitter.  ``deadline_ms`` is relative to submission: the absolute
deadline is ``submitted_at + deadline_ms / 1000`` wherever the job
travels.

Parsing is strict: unknown keys, malformed sections and invalid axis
values raise :class:`WireError` with a human-readable message that HTTP
handlers return verbatim as a 400 body — an unknown ``priority`` or a
negative/absurd ``deadline_ms`` fails at submit, never later as a
worker failure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..batch.queue import PRIORITIES, PRIORITY_NORMAL
from ..dse.explorer import ScenarioResult
from ..dse.scenario import Scenario, scenario_from_payload
from ..dse.store import TIER_GREEDY, TIER_ILP
from ..trace import valid_encoded as _valid_trace

#: Bump when the request/response schema changes incompatibly.
WIRE_FORMAT = 1

TIERS = (TIER_ILP, TIER_GREEDY)

#: Client id every unattributed submission is accounted under.
DEFAULT_CLIENT = "anonymous"

#: Job statuses a stream/poll ends on (client-visible terminal states).
TERMINAL_STATUSES = ("done", "error", "cancelled", "deadline", "shed")

#: Ceiling on ``deadline_ms``: anything past a day is a config error,
#: not a deadline — reject it at submit instead of scheduling it.
MAX_DEADLINE_MS = 24 * 60 * 60 * 1000

_JOB_KEYS = {
    "format",
    "scenario",
    "scenarios",
    "tier",
    "time_limit",
    "priority",
    "deadline_ms",
    "client",
    "trace",
}

_CLIENT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class WireError(ValueError):
    """A malformed submission (maps to HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """One parsed submission: scenarios to score at a tier."""

    scenarios: tuple[Scenario, ...]
    tier: str = TIER_ILP
    time_limit: float | None = None
    priority: str = PRIORITY_NORMAL
    deadline_ms: int | None = None
    client: str = DEFAULT_CLIENT
    #: Encoded trace context (``trace_id:span_id``), usually minted at
    #: accept from the ``X-Repro-Trace`` header.  Living in the spec means
    #: a fleet re-queue or journal replay keeps the job's trace identity.
    trace: str | None = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise WireError("a job needs at least one scenario")
        if self.tier not in TIERS:
            raise WireError(f"unknown tier {self.tier!r}; choose from {TIERS}")
        if self.time_limit is not None and self.time_limit <= 0:
            raise WireError("time_limit must be positive")
        if self.priority not in PRIORITIES:
            raise WireError(
                f"unknown priority {self.priority!r}; choose from {PRIORITIES}"
            )
        if self.deadline_ms is not None:
            if (
                isinstance(self.deadline_ms, bool)
                or not isinstance(self.deadline_ms, int)
            ):
                raise WireError(
                    "deadline_ms must be an integer number of milliseconds, "
                    f"got {self.deadline_ms!r}"
                )
            if self.deadline_ms <= 0:
                raise WireError(
                    f"deadline_ms must be positive, got {self.deadline_ms}"
                )
            if self.deadline_ms > MAX_DEADLINE_MS:
                raise WireError(
                    f"deadline_ms {self.deadline_ms} exceeds the "
                    f"{MAX_DEADLINE_MS} ms (24 h) ceiling"
                )
        if not isinstance(self.client, str) or not _CLIENT_PATTERN.match(
            self.client
        ):
            raise WireError(
                "client must be 1-64 characters of [A-Za-z0-9._-] "
                f"starting alphanumeric, got {self.client!r}"
            )
        if self.trace is not None and (
            not isinstance(self.trace, str) or not _valid_trace(self.trace)
        ):
            raise WireError(
                "trace must be '<trace-id>:<span-id>' (lowercase hex), "
                f"got {self.trace!r}"
            )

    def payload(self) -> dict:
        """The submission body that parses back into this spec.

        Default-valued fields are omitted, so pre-existing payloads (and
        everything journaled before these fields existed) stay
        bit-identical.
        """
        body: dict = {
            "format": WIRE_FORMAT,
            "scenarios": [scenario.payload() for scenario in self.scenarios],
            "tier": self.tier,
        }
        if self.time_limit is not None:
            body["time_limit"] = self.time_limit
        if self.priority != PRIORITY_NORMAL:
            body["priority"] = self.priority
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        if self.client != DEFAULT_CLIENT:
            body["client"] = self.client
        if self.trace is not None:
            body["trace"] = self.trace
        return body


def parse_job(payload: object) -> JobSpec:
    """Parse one ``POST /jobs`` body into a :class:`JobSpec`."""
    if not isinstance(payload, dict):
        raise WireError(f"job submission must be a JSON object, got {payload!r}")
    unknown = set(payload) - _JOB_KEYS
    if unknown:
        raise WireError(f"unknown submission keys {sorted(unknown)}")
    fmt = payload.get("format", WIRE_FORMAT)
    if fmt != WIRE_FORMAT:
        raise WireError(f"unsupported wire format {fmt!r} (this server: {WIRE_FORMAT})")
    # An explicit null is treated as absent, so {"scenarios": null} fails
    # the exclusivity check instead of crashing the handler.
    single = payload.get("scenario")
    many = payload.get("scenarios")
    if (single is None) == (many is None):
        raise WireError("submit exactly one of 'scenario' or 'scenarios'")
    raw = many if many is not None else [single]
    if not isinstance(raw, list):
        raise WireError(f"'scenarios' must be a list, got {raw!r}")
    scenarios = []
    for position, entry in enumerate(raw):
        try:
            scenarios.append(scenario_from_payload(entry))
        except ValueError as exc:
            raise WireError(f"scenario[{position}]: {exc}") from None
    time_limit = payload.get("time_limit")
    if time_limit is not None:
        try:
            time_limit = float(time_limit)
        except (TypeError, ValueError):
            raise WireError(f"time_limit must be a number, got {time_limit!r}") from None
    priority = payload.get("priority", PRIORITY_NORMAL)
    if not isinstance(priority, str):
        raise WireError(
            f"priority must be one of {PRIORITIES}, got {priority!r}"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and isinstance(deadline_ms, float):
        # JSON decoders may hand an integral float; a fractional one is
        # a caller bug worth naming, not silently truncating.
        if not deadline_ms.is_integer():
            raise WireError(
                "deadline_ms must be an integer number of milliseconds, "
                f"got {deadline_ms!r}"
            )
        deadline_ms = int(deadline_ms)
    try:
        return JobSpec(
            scenarios=tuple(scenarios),
            tier=payload.get("tier", TIER_ILP),
            time_limit=time_limit,
            priority=priority,
            deadline_ms=deadline_ms,
            client=payload.get("client", DEFAULT_CLIENT),
            trace=payload.get("trace"),
        )
    except WireError:
        raise
    except ValueError as exc:  # a spec's own validation
        raise WireError(str(exc)) from None


def result_payload(result: ScenarioResult) -> dict:
    """One scenario result as a wire/stream dict.

    ``cached`` is true when the evaluation cost zero new solves because a
    shared component already knew the answer — the run store (resume) or
    the batch engine's result cache.
    """
    return {
        "scenario": result.scenario.name,
        "fingerprint": result.fingerprint,
        "tier": result.tier,
        "status": result.status,
        "objectives": result.objectives.as_dict() if result.objectives else None,
        "assignment": (
            {str(i): j for i, j in sorted(result.assignment.items())}
            if result.assignment is not None
            else None
        ),
        "solves": result.solves,
        # Greedy evaluations never solve, so zero solves only signals a
        # cache/store hit at the ILP tier.
        "cached": bool(
            result.from_store
            or (result.tier == TIER_ILP and result.ok and result.solves == 0)
        ),
        "wall_time": result.wall_time,
        "error": result.error,
    }
