"""The paper's core ILP formulation (Section IV-A/B).

Variables (all binary):

- ``x[i, j]`` — neuron ``i``'s output line is on crossbar ``j``;
- ``s[k, j]`` — crossbar ``j`` receives neuron ``k`` as an axonal input
  (created only for *source* neurons, those with fan-out > 0);
- ``y[j]`` — crossbar ``j`` is enabled.

Constraints (paper numbering):

- (3) every neuron is placed exactly once;
- (4) outputs per crossbar within ``N_j``, gated by ``y[j]``;
- (5) ``s[k, j] <= sum_{i in succ(k)} x[i, j]`` — an axon is only routed
  where some consumer lives;
- (6) ``s[k, j] >= x[i, j]`` for every synapse ``k -> i`` — placing a
  consumer forces the axon (this is the axon-*sharing* modelling: one
  ``s`` no matter how many consumers share the word-line);
- (7) distinct axon inputs per crossbar within ``A_j``, gated by ``y[j]``.

Objective (8): ``min sum_j y[j] * C_j``.

Options cover the ablations DESIGN.md calls out: symmetry breaking between
identical slots, aggregated vs. per-edge form of constraint 6, inclusion
of the (never-binding under these objectives) upper link (5), and
warm-start construction from any valid mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ilp.expr import Variable, lin_sum
from ..ilp.model import Model
from ..ilp.result import SolveResult
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class FormulationOptions:
    """Tunable aspects of the area formulation (defaults = paper-faithful)."""

    symmetry_breaking: bool = True
    disaggregate_sharing: bool = True  # per-edge constraint 6 (tighter LP)
    include_upper_link: bool = True  # constraint 5
    order_enabled_slots: bool = True  # y_j >= y_{j+1} within identical groups

    def fingerprint(self) -> str:
        """Process-stable content fingerprint of these options."""
        from .fingerprint import options_fingerprint

        return options_fingerprint(self)


def x_name(i: int, j: int) -> str:
    return f"x_{i}_{j}"


def s_name(k: int, j: int) -> str:
    return f"s_{k}_{j}"


def y_name(j: int) -> str:
    return f"y_{j}"


def b_name(k: int, j: int) -> str:
    return f"b_{k}_{j}"


class AreaModel:
    """The lowered area-optimization ILP plus its variable handles."""

    def __init__(
        self,
        problem: MappingProblem,
        options: FormulationOptions | None = None,
    ) -> None:
        self.problem = problem
        self.options = options or FormulationOptions()
        self.model = Model("area")
        self.x: dict[tuple[int, int], Variable] = {}
        self.s: dict[tuple[int, int], Variable] = {}
        self.y: dict[int, Variable] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        prob = self.problem
        model = self.model
        opts = self.options
        neurons = prob.network.neuron_ids()
        slots = range(prob.num_slots)
        sources = prob.sources()

        for j in slots:
            self.y[j] = model.add_binary(y_name(j))
        for i in neurons:
            for j in slots:
                self.x[(i, j)] = model.add_binary(x_name(i, j))
        for k in sources:
            for j in slots:
                self.s[(k, j)] = model.add_binary(s_name(k, j))

        # (3) each neuron's output maps to exactly one crossbar.
        for i in neurons:
            model.add(
                lin_sum(self.x[(i, j)] for j in slots) == 1,
                name=f"place_{i}",
            )

        # (4) output-line capacity, gated by the enable variable.
        for j in slots:
            slot = prob.architecture.slot(j)
            model.add(
                lin_sum(self.x[(i, j)] for i in neurons)
                <= slot.outputs * self.y[j],
                name=f"outputs_{j}",
            )

        # (6) axon sharing: any consumer of k on j forces s[k, j].
        if opts.disaggregate_sharing:
            for k, i in prob.edges():
                for j in slots:
                    model.add(
                        self.s[(k, j)] >= self.x[(i, j)],
                        name=f"share_{k}_{i}_{j}",
                    )
        else:
            # Aggregated form: |succ(k)| * s[k, j] >= sum of consumers on j.
            for k in sources:
                succ = prob.succs(k)
                for j in slots:
                    model.add(
                        len(succ) * self.s[(k, j)]
                        >= lin_sum(self.x[(i, j)] for i in sorted(succ)),
                        name=f"share_agg_{k}_{j}",
                    )

        # (5) upper link: the axon may only be routed where a consumer is.
        if opts.include_upper_link:
            for k in sources:
                succ = sorted(prob.succs(k))
                for j in slots:
                    model.add(
                        self.s[(k, j)]
                        <= lin_sum(self.x[(i, j)] for i in succ),
                        name=f"uplink_{k}_{j}",
                    )

        # (7) input-line (word-line) capacity with true axon sharing.
        for j in slots:
            slot = prob.architecture.slot(j)
            model.add(
                lin_sum(self.s[(k, j)] for k in sources)
                <= slot.inputs * self.y[j],
                name=f"inputs_{j}",
            )

        # Symmetry breaking: identical slots are interchangeable; force
        # enabled ones to be the lowest-indexed of each group.  Cheap rows
        # that cut the search space by the product of group factorials.
        if opts.symmetry_breaking and opts.order_enabled_slots:
            for group in prob.architecture.identical_slot_groups():
                for a, b in zip(group, group[1:]):
                    model.add(
                        self.y[a] >= self.y[b], name=f"sym_{a}_{b}"
                    )

        # (8) minimize enabled area.
        model.minimize(
            lin_sum(
                prob.architecture.slot(j).area * self.y[j] for j in slots
            )
        )

    # ------------------------------------------------------------------
    def warm_start_from(self, mapping: Mapping) -> dict[str, float]:
        """Variable assignment (x, s, y all consistent) for a valid mapping.

        With symmetry breaking enabled the mapping is first canonicalized:
        enabled slots are compacted to the lowest indices of their identical
        groups, preserving validity and objective value.
        """
        canonical = (
            canonicalize_mapping(mapping)
            if self.options.symmetry_breaking
            else mapping
        )
        values: dict[str, float] = {}
        for i, j in canonical.assignment.items():
            values[x_name(i, j)] = 1.0
        for j in canonical.enabled_slots():
            values[y_name(j)] = 1.0
            for k in canonical.axon_inputs(j):
                values[s_name(k, j)] = 1.0
        return values

    def extract_mapping(self, result: SolveResult) -> Mapping:
        """Recover the neuron placement from a solve result."""
        if not result.status.has_solution() or result.values is None:
            raise ValueError(f"no solution to extract (status {result.status})")
        return self.mapping_from_values(result.values)

    def mapping_from_values(self, values: dict[str, float]) -> Mapping:
        """Recover a placement from a raw variable assignment (e.g. one
        incumbent of a solve trace)."""
        assignment: dict[int, int] = {}
        for (i, j), var in self.x.items():
            if values.get(var.name, 0.0) > 0.5:
                if i in assignment:
                    raise ValueError(f"neuron {i} placed twice in ILP solution")
                assignment[i] = j
        mapping = Mapping(self.problem, assignment)
        issues = mapping.validate()
        if issues:
            raise AssertionError(f"ILP produced an invalid mapping: {issues[:3]}")
        return mapping


def canonicalize_mapping(mapping: Mapping) -> Mapping:
    """Relocate enabled slots to the lowest indices within identical groups.

    Produces an equivalent mapping (same area, routes and packets) that
    satisfies the ``y_a >= y_b`` symmetry-breaking order.
    """
    arch = mapping.problem.architecture
    relocation: dict[int, int] = {}
    enabled = set(mapping.enabled_slots())
    for group in arch.identical_slot_groups():
        used = [j for j in group if j in enabled]
        for new_j, old_j in zip(group, used):
            relocation[old_j] = new_j
    assignment = {i: relocation[j] for i, j in mapping.assignment.items()}
    return Mapping(mapping.problem, assignment)


def build_area_model(
    problem: MappingProblem, options: FormulationOptions | None = None
) -> AreaModel:
    """Convenience constructor mirroring the other formulation builders."""
    return AreaModel(problem, options)
