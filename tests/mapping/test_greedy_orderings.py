"""Deeper tests of the greedy packer's ordering strategies and summaries."""

import pytest

from repro.mapping.greedy import _bfs_order, greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import layered_network, random_network


@pytest.fixture
def problem():
    net = random_network(18, 36, seed=61, max_fan_in=6)
    arch = heterogeneous_architecture(
        18,
        types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8)],
        max_slots_per_type=8,
    )
    return MappingProblem(net, arch)


class TestBfsOrder:
    def test_visits_every_neuron_once(self, problem):
        order = _bfs_order(problem)
        assert sorted(order) == problem.network.neuron_ids()

    def test_starts_at_max_degree(self, problem):
        net = problem.network
        order = _bfs_order(problem)
        degrees = {i: net.fan_in(i) + net.fan_out(i) for i in net.neuron_ids()}
        assert degrees[order[0]] == max(degrees.values())

    def test_covers_disconnected_components(self):
        net = layered_network([3, 3], connection_prob=1.0, seed=0)
        # Add an isolated neuron: BFS must still reach it.
        net.add_neuron(99)
        compact, _ = net.compact()
        arch = heterogeneous_architecture(compact.num_neurons)
        order = _bfs_order(MappingProblem(compact, arch))
        assert sorted(order) == compact.neuron_ids()


class TestOrderingQuality:
    def test_bfs_not_worse_than_id_on_locality(self, problem):
        """BFS keeps neighbourhoods together, which should not produce
        MORE global routes than arbitrary id order on this fixture."""
        bfs = greedy_first_fit(problem, order="bfs")
        by_id = greedy_first_fit(problem, order="id")
        assert bfs.global_routes() <= by_id.global_routes() * 1.5

    def test_fan_in_order_valid_and_complete(self, problem):
        mapping = greedy_first_fit(problem, order="fan_in")
        assert mapping.is_valid()
        assert len(mapping.assignment) == problem.num_neurons


class TestSummaries:
    def test_summary_mentions_histogram(self, problem):
        mapping = greedy_first_fit(problem)
        text = mapping.summary()
        for label, count in mapping.crossbar_histogram().items():
            assert f"{count}x{label}" in text

    def test_histogram_counts_sum_to_enabled(self, problem):
        mapping = greedy_first_fit(problem)
        hist = mapping.crossbar_histogram()
        assert sum(hist.values()) == len(mapping.enabled_slots())
