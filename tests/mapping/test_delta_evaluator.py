"""Delta-evaluated objectives must equal full re-evaluation, move by move.

The DeltaEvaluator underpins local search and LNS acceptance decisions;
any drift between its incremental ``(area, global routes)`` and a
from-scratch :class:`Mapping` evaluation silently corrupts the search.
Every test here checks the equality after *each* individual move.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.delta import DeltaEvaluator
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.lns import LnsOptions, lns_area
from repro.mapping.local_search import LocalSearchOptions, local_search
from repro.mapping.problem import MappingProblem
from repro.mapping.solution import Mapping
from repro.mca.architecture import (
    heterogeneous_architecture,
    homogeneous_architecture,
)
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


def _random_problem(seed: int) -> MappingProblem:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 16))
    m = int(rng.integers(n, 2 * n + 1))
    net = random_network(n, m, seed=seed, max_fan_in=5)
    arch = homogeneous_architecture(n, dimension=8, slack=2.0)
    return MappingProblem(net, arch)


class TestDeltaVsFull:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 400))
    def test_random_move_sequences(self, seed):
        problem = _random_problem(seed)
        rng = np.random.default_rng(seed + 1)
        assignment = {
            i: int(rng.integers(problem.num_slots))
            for i in problem.network.neuron_ids()
        }
        evaluator = DeltaEvaluator(problem, assignment)
        neurons = problem.network.neuron_ids()
        for _ in range(40):
            neuron = int(rng.choice(neurons))
            dst = int(rng.integers(problem.num_slots))
            evaluator.move(neuron, dst)
            # Full re-derivation after *every* move.
            evaluator.assert_consistent()
        rebuilt = evaluator.to_mapping()
        assert evaluator.area() == rebuilt.area()
        assert evaluator.global_routes() == rebuilt.global_routes()

    def test_move_returns_previous_slot_and_undo_restores(self):
        problem = _random_problem(3)
        base = greedy_first_fit(problem)
        evaluator = DeltaEvaluator.from_mapping(base)
        before = evaluator.score()
        neuron = problem.network.neuron_ids()[0]
        src = evaluator.move(neuron, (base.assignment[neuron] + 1) % problem.num_slots)
        assert src == base.assignment[neuron]
        evaluator.move(neuron, src)
        assert evaluator.score() == before
        assert evaluator.assignment() == base.assignment

    def test_noop_move_is_free(self):
        problem = _random_problem(4)
        evaluator = DeltaEvaluator.from_mapping(greedy_first_fit(problem))
        neuron = problem.network.neuron_ids()[0]
        before = evaluator.score()
        assert evaluator.move(neuron, evaluator.slot_of(neuron)) == evaluator.slot_of(neuron)
        assert evaluator.score() == before

    def test_feasibility_matches_mapping_validate(self):
        problem = _random_problem(5)
        rng = np.random.default_rng(9)
        # Cram everything into few slots to force violations.
        assignment = {
            i: int(rng.integers(2)) for i in problem.network.neuron_ids()
        }
        evaluator = DeltaEvaluator(problem, assignment)
        mapping = Mapping(problem, assignment)
        bad_slots = {
            int(msg.split()[1]) for msg in mapping.validate()
        }
        for j in evaluator.occupied_slots():
            assert evaluator.slot_feasible(j) == (j not in bad_slots)

    def test_self_loop_locality(self):
        """A neuron feeding itself: the route is local wherever it lives."""
        from repro.snn.network import Network
        from repro.mca.architecture import custom_architecture

        net = Network("loop")
        net.add_neuron(0)
        net.add_neuron(1)
        net.add_synapse(0, 0)
        net.add_synapse(0, 1)
        arch = custom_architecture([(CrossbarType(4, 4), 3)])
        problem = MappingProblem(net, arch)
        evaluator = DeltaEvaluator(problem, {0: 0, 1: 0}, verify=True)
        evaluator.move(0, 1)
        evaluator.move(1, 2)
        evaluator.move(0, 2)
        evaluator.move(0, 0)
        assert evaluator.to_mapping().is_valid()


class TestSearchConsultsDeltas:
    def test_local_search_verified_move_by_move(self):
        net = random_network(20, 40, seed=21, max_fan_in=6)
        arch = heterogeneous_architecture(
            20,
            types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8)],
            max_slots_per_type=8,
        )
        problem = MappingProblem(net, arch)
        initial = greedy_first_fit(problem)
        # verify_deltas re-derives the objective from scratch after every
        # single move and asserts equality inside DeltaEvaluator.move.
        result = local_search(
            problem,
            initial,
            LocalSearchOptions(max_rounds=3, verify_deltas=True),
        )
        assert result.is_valid()
        assert (result.area(), result.global_routes()) <= (
            initial.area(),
            initial.global_routes(),
        )

    def test_local_search_same_result_with_and_without_verification(self):
        net = random_network(16, 32, seed=8, max_fan_in=5)
        problem = MappingProblem(
            net, homogeneous_architecture(16, dimension=8, slack=2.0)
        )
        plain = local_search(
            problem, options=LocalSearchOptions(max_rounds=4, seed=2)
        )
        checked = local_search(
            problem,
            options=LocalSearchOptions(max_rounds=4, seed=2, verify_deltas=True),
        )
        assert plain.assignment == checked.assignment

    def test_lns_verified_move_by_move(self):
        net = random_network(12, 24, seed=31, max_fan_in=5)
        problem = MappingProblem(
            net, homogeneous_architecture(12, dimension=8, slack=2.0)
        )
        result = lns_area(
            problem,
            options=LnsOptions(
                rounds=2, repair_time_limit=2.0, verify_deltas=True
            ),
        )
        assert result.mapping.is_valid()
        # Anytime history is non-increasing (LNS never accepts a worse repair).
        areas = [area for _, area in result.history]
        assert areas == sorted(areas, reverse=True)
        # The history values come from the delta evaluator; the final one
        # must equal the full evaluation of the returned mapping.
        assert areas[-1] == result.mapping.area()
