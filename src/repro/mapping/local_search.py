"""Iterative-swap local search over mappings (paper §V-E extension).

The paper's area-breakdown experiment observes that "preferred crossbar
sizes were clearly identified quickly before solutions were slowly
refined" and explicitly notes that "the iterative swapping approach in
[22] is validated with our data" as a route toward finding optimal
solutions faster.  This module implements that suggestion: a portfolio of
neighbourhood moves over complete mappings, usable standalone (anytime
optimizer) or as a high-quality warm start for the exact ILP.

Moves:

- **relocate**: move one neuron to another (possibly empty) slot;
- **swap**: exchange two neurons between slots;
- **drain**: try to empty the least-utilized enabled crossbar by
  relocating all its neurons elsewhere — the move that actually reduces
  area, mirroring how the ILP incumbents improve in Fig. 3a;
- **downsize**: migrate a whole crossbar's contents to a cheaper unused
  slot that still fits them (heterogeneous pools only).

The objective is lexicographic ``(area, global routes)``, matching the
paper's area-then-SNU pipeline.  All candidate moves are scored through
the incremental :class:`~repro.mapping.delta.DeltaEvaluator` — O(affected
slots) per trial instead of a full O(V + E) re-evaluation — which is what
lets a round visit every (neuron, slot) pair at interactive speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .delta import DeltaEvaluator
from .greedy import greedy_first_fit
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class LocalSearchOptions:
    """Search budget and behaviour."""

    max_rounds: int = 30
    seed: int = 0
    allow_drain: bool = True
    allow_downsize: bool = True
    allow_swap: bool = True
    #: Re-derive the objective from scratch after *every* move and assert
    #: it matches the incremental value (slow; tests and debugging only).
    verify_deltas: bool = False


def _try_relocate(state: DeltaEvaluator, neuron: int, dst: int) -> bool:
    """Commit the move iff it keeps both slots feasible and improves."""
    src = state.slot_of(neuron)
    if src == dst:
        return False
    before = state.score()
    state.move(neuron, dst)
    if (
        state.slot_feasible(dst)
        and state.slot_feasible(src)
        and state.score() < before
    ):
        return True
    state.move(neuron, src)
    return False


def _try_swap(state: DeltaEvaluator, a: int, b: int) -> bool:
    ja, jb = state.slot_of(a), state.slot_of(b)
    if ja == jb:
        return False
    before = state.score()
    state.move(a, jb)
    state.move(b, ja)
    if (
        state.slot_feasible(ja)
        and state.slot_feasible(jb)
        and state.score() < before
    ):
        return True
    state.move(a, ja)
    state.move(b, jb)
    return False


def _try_drain(
    state: DeltaEvaluator, victim: int, rng: np.random.Generator
) -> bool:
    """Attempt to empty ``victim`` by relocating every member elsewhere."""
    group = sorted(state.members_of(victim))
    if not group:
        return False
    before = state.score()
    undo: list[tuple[int, int]] = []
    targets = sorted(j for j in state.occupied_slots() if j != victim)
    rng.shuffle(targets)
    for neuron in group:
        placed = False
        for dst in targets:
            state.move(neuron, dst)
            if state.slot_feasible(dst):
                undo.append((neuron, victim))
                placed = True
                break
            state.move(neuron, victim)
        if not placed:
            for neuron_back, src in undo:
                state.move(neuron_back, src)
            return False
    if state.score() < before:
        return True
    for neuron_back, src in undo:
        state.move(neuron_back, src)
    return False


def _try_downsize(state: DeltaEvaluator, j: int) -> bool:
    """Move slot j's whole population to a cheaper, unused, fitting slot."""
    group = state.members_of(j)
    if not group:
        return False
    arch = state.problem.architecture
    demand_in = state.inputs_used(j)
    current_area = arch.slot(j).area
    used = set(state.occupied_slots())
    candidates = [
        s for s in arch.slots
        if s.index not in used
        and s.area < current_area
        and s.outputs >= len(group)
        and s.inputs >= demand_in
    ]
    if not candidates:
        return False
    best = min(candidates, key=lambda s: (s.area, s.index))
    for neuron in sorted(group):
        state.move(neuron, best.index)
    return True


def local_search(
    problem: MappingProblem,
    initial: Mapping | None = None,
    options: LocalSearchOptions | None = None,
) -> Mapping:
    """Anytime lexicographic (area, global-routes) local search.

    Returns a valid mapping that is never worse than ``initial`` in the
    lexicographic objective.
    """
    opts = options or LocalSearchOptions()
    if opts.max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    rng = np.random.default_rng(opts.seed)
    base = initial if initial is not None else greedy_first_fit(problem)
    state = DeltaEvaluator.from_mapping(base, verify=opts.verify_deltas)
    neurons = problem.network.neuron_ids()

    for _ in range(opts.max_rounds):
        improved = False

        if opts.allow_downsize:
            for j in sorted(state.occupied_slots()):
                improved |= _try_downsize(state, j)

        if opts.allow_drain:
            # Attack the least-utilized crossbars first.
            occupied = [
                (state.outputs_used(j), j) for j in state.occupied_slots()
            ]
            for _, victim in sorted(occupied):
                improved |= _try_drain(state, victim, rng)

        for neuron in neurons:
            for dst in sorted(state.occupied_slots()):
                if _try_relocate(state, neuron, dst):
                    improved = True
                    break

        if opts.allow_swap:
            order = rng.permutation(len(neurons))
            for idx in range(0, len(order) - 1, 2):
                a, b = neurons[int(order[idx])], neurons[int(order[idx + 1])]
                improved |= _try_swap(state, a, b)

        if not improved:
            break

    mapping = state.to_mapping()
    issues = mapping.validate()
    if issues:  # pragma: no cover - every move is feasibility-checked
        raise AssertionError(f"local search broke validity: {issues}")
    return mapping
