"""Fingerprint-keyed result cache for batch mapping runs.

Stores the *payload* form of a finished job (plain JSON: per-stage
assignments plus solve summaries) keyed by the job fingerprint, so
repeated sweeps skip already-solved instances.  Two tiers:

- an in-memory dict, always on;
- an optional on-disk tier (one ``<fingerprint>.json`` per entry under a
  directory), surviving across processes and runs.

The cache never stores live :class:`~repro.mapping.solution.Mapping`
objects — payloads are rehydrated against the caller's problem instance,
which both keeps entries small and guarantees a hit returns a mapping
bound to the *caller's* network/architecture objects.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

#: Bump when the payload schema changes; stale on-disk entries are ignored.
CACHE_FORMAT = 1


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance.

    The counters are mutated concurrently by service worker threads, so
    every update goes through a mutex — bare ``+= 1`` increments are a
    read-modify-write race that silently drops counts under load.  Use
    :meth:`snapshot` to read a consistent triple (it holds the same
    lock, so ``hits + misses == lookups`` is exact even mid-hammer).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_store(self) -> None:
        with self._lock:
            self.stores += 1

    def reclassify_hit_as_miss(self) -> None:
        """Atomically turn one counted hit into a miss.

        The engine rejects a cache hit after the fact when the cached
        solve was produced under a smaller budget than the new request
        brings; both counters must move together or a concurrent
        snapshot sees a phantom lookup.
        """
        with self._lock:
            self.hits -= 1
            self.misses += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        """A lock-consistent view of every counter plus derived rates."""
        with self._lock:
            hits, misses, stores = self.hits, self.misses, self.stores
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "stores": stores,
            "lookups": lookups,
            "hit_rate": hits / lookups if lookups else 0.0,
        }


@dataclass
class ResultCache:
    """Two-tier (memory + optional directory) payload cache."""

    path: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: dict[str, dict] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = Path(self.path)
            self.path.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Payload for ``key``, or ``None`` on a miss (counted)."""
        payload = self._memory.get(key)
        if payload is None and self.path is not None:
            payload = self._read_disk(key)
            if payload is not None:
                self._memory[key] = payload
        if payload is None:
            self.stats.record_miss()
            return None
        self.stats.record_hit()
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store a JSON-serializable payload under ``key``."""
        self._memory[key] = payload
        self.stats.record_store()
        if self.path is not None:
            entry = {"format": CACHE_FORMAT, "key": key, "payload": payload}
            tmp = self._entry_path(key).with_suffix(".json.tmp")
            tmp.write_text(json.dumps(entry, sort_keys=True))
            tmp.replace(self._entry_path(key))  # atomic publish

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self.path is not None and self._entry_path(key).exists()
        )

    def __len__(self) -> int:
        if self.path is None:
            return len(self._memory)
        disk = {p.stem for p in self.path.glob("*.json")}
        return len(disk | set(self._memory))

    def clear(self) -> None:
        self._memory.clear()
        if self.path is not None:
            for entry in self.path.glob("*.json"):
                entry.unlink()

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.json"

    def _read_disk(self, key: str) -> dict | None:
        entry_path = self._entry_path(key)
        if not entry_path.exists():
            return None
        try:
            entry = json.loads(entry_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("format") != CACHE_FORMAT or entry.get("key") != key:
            return None
        return entry.get("payload")
