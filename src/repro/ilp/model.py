"""Declarative ILP model container and matrix lowering.

:class:`Model` plays the role PuLP / OR-Tools' CpModel played for the paper:
formulations are stated as named variables plus algebraic constraints, then
lowered once into sparse-matrix form for whichever backend solves them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from .expr import Constraint, LinExpr, Sense, Variable, VarType, lin_sum


class ObjectiveSense(enum.Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class MatrixForm:
    """A model lowered to ``min c.x  s.t.  lb <= A.x <= ub`` plus bounds.

    ``integrality`` follows :func:`scipy.optimize.milp` conventions
    (0 continuous, 1 integer).  ``offset`` is the constant dropped from the
    objective; add it back when reporting objective values.  ``sign`` is
    +1 for minimization models and -1 when a maximization objective was
    negated during lowering.
    """

    c: np.ndarray
    a_matrix: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    integrality: np.ndarray
    offset: float
    sign: float

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_rows(self) -> int:
        return self.a_matrix.shape[0]

    def objective_value(self, x: np.ndarray) -> float:
        """User-facing objective value of assignment ``x``."""
        return self.sign * (float(self.c @ x) + self.offset)


class Model:
    """An integer linear program under construction.

    Example
    -------
    >>> m = Model("demo")
    >>> x = m.add_binary("x")
    >>> y = m.add_binary("y")
    >>> m.add(x + y <= 1, name="at_most_one")
    >>> m.minimize(-x - 2 * y)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._vars: list[Variable] = []
        self._by_name: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense = ObjectiveSense.MINIMIZE

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        vartype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a variable; names must be unique."""
        if name in self._by_name:
            raise ValueError(f"duplicate variable name {name!r}")
        if lb > ub:
            raise ValueError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(name, len(self._vars), float(lb), float(ub), vartype)
        self._vars.append(var)
        self._by_name[name] = var
        return var

    def add_binary(self, name: str) -> Variable:
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def add_integer(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Variable:
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def add_continuous(
        self, name: str, lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def var(self, name: str) -> Variable:
        """Look up a variable by name."""
        return self._by_name[name]

    def has_var(self, name: str) -> bool:
        return name in self._by_name

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._vars)

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    # ------------------------------------------------------------------
    # constraints and objective
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with <=, >= or ==."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "Model.add expects a Constraint; build one with <=, >= or =="
            )
        if name:
            constraint.named(name)
        self._constraints.append(constraint)
        return constraint

    def add_all(self, constraints: Iterable[Constraint]) -> None:
        for con in constraints:
            self.add(con)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def minimize(self, expr) -> None:
        self._objective = lin_sum([expr])
        self._sense = ObjectiveSense.MINIMIZE

    def maximize(self, expr) -> None:
        self._objective = lin_sum([expr])
        self._sense = ObjectiveSense.MAXIMIZE

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._sense

    # ------------------------------------------------------------------
    # solution utilities
    # ------------------------------------------------------------------
    def fix_var(self, name: str, value: float) -> None:
        """Clamp a variable's bounds to a single value (e.g. freeze y_j)."""
        var = self._by_name[name]
        var.lb = float(value)
        var.ub = float(value)

    def values_by_index(self, values: Mapping[str, float]) -> dict[int, float]:
        """Convert a name-keyed assignment to an index-keyed one.

        Missing variables default to their lower bound, which matches how
        sparse warm starts are usually specified (only nonzeros listed).
        """
        out: dict[int, float] = {}
        for var in self._vars:
            out[var.index] = float(values.get(var.name, var.lb))
        return out

    def check_feasible(
        self, values: Mapping[str, float], tol: float = 1e-6
    ) -> list[str]:
        """Return human-readable violations of ``values`` (empty = feasible).

        Checks bounds, integrality and every constraint.  Used heavily by
        tests and by mapping validators.
        """
        by_index = self.values_by_index(values)
        violations: list[str] = []
        for var in self._vars:
            val = by_index[var.index]
            if val < var.lb - tol or val > var.ub + tol:
                violations.append(
                    f"variable {var.name}={val} outside [{var.lb}, {var.ub}]"
                )
            if var.is_integer() and abs(val - round(val)) > tol:
                violations.append(f"variable {var.name}={val} not integral")
        for pos, con in enumerate(self._constraints):
            if not con.satisfied(by_index, tol):
                label = con.name or f"#{pos}"
                violations.append(
                    f"constraint {label} violated: {con.expr.evaluate(by_index):g} "
                    f"{con.sense.value} 0"
                )
        return violations

    def objective_of(self, values: Mapping[str, float]) -> float:
        """Objective value of a name-keyed assignment."""
        return self._objective.evaluate(self.values_by_index(values))

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def lower(self) -> MatrixForm:
        """Lower the model to sparse-matrix form for the backends.

        Maximization is converted to minimization by negating the
        objective; :attr:`MatrixForm.sign` undoes this in reports.
        """
        n = len(self._vars)
        sign = 1.0 if self._sense is ObjectiveSense.MINIMIZE else -1.0

        c = np.zeros(n)
        for idx, coef in self._objective.coeffs.items():
            c[idx] = sign * coef
        offset = sign * self._objective.constant

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        row_lb = np.empty(len(self._constraints))
        row_ub = np.empty(len(self._constraints))
        for r, con in enumerate(self._constraints):
            for idx, coef in con.expr.coeffs.items():
                if coef != 0.0:
                    rows.append(r)
                    cols.append(idx)
                    data.append(coef)
            rhs = -con.expr.constant
            if con.sense is Sense.LE:
                row_lb[r], row_ub[r] = -np.inf, rhs
            elif con.sense is Sense.GE:
                row_lb[r], row_ub[r] = rhs, np.inf
            else:
                row_lb[r], row_ub[r] = rhs, rhs

        a_matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self._constraints), n)
        )
        var_lb = np.array([v.lb for v in self._vars])
        var_ub = np.array([v.ub for v in self._vars])
        integrality = np.array(
            [1 if v.is_integer() else 0 for v in self._vars], dtype=np.int8
        )
        # Note: MatrixForm.offset stores the minimized-form constant, so
        # objective_value computes sign * (c.x + offset) = original objective.
        return MatrixForm(
            c=c,
            a_matrix=a_matrix,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            integrality=integrality,
            offset=offset,
            sign=sign,
        )

    def stats(self) -> dict[str, int]:
        """Model size summary (variables by type, constraints, nonzeros)."""
        by_type = {t: 0 for t in VarType}
        for var in self._vars:
            by_type[var.vartype] += 1
        nnz = sum(len(c.expr.coeffs) for c in self._constraints)
        return {
            "binary": by_type[VarType.BINARY],
            "integer": by_type[VarType.INTEGER],
            "continuous": by_type[VarType.CONTINUOUS],
            "constraints": len(self._constraints),
            "nonzeros": nnz,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"[{s['binary']}b/{s['integer']}i/{s['continuous']}c], "
            f"cons={s['constraints']}, nnz={s['nonzeros']})"
        )
