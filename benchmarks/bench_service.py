"""Service/fleet bench: sharded store throughput and fleet wall-clock.

Two claims behind PR-7's crash-tolerant fleet, measured:

- **store** — the sharded run store keeps up with (and under contention
  beats) the legacy single-file layout: four concurrent writer processes
  spread their ``flock``s over the shards instead of serialising on one
  file, and resume loads ride the index sidecar instead of re-parsing
  every superseded line;
- **fleet** — a fleet of two worker processes finishes a batch of
  independent jobs in less wall-clock than one in-process worker thread,
  spawn overhead included (the recorded ``speedup`` tracks how much);
- **tracing** — end-to-end span tracing is cheap enough to leave on: the
  same batch runs traced and untraced (best of two each), and the
  recorded ``overhead_ratio`` must stay at or below
  ``MAX_TRACE_OVERHEAD``.

Emits ``BENCH_service.json`` at the **repo root** so both trajectories
are tracked across PRs alongside the other ``BENCH_*.json`` files.

Run:  pytest benchmarks/bench_service.py --benchmark-only
"""

import json
import multiprocessing
import tempfile
import time
from pathlib import Path

from bench_config import once
from repro.batch.cache import ResultCache
from repro.dse.explorer import Explorer
from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    WorkloadSpec,
)
from repro.dse.store import TIER_ILP, RunEntry, RunStore
from repro.service.daemon import MappingService
from repro.service.wire import JobSpec
from repro.service.worker import FleetConfig

#: Repo root (benchmarks/ is one level below it).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Store workload: each writer appends KEYS keys twice (the second write
#: supersedes the first, so resume has stale lines to skip).
WRITERS = 4
KEYS_PER_WRITER = 150
SHARDS = 8

#: Fleet workload: independent single-scenario jobs, each a real (0.5-4s)
#: ILP solve so process-spawn overhead doesn't dominate the comparison.
FLEET_SCENARIOS = (("C", 16), ("C", 18), ("A", 18), ("E", 18))
TIME_LIMIT = 15.0

#: The contention floor: sharded must not lose to single-file by more
#: than measurement noise (it usually wins outright).
MIN_STORE_RATIO = 0.9

#: Tracing workload: small real solves, re-run per mode on fresh
#: store/cache so both modes do identical solver work.
TRACE_SCENARIOS = (("C", 16), ("A", 18), ("E", 18))
TRACE_REPEATS = 2

#: The always-on budget: a traced batch may cost at most 5% more
#: wall-clock than the identical untraced batch.
MAX_TRACE_OVERHEAD = 1.05


def _entry(fingerprint: str, payload_version: int) -> RunEntry:
    return RunEntry(
        fingerprint=fingerprint,
        tier=TIER_ILP,
        scenario={"name": f"bench-{fingerprint[:8]}"},
        status="ok",
        objectives={"area": 1.0, "energy": 2.0, "latency": float(payload_version)},
        assignment={str(i): i for i in range(16)},
        solves=payload_version,
    )


def _writer_main(path: str, shards: int, writer: int, keys: int) -> None:
    with RunStore(path, shards=shards) if shards else RunStore(path) as store:
        for version in (1, 2):
            for index in range(keys):
                # Two versions of one key: same fingerprint, new payload,
                # so resume must pick winners among stale lines.
                fingerprint = f"{writer:02x}{index:06x}cafe0000"
                store.record(_entry(fingerprint, version))


def _hammer(path: Path, shards: int) -> dict:
    """Four processes, each appending its keys twice; returns timings."""
    ctx = multiprocessing.get_context("spawn")
    workers = [
        ctx.Process(
            target=_writer_main,
            args=(str(path), shards, writer, KEYS_PER_WRITER),
        )
        for writer in range(WRITERS)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    append_seconds = time.perf_counter() - started
    assert all(worker.exitcode == 0 for worker in workers)

    started = time.perf_counter()
    store = RunStore(path)  # a sharded dir's manifest self-identifies
    resume_seconds = time.perf_counter() - started
    entries = len(store)
    store.close()
    total_appends = WRITERS * KEYS_PER_WRITER * 2
    return {
        "appends": total_appends,
        "entries_resumed": entries,
        "append_seconds": append_seconds,
        "appends_per_second": total_appends / append_seconds,
        "resume_seconds": resume_seconds,
        "resumes_per_second": entries / max(resume_seconds, 1e-9),
    }


def _scenarios() -> list[Scenario]:
    return [
        Scenario(
            architecture=ArchitectureSpec(
                kind="homogeneous", dimension=dimension
            ),
            workload=WorkloadSpec(network=network, scale=0.3, profile="uniform"),
            formulation=FormulationSpec(stages=("area",)),
        )
        for network, dimension in FLEET_SCENARIOS
    ]


def _run_single(tmp: Path) -> float:
    explorer = Explorer(
        store=RunStore(tmp / "single-store.jsonl"),
        cache=ResultCache(),
        time_limit=TIME_LIMIT,
    )
    service = MappingService(explorer)
    service.start()
    started = time.perf_counter()
    jobs = [
        service.submit(
            JobSpec(scenarios=(scenario,), tier="ilp", time_limit=TIME_LIMIT)
        )
        for scenario in _scenarios()
    ]
    _wait_all(service, [job.id for job in jobs])
    elapsed = time.perf_counter() - started
    service.stop(wait=True)
    return elapsed


def _run_fleet(tmp: Path) -> float:
    config = FleetConfig(
        store_path=str(tmp / "fleet-store"),
        store_shards=SHARDS,
        cache_dir=str(tmp / "fleet-cache"),
        time_limit=TIME_LIMIT,
        heartbeat_interval=0.5,
        lease_ttl=30.0,
    )
    explorer = Explorer(
        store=RunStore(tmp / "fleet-store", shards=SHARDS),
        cache=ResultCache(),
        time_limit=TIME_LIMIT,
    )
    service = MappingService(
        explorer,
        fleet=2,
        ledger_path=tmp / "ledger.jsonl",
        fleet_config=config,
    )
    service.start()
    started = time.perf_counter()
    jobs = [
        service.submit(
            JobSpec(scenarios=(scenario,), tier="ilp", time_limit=TIME_LIMIT)
        )
        for scenario in _scenarios()
    ]
    _wait_all(service, [job.id for job in jobs])
    elapsed = time.perf_counter() - started
    service.stop(wait=True)
    return elapsed


def _trace_scenarios() -> list[Scenario]:
    return [
        Scenario(
            architecture=ArchitectureSpec(
                kind="homogeneous", dimension=dimension
            ),
            workload=WorkloadSpec(network=network, scale=0.3, profile="uniform"),
            formulation=FormulationSpec(stages=("area",)),
        )
        for network, dimension in TRACE_SCENARIOS
    ]


def _run_batch(tmp: Path, tag: str, trace_dir: Path | None) -> float:
    """One classic-service batch on a fresh store/cache; returns wall-clock."""
    explorer = Explorer(
        store=RunStore(tmp / f"{tag}-store.jsonl"),
        cache=ResultCache(),
        time_limit=TIME_LIMIT,
    )
    service = MappingService(explorer, trace_dir=trace_dir)
    service.start()
    started = time.perf_counter()
    jobs = [
        service.submit(
            JobSpec(scenarios=(scenario,), tier="ilp", time_limit=TIME_LIMIT)
        )
        for scenario in _trace_scenarios()
    ]
    _wait_all(service, [job.id for job in jobs])
    elapsed = time.perf_counter() - started
    service.stop(wait=True)
    return elapsed


def _trace_overhead(tmp: Path) -> dict:
    """Traced-vs-untraced wall-clock on identical work, best of N each.

    Runs alternate modes (untraced, traced, untraced, ...) so slow
    machine-wide drift hits both sides equally; the min per mode strips
    scheduler noise from what is fundamentally a deterministic batch.
    """
    untraced, traced = [], []
    from repro import trace as trace_mod

    for repeat in range(TRACE_REPEATS):
        untraced.append(_run_batch(tmp, f"plain-{repeat}", None))
        traced.append(
            _run_batch(tmp, f"traced-{repeat}", tmp / f"trace-{repeat}")
        )
        # The classic service installs a process-global runtime; drop it
        # between repeats so untraced runs really are untraced.
        trace_mod.uninstall()
    spans = len(trace_mod.read_trace_dir(tmp / "trace-0"))
    return {
        "jobs": len(TRACE_SCENARIOS),
        "repeats": TRACE_REPEATS,
        "untraced_seconds": min(untraced),
        "traced_seconds": min(traced),
        "overhead_ratio": min(traced) / min(untraced),
        "records_per_batch": spans,
        "max_overhead": MAX_TRACE_OVERHEAD,
    }


def _wait_all(service, job_ids, timeout: float = 300.0) -> None:
    deadline = time.monotonic() + timeout
    for job_id in job_ids:
        while True:
            job = service.registry.get(job_id)
            if job is not None and job.finished:
                assert job.status == "done", f"{job_id}: {job.error}"
                break
            if time.monotonic() > deadline:
                raise AssertionError(f"{job_id} unfinished after {timeout}s")
            time.sleep(0.05)


def _run_bench() -> dict:
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        single = _hammer(tmp / "single.jsonl", shards=0)
        sharded = _hammer(tmp / "sharded-store", shards=SHARDS)
        single_wall = _run_single(tmp)
        fleet_wall = _run_fleet(tmp)
        tracing = _trace_overhead(tmp)
    return {
        "tracing": tracing,
        "store": {
            "writers": WRITERS,
            "shards": SHARDS,
            "single_file": single,
            "sharded": sharded,
            "append_ratio": (
                sharded["appends_per_second"] / single["appends_per_second"]
            ),
            "resume_ratio": (
                sharded["resumes_per_second"] / single["resumes_per_second"]
            ),
        },
        "fleet": {
            "jobs": len(FLEET_SCENARIOS),
            "single_process_seconds": single_wall,
            "fleet_of_2_seconds": fleet_wall,
            "speedup": single_wall / fleet_wall,
        },
    }


def test_benchmark_service(benchmark):
    stats = once(benchmark, _run_bench)

    payload = {
        "schema": "repro.bench_service/1",
        "source": "benchmarks/bench_service.py",
        "min_store_ratio": MIN_STORE_RATIO,
        **stats,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    store = stats["store"]
    expected = WRITERS * KEYS_PER_WRITER
    assert store["single_file"]["entries_resumed"] == expected
    assert store["sharded"]["entries_resumed"] == expected
    assert store["append_ratio"] >= MIN_STORE_RATIO, (
        f"sharded appends at {store['append_ratio']:.2f}x the single-file "
        f"rate under {WRITERS}-writer contention (< {MIN_STORE_RATIO}x floor)"
    )
    assert store["resume_ratio"] >= MIN_STORE_RATIO, (
        f"sharded resume at {store['resume_ratio']:.2f}x the single-file "
        f"rate (< {MIN_STORE_RATIO}x floor)"
    )
    assert stats["fleet"]["speedup"] > 0  # recorded, not asserted faster:
    # two spawns plus solver variance can eat the win on tiny batches.

    tracing = stats["tracing"]
    assert tracing["records_per_batch"] > 0, "traced batch journaled nothing"
    assert tracing["overhead_ratio"] <= MAX_TRACE_OVERHEAD, (
        f"tracing cost {tracing['overhead_ratio']:.3f}x the untraced batch "
        f"(> {MAX_TRACE_OVERHEAD}x budget)"
    )
