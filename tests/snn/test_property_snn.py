"""Property-based invariants of the SNN substrate."""

from hypothesis import given, settings, strategies as st

from repro.snn.encoding import rate_encode, ttfs_encode
from repro.snn.generators import random_network
from repro.snn.network import Network
from repro.snn.simulator import Simulator
from repro.snn.stats import gini_index


@settings(max_examples=50, deadline=None)
@given(value=st.floats(0.0, 1.0), window=st.integers(1, 64))
def test_rate_encode_count_matches_value(value, window):
    spikes = rate_encode(value, window)
    assert len(spikes) == int(round(value * window))
    assert all(0 <= t < window for t in spikes)
    assert spikes == sorted(set(spikes))


@settings(max_examples=50, deadline=None)
@given(value=st.floats(0.0, 1.0), window=st.integers(1, 64))
def test_ttfs_encode_at_most_one_spike(value, window):
    spikes = ttfs_encode(value, window)
    assert len(spikes) <= 1
    if spikes:
        assert 0 <= spikes[0] < window


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 20),
    seed=st.integers(0, 1000),
    duration=st.integers(1, 30),
)
def test_simulator_spike_counts_bounded_by_duration(n, seed, duration):
    net = random_network(n, min(2 * n, n * (n - 1)), seed=seed)
    sim = Simulator(net)
    spikes = {nid: list(range(duration)) for nid in net.neuron_ids()[:2]}
    result = sim.run(duration, input_spikes=spikes)
    # A neuron fires at most once per timestep.
    for count in result.spike_counts.values():
        assert 0 <= count <= duration
    # Raster and counts agree.
    assert sum(result.spike_counts.values()) == result.total_spikes


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(4, 16))
def test_simulator_superposition_of_silence(seed, n):
    """Adding inputs that never arrive changes nothing."""
    net = random_network(n, 2 * n, seed=seed)
    sim = Simulator(net)
    base = sim.run(12, input_spikes={net.neuron_ids()[0]: [0, 4]})
    with_empty = sim.run(
        12, input_spikes={net.neuron_ids()[0]: [0, 4], net.neuron_ids()[1]: []}
    )
    assert base.spikes == with_empty.spikes


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(0, 40), min_size=2, max_size=40),
    shift=st.integers(1, 10),
)
def test_gini_decreases_under_uniform_shift(values, shift):
    """Adding a constant to every value moves the distribution toward
    equality, so the Gini index cannot increase."""
    before = gini_index(values)
    after = gini_index([v + shift for v in values])
    assert after <= before + 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_network_copy_equals_original(seed):
    net = random_network(10, 20, seed=seed)
    clone = net.copy()
    assert list(clone.neurons()) == list(net.neurons())
    assert list(clone.synapses()) == list(net.synapses())
    assert clone.pred_sets() == net.pred_sets()
