"""The parallel batch-mapping engine.

A :class:`BatchMapper` takes many independent mapping jobs — each a
(network, architecture, stage-prefix) triple with per-stage budgets — and
runs the staged :class:`~repro.mapping.pipeline.MappingPipeline` for every
job across a :class:`concurrent.futures.ProcessPoolExecutor`:

- ``jobs=1`` executes serially in-process through the *same* code path the
  workers run, so serial and pooled results are bit-for-bit identical;
- ``portfolio=True`` swaps each stage's solver for a racing
  :class:`~repro.batch.portfolio.PortfolioSolver`;
- an optional :class:`~repro.batch.cache.ResultCache` keyed by the
  deterministic job fingerprint (network + pool + formulation options +
  stages + profile + solver mode) makes repeated sweeps skip solved
  instances;
- every job yields a :class:`JobRecord` whose per-stage entries are real
  :class:`~repro.mapping.pipeline.StageRecord` objects, so downstream code
  written against ``PipelineResult`` consumes batch output unchanged.

One failing job never poisons the batch: worker exceptions are captured
into an ``"error"`` record and the remaining jobs complete normally.

Only plain data crosses the process boundary — jobs ship networks and
architectures (cheaply picklable), workers return JSON-ready payloads that
double as cache entries, and mappings are rehydrated parent-side.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field

from ..mapping.axon_sharing import FormulationOptions
from ..mapping.fingerprint import (
    architecture_fingerprint,
    combine,
    digest,
    network_fingerprint,
    options_fingerprint,
)
from ..mapping.metrics import evaluate_mapping
from ..mapping.pipeline import STAGES, MappingPipeline, StageRecord
from ..mapping.precision import PrecisionSpec
from ..mapping.problem import MappingProblem
from ..mapping.solution import Mapping
from ..mca.architecture import Architecture
from ..snn.network import Network
from ..ilp.result import SolveResult, SolveStatus
from ..ilp.solve import SolverSpec
from .. import trace
from .cache import ResultCache
from .portfolio import portfolio_solver_factory

JOB_OK = "ok"
JOB_ERROR = "error"


@dataclass(frozen=True)
class BatchJob:
    """One independent mapping instance inside a batch.

    ``profile`` is a plain neuron->spike-count dict (required by the
    ``pgo`` stage).  All fields are picklable, so a job can be shipped to a
    worker process as-is.

    ``initial_assignment`` (a neuron->slot dict or pair sequence) seeds the
    pipeline with a carried-over mapping instead of greedy first-fit — the
    design-space explorer threads a neighboring scenario's solution through
    here.  A seed that does not form a valid mapping of *this* problem is
    silently dropped in the worker (falling back to greedy), so transfers
    across differing pools are safe to attempt.

    ``precision`` switches the area stage to the bit-slicing-aware
    :class:`~repro.mapping.precision.PrecisionAreaModel`.

    ``solver_specs`` overrides the portfolio's arm composition for this
    job (a tuple of :class:`~repro.ilp.solve.SolverSpec`); it only takes
    effect when the engine runs with ``portfolio=True`` and is how the
    DSE adaptive driver runs cheap fidelity rungs on loose-gap arms (see
    :mod:`repro.dse.fidelity`).
    """

    name: str
    network: Network
    architecture: Architecture
    stages: tuple[str, ...] = ("area",)
    profile: dict[int, int] | None = None
    formulation: FormulationOptions = field(default_factory=FormulationOptions)
    area_time_limit: float | None = 30.0
    route_time_limit: float | None = 30.0
    initial_assignment: tuple[tuple[int, int], ...] | None = None
    precision: PrecisionSpec | None = None
    solver_specs: tuple[SolverSpec, ...] | None = None

    def __post_init__(self) -> None:
        unknown = [s for s in self.stages if s not in STAGES]
        if unknown:
            raise ValueError(f"unknown stages {unknown}; valid: {STAGES}")
        if "pgo" in self.stages and self.profile is None:
            raise ValueError(f"job {self.name!r}: the pgo stage needs a profile")
        if self.initial_assignment is not None:
            pairs = (
                self.initial_assignment.items()
                if isinstance(self.initial_assignment, dict)
                else self.initial_assignment
            )
            object.__setattr__(
                self,
                "initial_assignment",
                tuple(sorted((int(i), int(j)) for i, j in pairs)),
            )

    @classmethod
    def from_problem(cls, name: str, problem: MappingProblem, **kwargs) -> "BatchJob":
        """Build a job from an existing problem instance."""
        return cls(name, problem.network, problem.architecture, **kwargs)

    def build_problem(self) -> MappingProblem:
        """Construct the (validated) problem this job solves."""
        return MappingProblem(self.network, self.architecture)

    def fingerprint(self, portfolio: bool = False) -> str:
        """Deterministic cache key for this job under a solver mode.

        Covers everything that changes the *result*: network structure,
        crossbar pool, formulation options, stage prefix, spike profile and
        solver mode.  Time budgets are deliberately excluded from the key;
        instead the engine records the producing budgets in the cached
        payload and re-solves on a hit whose solves limited out under a
        smaller budget than the new request brings (see
        :func:`_cache_entry_satisfies`).

        Computed from the raw parts (identical to ``MappingProblem.
        fingerprint``) so that even a job whose problem fails validation
        still fingerprints cleanly — its failure belongs in a worker-side
        error record, not a parent-side exception.
        """
        problem_part = combine(
            network_fingerprint(self.network),
            architecture_fingerprint(self.architecture),
            options_fingerprint(self.formulation),
        )
        profile_part = (
            digest(sorted(self.profile.items())) if self.profile is not None else "-"
        )
        parts = [
            problem_part,
            digest(list(self.stages)),
            profile_part,
            "portfolio" if portfolio else "single",
        ]
        # Appended only when present so jobs without the newer fields keep
        # their historical fingerprints (and their on-disk cache entries).
        if self.precision is not None:
            parts.append(options_fingerprint(self.precision))
        if self.initial_assignment is not None:
            # A warm seed can steer which incumbent a budget-limited solve
            # lands on, so it is part of the result's identity.
            parts.append(digest([list(p) for p in self.initial_assignment]))
        if self.solver_specs is not None:
            # Arm composition changes which incumbent a race lands on, so
            # differently-tuned rungs must not share cache entries.
            parts.append(
                digest([sorted(asdict(spec).items()) for spec in self.solver_specs])
            )
        return combine(*parts)


@dataclass
class JobRecord:
    """Outcome of one batch job, mirroring a pipeline's stage records.

    ``stages`` holds genuine :class:`StageRecord` objects (mapping +
    metrics + solve summary) in execution order; ``status`` is ``"ok"`` or
    ``"error"``; ``from_cache`` marks fingerprint hits.
    """

    name: str
    fingerprint: str
    status: str
    stages: dict[str, StageRecord] = field(default_factory=dict)
    error: str | None = None
    wall_time: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == JOB_OK

    @property
    def det_time(self) -> float:
        return sum(record.det_time for record in self.stages.values())

    def final(self) -> StageRecord:
        if not self.stages:
            raise ValueError(f"job {self.name!r} produced no stages ({self.error})")
        return next(reversed(self.stages.values()))


@dataclass
class BatchResult:
    """All job records, in submission order."""

    records: list[JobRecord]

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def record(self, name: str) -> JobRecord:
        for rec in self.records:
            if rec.name == name:
                return rec
        raise KeyError(f"no job named {name!r}")

    def succeeded(self) -> list[JobRecord]:
        return [r for r in self.records if r.ok]

    def failed(self) -> list[JobRecord]:
        return [r for r in self.records if not r.ok]

    def total_det_time(self) -> float:
        return sum(r.det_time for r in self.records)

    def report(self) -> str:
        """Compact text table of the batch outcome."""
        lines = []
        for rec in self.records:
            if rec.ok:
                tag = "cache" if rec.from_cache else rec.status
                lines.append(
                    f"{rec.name:<16} {tag:<6} {rec.final().mapping.summary()}"
                )
            else:
                lines.append(f"{rec.name:<16} error  {rec.error}")
        return "\n".join(lines)


class BatchMapper:
    """Run many mapping jobs across a process pool (or serially).

    Parameters
    ----------
    jobs:
        Worker-process count.  ``1`` (default) runs in-process, in
        submission order, matching a plain serial loop bit-for-bit.
    portfolio:
        Race HiGHS against the branch-and-bound backend per stage and keep
        the best incumbent (see :mod:`repro.batch.portfolio`).  May also
        be a :data:`~repro.mapping.pipeline.SolverFactory` for a custom
        per-stage solver (e.g. a different portfolio composition) —
        callable factories are serial-only (``jobs=1``): closures do not
        cross the process pool.
    cache:
        Optional :class:`ResultCache`; hits skip the solve entirely and
        rehydrate the stored solution.
    metrics:
        Optional sink (duck-typed; see
        :class:`repro.service.metrics.ServiceMetrics`) notified of
        execution progress: ``solves_dispatched(n)`` when jobs enter
        execution, ``solve_finished(payload)`` per completed worker
        payload, ``solves_abandoned(n)`` for jobs a crash kept from
        completing.  Cache hits never touch the sink — "solves in
        flight" counts real solver work.
    """

    def __init__(
        self,
        jobs: int = 1,
        portfolio: bool = False,
        cache: ResultCache | None = None,
        metrics=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.portfolio = portfolio
        self.cache = cache
        self.metrics = metrics

    # ------------------------------------------------------------------
    def map_all(
        self,
        batch_jobs: list[BatchJob],
        should_cancel=None,
    ) -> BatchResult:
        """Execute every job; never raises for per-job failures.

        ``should_cancel`` is an optional zero-argument callable polled at
        job boundaries (and between pooled completions): once it returns
        true, every not-yet-finished job is recorded as cancelled instead
        of executed — the service layer hands a job's
        :class:`~repro.batch.queue.CancelToken` straight in here.
        Cancelled records are never cached, mirroring Ctrl-C handling.
        """
        names = [job.name for job in batch_jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique within a batch")

        records: dict[int, JobRecord] = {}
        pending: list[tuple[int, BatchJob, str]] = []
        with trace.span("cache-lookup", jobs=len(batch_jobs)):
            for idx, job in enumerate(batch_jobs):
                key = job.fingerprint(self.portfolio)
                payload = self.cache.get(key) if self.cache is not None else None
                if payload is not None and not _cache_entry_satisfies(job, payload):
                    # The cached solve limited out under a smaller budget than
                    # this job brings: re-solve rather than pin the old quality.
                    self.cache.stats.reclassify_hit_as_miss()
                    payload = None
                if payload is not None:
                    records[idx] = _rehydrate(job, key, payload, from_cache=True)
                else:
                    pending.append((idx, job, key))

        sink = self.metrics
        if sink is not None and pending:
            sink.solves_dispatched(len(pending))
        completed = 0
        try:
            for idx, job, key, payload in self._execute(pending, should_cancel):
                if sink is not None:
                    sink.solve_finished(payload)
                    completed += 1
                cacheable = (
                    payload.get("status") == JOB_OK
                    and not payload.get("interrupted", False)
                )
                if cacheable and self.cache is not None:
                    self.cache.put(key, payload)
                _record_stage_spans(job.name, payload)
                records[idx] = _rehydrate(job, key, payload, from_cache=False)
        finally:
            # A crash mid-batch must not leave the in-flight gauge stuck
            # above zero forever; normal completion makes this a no-op.
            if sink is not None and completed < len(pending):
                sink.solves_abandoned(len(pending) - completed)

        return BatchResult([records[i] for i in range(len(batch_jobs))])

    # ------------------------------------------------------------------
    def _execute(self, pending, should_cancel=None):
        """Yield (idx, job, key, payload) for every non-cached job."""
        if should_cancel is not None and should_cancel():
            # Already cancelled: never spin up a pool or start a solve —
            # a later wave of a cancelled multi-stage sweep lands here.
            for idx, job, key in pending:
                yield idx, job, key, _cancelled_payload()
            return
        if self.jobs == 1 or len(pending) <= 1:
            for pos, (idx, job, key) in enumerate(pending):
                if should_cancel is not None and should_cancel():
                    # The cancellation hook fired between jobs: record the
                    # rest of the batch as cancelled without executing it.
                    for idx2, job2, key2 in pending[pos:]:
                        yield idx2, job2, key2, _cancelled_payload()
                    return
                payload = _execute_job(job, self.portfolio)
                yield idx, job, key, payload
                if payload.get("interrupted"):
                    # Ctrl-C reached a solve running in *this* process: one
                    # press cancels the whole remaining batch instead of
                    # requiring one per solve.
                    for idx2, job2, key2 in pending[pos + 1:]:
                        yield idx2, job2, key2, _cancelled_payload()
                    return
            return
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_job, job, self.portfolio): (idx, job, key)
                for idx, job, key in pending
            }
            remaining = set(futures)
            consumed: set = set()

            def _drain_cancelled():
                pool.shutdown(wait=False, cancel_futures=True)
                for future, (idx, job, key) in futures.items():
                    if future not in consumed:
                        yield idx, job, key, _cancelled_payload()

            try:
                while remaining:
                    if should_cancel is not None and should_cancel():
                        yield from _drain_cancelled()
                        return
                    # Poll in short slices only when a cancellation hook is
                    # watching; otherwise block until the next completion.
                    done, remaining = wait(
                        remaining,
                        timeout=0.25 if should_cancel is not None else None,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        idx, job, key = futures[future]
                        try:
                            payload = future.result()
                        except KeyboardInterrupt:
                            # The worker re-raised a cancellation that slipped
                            # past its own handler: record it, keep the batch.
                            payload = _cancelled_payload()
                        except Exception as exc:  # worker died (OOM, broken pool)
                            payload = {
                                "status": JOB_ERROR,
                                "stages": [],
                                "wall_time": 0.0,
                                "error": f"{type(exc).__name__}: {exc}",
                            }
                        consumed.add(future)
                        yield idx, job, key, payload
            except KeyboardInterrupt:
                # One Ctrl-C cancels the rest of the batch (mirroring the
                # serial path): drop queued jobs instead of letting the
                # pool drain them all before shutdown.
                yield from _drain_cancelled()


def _record_stage_spans(name: str, payload: dict) -> None:
    """Reconstruct per-stage/per-phase spans from a completed payload.

    Pool workers have no ambient trace context (nothing crosses the
    ``ProcessPoolExecutor`` boundary but plain data), so the parent derives
    solver spans after the fact from the phase breakdowns the payload
    carries — end-aligned to now, stages walked newest-first.  Strictly a
    no-op when tracing is inactive.
    """
    if trace.current_context() is None or trace.get_runtime() is None:
        return
    end = time.time()
    for stage in reversed(payload.get("stages") or []):
        summary = stage.get("solve") or {}
        phases = [
            (str(phase), float(seconds))
            for phase, seconds in summary.get("phases") or ()
        ]
        stage_wall = sum(seconds for _, seconds in phases) or float(
            summary.get("wall_time") or 0.0
        )
        stage_start = end - stage_wall
        trace.record_span(
            f"stage:{stage.get('name')}",
            start=stage_start,
            duration=stage_wall,
            job=name,
            backend=summary.get("backend"),
            status=summary.get("status"),
        )
        cursor = stage_start
        for phase, seconds in phases:
            trace.record_span(
                f"phase:{phase}",
                start=cursor,
                duration=seconds,
                job=name,
                stage=stage.get("name"),
            )
            cursor += seconds
        end = stage_start


def parallel_map(fn, items, jobs: int = 1) -> list:
    """Ordered ``map(fn, items)`` across a process pool.

    The lightweight sibling of :class:`BatchMapper` for sweeps whose unit
    of work is not a mapping pipeline (e.g. the trace-slice evolution
    exhibits).  ``fn`` must be picklable (a module-level function or a
    :func:`functools.partial` of one) and so must every item and result.
    Unlike :meth:`BatchMapper.map_all`, exceptions propagate — callers of
    this helper want all-or-nothing sweeps.
    """
    items = list(items)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


# ----------------------------------------------------------------------
# Worker side: everything below runs in the pool processes (and inline for
# jobs=1).  It must stay module-level and deal only in picklable data.
# ----------------------------------------------------------------------

def _cancelled_payload() -> dict:
    """The record a job gets when cancellation pre-empted or aborted it."""
    return {
        "status": JOB_ERROR,
        "stages": [],
        "interrupted": True,
        "wall_time": 0.0,
        "error": "cancelled (KeyboardInterrupt)",
    }


def _execute_job(job: BatchJob, portfolio: bool) -> dict:
    """Run one job's pipeline; always returns a payload, never raises.

    Cancellation (``KeyboardInterrupt``) becomes an ``interrupted`` error
    payload, which the serial driver uses to cancel the rest of the batch —
    so one Ctrl-C yields a partial-results report instead of a traceback.
    """
    start = time.perf_counter()
    try:
        problem = job.build_problem()
        if callable(portfolio):
            solver = portfolio
        elif portfolio and job.solver_specs is not None:
            # Per-job arm tuning (DSE fidelity rungs): race exactly the
            # requested composition instead of the default portfolio.
            solver = portfolio_solver_factory(job.solver_specs)
        else:
            solver = portfolio_solver_factory() if portfolio else None
        pipeline = MappingPipeline(
            problem,
            area_time_limit=job.area_time_limit,
            route_time_limit=job.route_time_limit,
            formulation=job.formulation,
            solver=solver,
            precision=job.precision,
        )
        initial = None
        if job.initial_assignment is not None:
            try:
                candidate = Mapping(problem, dict(job.initial_assignment))
            except ValueError:
                candidate = None
            if candidate is not None and candidate.is_valid():
                initial = candidate
        result = pipeline.run(
            stages=job.stages, profile=job.profile, initial=initial
        )
        stages = [
            {
                "name": record.name,
                "assignment": {str(i): j for i, j in record.mapping.assignment.items()},
                "solve": _solve_summary(record.solve_result),
            }
            for record in result.stages.values()
        ]
        # A stage degraded by cancellation (see repro.ilp.solve) still
        # yields a valid mapping, but its quality is warm-start-level:
        # usable for this run, never worth caching as the instance's answer.
        interrupted = any(
            record.solve_result is not None
            and "-interrupted" in record.solve_result.backend
            for record in result.stages.values()
        )
        all_optimal = all(
            record.solve_result is None
            or record.solve_result.status is SolveStatus.OPTIMAL
            for record in result.stages.values()
        )
        return {
            "status": JOB_OK,
            "stages": stages,
            "interrupted": interrupted,
            "all_optimal": all_optimal,
            "budgets": {"area": job.area_time_limit, "route": job.route_time_limit},
            "wall_time": time.perf_counter() - start,
            "error": None,
        }
    except KeyboardInterrupt:
        payload = _cancelled_payload()
        payload["wall_time"] = time.perf_counter() - start
        return payload
    except Exception as exc:
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        return {
            "status": JOB_ERROR,
            "stages": [],
            "wall_time": time.perf_counter() - start,
            "error": detail,
        }


def _cache_entry_satisfies(job: BatchJob, payload: dict) -> bool:
    """Is a cached payload an acceptable answer under this job's budgets?

    Proven-optimal results are budget-independent; limit-bound results are
    only reusable when the new request's budget does not exceed the budget
    that produced them (otherwise the bigger budget deserves a re-solve).
    """
    if payload.get("all_optimal", False):
        return True

    def within(requested: float | None, cached: float | None) -> bool:
        if cached is None:  # cached solve had an unlimited budget
            return True
        if requested is None:
            return False
        return requested <= cached + 1e-9

    budgets = payload.get("budgets") or {}
    return within(job.area_time_limit, budgets.get("area")) and within(
        job.route_time_limit, budgets.get("route")
    )


def _solve_summary(solve: SolveResult | None) -> dict | None:
    """The picklable/JSON-able core of a solve result (no variable values)."""
    if solve is None:
        return None
    return {
        "status": solve.status.value,
        "objective": solve.objective,
        "bound": solve.bound,
        "det_time": solve.det_time,
        "wall_time": solve.wall_time,
        "node_count": solve.node_count,
        "backend": solve.backend,
        "phases": [[name, float(seconds)] for name, seconds in solve.phases],
    }


def _rehydrate(job: BatchJob, key: str, payload: dict, from_cache: bool) -> JobRecord:
    """Rebuild a JobRecord (with live mappings and metrics) from a payload."""
    if payload.get("status") != JOB_OK:
        return JobRecord(
            name=job.name,
            fingerprint=key,
            status=JOB_ERROR,
            error=payload.get("error") or "unknown worker failure",
            wall_time=float(payload.get("wall_time", 0.0)),
            from_cache=from_cache,
        )
    problem = job.build_problem()
    stages: dict[str, StageRecord] = {}
    for stage in payload["stages"]:
        assignment = {int(i): int(j) for i, j in stage["assignment"].items()}
        mapping = Mapping(problem, assignment)
        metrics = evaluate_mapping(mapping, job.profile)
        summary = stage["solve"]
        solve = None
        if summary is not None:
            solve = SolveResult(
                status=SolveStatus(summary["status"]),
                objective=summary["objective"],
                bound=summary["bound"],
                det_time=summary["det_time"],
                wall_time=summary["wall_time"],
                node_count=summary["node_count"],
                backend=summary["backend"],
                # Tolerant: entries cached before phase breakdowns existed
                # simply rehydrate with an empty tuple.
                phases=tuple(
                    (str(name), float(seconds))
                    for name, seconds in summary.get("phases") or ()
                ),
            )
        stages[stage["name"]] = StageRecord(stage["name"], mapping, metrics, solve)
    return JobRecord(
        name=job.name,
        fingerprint=key,
        status=JOB_OK,
        stages=stages,
        wall_time=float(payload.get("wall_time", 0.0)),
        from_cache=from_cache,
    )
