"""Ablations of the design choices DESIGN.md calls out.

Each ablation solves the same instance with one formulation knob flipped
and checks (a) the optimum is unchanged — the knobs are performance
devices, not semantics — and (b) the model-size / effort direction is as
designed.
"""

import pytest

from bench_config import once
from repro.experiments.networks import paper_network
from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel, FormulationOptions
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.pgo import SpikeProfile, build_pgo_model
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture

SOLVER = HighsOptions(time_limit=20.0)


@pytest.fixture(scope="module")
def problem():
    network = paper_network("E", scale=0.12)
    arch = heterogeneous_architecture(network.num_neurons, max_slots_per_type=10)
    return MappingProblem(network, arch)


def _solve_area(problem, options):
    handle = AreaModel(problem, options)
    warm = handle.warm_start_from(greedy_first_fit(problem))
    result = HighsBackend(SOLVER).solve(handle.model, warm_start=warm)
    return handle, result


def test_benchmark_ablation_symmetry_breaking(benchmark, problem):
    """Symmetry breaking must not change the optimum; it adds cheap rows
    that cut permutations of identical slots."""
    base_handle, base = _solve_area(problem, FormulationOptions())

    def ablated():
        return _solve_area(
            problem, FormulationOptions(symmetry_breaking=False)
        )

    _, no_sym = once(benchmark, ablated)
    assert no_sym.objective == pytest.approx(base.objective)
    sym_rows = base_handle.model.num_constraints
    no_sym_rows = AreaModel(
        problem, FormulationOptions(symmetry_breaking=False)
    ).model.num_constraints
    assert sym_rows > no_sym_rows


def test_benchmark_ablation_aggregated_sharing(benchmark, problem):
    """Aggregated constraint 6 shrinks the row count but weakens the LP;
    the integer optimum is identical."""
    _, base = _solve_area(problem, FormulationOptions())

    def ablated():
        return _solve_area(
            problem, FormulationOptions(disaggregate_sharing=False)
        )

    _, aggregated = once(benchmark, ablated)
    assert aggregated.objective == pytest.approx(base.objective)
    tight = AreaModel(problem, FormulationOptions()).model.num_constraints
    loose = AreaModel(
        problem, FormulationOptions(disaggregate_sharing=False)
    ).model.num_constraints
    assert loose < tight


def test_benchmark_ablation_upper_link(benchmark, problem):
    """Constraint 5 never binds under a minimizing objective: dropping it
    preserves the optimum and removes one row per (source, slot)."""
    _, base = _solve_area(problem, FormulationOptions())

    def ablated():
        return _solve_area(
            problem, FormulationOptions(include_upper_link=False)
        )

    _, without = once(benchmark, ablated)
    assert without.objective == pytest.approx(base.objective)


def test_benchmark_ablation_pgo_silent_elimination(benchmark, problem):
    """The PGO speedup mechanism: silent sources remove b-variables and
    objective terms (paper §IV-D)."""
    base_mapping = greedy_first_fit(problem)
    neurons = problem.network.neuron_ids()
    sparse_profile = SpikeProfile(
        counts={k: (10 if k % 4 == 0 else 0) for k in neurons}
    )
    dense_profile = SpikeProfile(counts={k: 10 for k in neurons})

    def solve_sparse():
        handle = build_pgo_model(problem, base_mapping, sparse_profile)
        return handle, HighsBackend(SOLVER).solve(
            handle.model, warm_start=handle.warm_start_from(base_mapping)
        )

    sparse_handle, sparse_res = once(benchmark, solve_sparse)
    dense_handle = build_pgo_model(problem, base_mapping, dense_profile)
    assert sparse_handle.model.num_vars < dense_handle.model.num_vars
    assert sparse_handle.model.num_constraints < dense_handle.model.num_constraints
    assert sparse_res.status.has_solution()
