"""Array-compiled networks and the vectorized LIF simulation kernel.

The scalar reference simulator walks dicts neuron-by-neuron; fine for
hand-checked examples, hopeless for profiling sweeps that simulate every
dataset sample.  This module compiles a :class:`~repro.snn.network.Network`
once into flat CSR-style arrays and executes the identical discrete-time
dynamics with dense NumPy state:

- membrane potentials, leaks and thresholds are ``(n,)`` vectors;
- scheduled charges live in a ``(max_delay + 1, n)`` ring buffer — the
  slot for timestep ``t`` is ``t % (max_delay + 1)``, consumed and
  recycled as the clock advances;
- firing is one boolean mask per step; outgoing deliveries are one
  sparse matrix-vector product per distinct synaptic delay (a CSR
  matrix transposed so rows are *targets*), falling back to a pure-NumPy
  gather + ``bincount`` pass when SciPy is unavailable.

Equivalence with the reference engine is spike-for-spike exact: within
every ``(timestep, target)`` charge bucket the deliveries accumulate in
the reference order (external injections first, then synaptic deliveries
in fire-time order, sources ascending), so rasters and spike counts
match exactly; final potentials can differ only in the sign of zero.
The property suite in ``tests/snn/test_engine_equivalence.py`` enforces
this.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

try:  # SciPy is optional — the kernel degrades to a pure-NumPy path.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None

from .network import Network

#: Engines the :class:`~repro.snn.simulator.Simulator` understands.
ENGINES = ("vector", "reference")

#: Environment knob consulted when no explicit ``engine=`` is given.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Above this many staged floats, external inputs use the sparse path.
_DENSE_EXT_LIMIT = 1 << 21


def resolve_engine(engine: str | None = None) -> str:
    """Pick the simulation engine: explicit arg > $REPRO_SIM_ENGINE > vector."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "vector"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown simulation engine {engine!r}; choose from {ENGINES}"
        )
    return engine


@dataclass(frozen=True)
class CompiledNetwork:
    """A network flattened into CSR-style arrays for the vector kernel.

    Neuron ids map to dense indices in ascending-id order; synapses are
    grouped by pre-synaptic neuron (``indptr``/``post``/``weight``/
    ``delay``), targets ascending within each row — the same deterministic
    order the reference engine iterates.  ``delay_groups`` additionally
    splits the synapses by delay into transposed CSR matrices (rows =
    targets, columns = sources, ascending) so one spike vector per step
    turns into one mat-vec per distinct delay.
    """

    ids: np.ndarray  # (n,) neuron ids, ascending
    thresholds: np.ndarray  # (n,) float64
    leaks: np.ndarray  # (n,) float64
    indptr: np.ndarray  # (n + 1,) CSR row pointers over dense pre index
    post: np.ndarray  # (nnz,) dense post indices
    weight: np.ndarray  # (nnz,) float64
    delay: np.ndarray  # (nnz,) int64, all >= 1
    max_delay: int
    delay_groups: tuple = ()  # ((delay, csr_matrix), ...) when SciPy exists

    @property
    def num_neurons(self) -> int:
        return int(self.ids.size)

    def index_of(self) -> dict[int, int]:
        """Neuron id -> dense index."""
        return {int(nid): idx for idx, nid in enumerate(self.ids)}

    @classmethod
    def from_network(cls, network: Network) -> "CompiledNetwork":
        ids = network.neuron_ids()
        index = {nid: pos for pos, nid in enumerate(ids)}
        n = len(ids)
        thresholds = np.empty(n, dtype=np.float64)
        leaks = np.empty(n, dtype=np.float64)
        for pos, nid in enumerate(ids):
            neuron = network.neuron(nid)
            thresholds[pos] = neuron.threshold
            leaks[pos] = neuron.leak

        indptr = np.zeros(n + 1, dtype=np.int64)
        post: list[int] = []
        weight: list[float] = []
        delay: list[int] = []
        for pos, nid in enumerate(ids):
            for succ in sorted(network.successors(nid)):
                syn = network.synapse(nid, succ)
                post.append(index[succ])
                weight.append(syn.weight)
                delay.append(syn.delay)
            indptr[pos + 1] = len(post)
        post_arr = np.asarray(post, dtype=np.int64)
        weight_arr = np.asarray(weight, dtype=np.float64)
        delay_arr = np.asarray(delay, dtype=np.int64)
        pre_arr = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(indptr)
        )

        groups: list[tuple[int, object]] = []
        if _sparse is not None and delay_arr.size:
            for d in np.unique(delay_arr):
                sel = delay_arr == d
                mat = _sparse.csr_matrix(
                    (weight_arr[sel], (post_arr[sel], pre_arr[sel])),
                    shape=(n, n),
                )
                groups.append((int(d), mat))
        return cls(
            ids=np.asarray(ids, dtype=np.int64),
            thresholds=thresholds,
            leaks=leaks,
            indptr=indptr,
            post=post_arr,
            weight=weight_arr,
            delay=delay_arr,
            max_delay=int(delay_arr.max()) if delay_arr.size else 0,
            delay_groups=tuple(groups),
        )


def _stage_inputs(
    compiled: CompiledNetwork,
    duration: int,
    input_spikes: Mapping[int, Iterable[int]] | None,
    input_charges: Iterable[tuple[int, int, float]] | None,
) -> np.ndarray | dict[int, np.ndarray]:
    """Accumulate external injections per timestep.

    Returns either a dense ``(duration, n)`` matrix (small sims) or a
    sparse ``t -> row`` dict.  Accumulation order matches the reference:
    ``input_spikes`` first (mapping order), then ``input_charges`` (list
    order) — ``np.add.at`` applies duplicate indices sequentially.
    """
    n = compiled.num_neurons
    index = compiled.index_of()
    dense = 0 <= duration * n <= _DENSE_EXT_LIMIT
    ext_mat = np.zeros((duration, n), dtype=np.float64) if dense else None
    ext_rows: dict[int, np.ndarray] = {}

    def row(t: int) -> np.ndarray:
        vec = ext_rows.get(t)
        if vec is None:
            vec = ext_rows[t] = np.zeros(n, dtype=np.float64)
        return vec

    if input_spikes:
        for nid, times in input_spikes.items():
            pos = index.get(nid)
            if pos is None:
                raise KeyError(f"input targets unknown neuron {nid}")
            thr = float(compiled.thresholds[pos])
            ts = np.asarray(list(times), dtype=np.int64)
            ts = ts[(ts >= 0) & (ts < duration)]
            if ts.size == 0:
                continue
            if ext_mat is not None:
                np.add.at(ext_mat[:, pos], ts, thr)
            else:
                for t in ts.tolist():
                    row(t)[pos] += thr
    if input_charges:
        for nid, t, amount in input_charges:
            pos = index.get(nid)
            if pos is None:
                raise KeyError(f"input targets unknown neuron {nid}")
            if 0 <= t < duration:
                if ext_mat is not None:
                    ext_mat[t, pos] += amount
                else:
                    row(t)[pos] += amount
    return ext_mat if ext_mat is not None else ext_rows


def run_compiled(
    compiled: CompiledNetwork,
    duration: int,
    input_spikes: Mapping[int, Iterable[int]] | None = None,
    input_charges: Iterable[tuple[int, int, float]] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Execute the vector kernel; returns raw arrays, not a result object.

    Returns ``(spike_times, spike_ids, counts, potentials)`` where the
    first two are the raster in firing order (time-major, neuron id
    ascending within a timestep), ``counts`` is per dense index and
    ``potentials`` the final membrane state.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    n = compiled.num_neurons
    ext = _stage_inputs(compiled, duration, input_spikes, input_charges)
    ext_is_dense = isinstance(ext, np.ndarray)

    ring_len = compiled.max_delay + 1
    ring = np.zeros((ring_len, n), dtype=np.float64)
    # Pre-load externals for the first ring_len steps; later slots are
    # re-armed as the ring recycles, always *before* any delivery can
    # land there, preserving the reference's externals-first order.
    for t0 in range(min(ring_len, duration)):
        vec = ext[t0] if ext_is_dense else ext.get(t0)
        if vec is not None:
            ring[t0] = vec

    potentials = np.zeros(n, dtype=np.float64)
    leaks = compiled.leaks
    fire_at = compiled.thresholds - 1e-12
    use_matvec = bool(compiled.delay_groups) or compiled.delay.size == 0
    counts = np.zeros(n, dtype=np.int64)
    fired_chunks: list[np.ndarray] = []
    step_times: list[int] = []
    spike_vec = np.empty(n, dtype=np.float64)

    for t in range(duration):
        np.multiply(potentials, leaks, out=potentials)
        slot = t % ring_len
        potentials += ring[slot]
        # Recycle the slot for timestep t + ring_len.
        nxt = t + ring_len
        if ext_is_dense:
            ring[slot] = ext[nxt] if nxt < duration else 0.0
        else:
            vec = ext.get(nxt)
            if vec is None:
                ring[slot] = 0.0
            else:
                ring[slot] = vec

        fired = np.nonzero(potentials >= fire_at)[0]
        if fired.size == 0:
            continue
        fired_chunks.append(fired)
        step_times.append(t)
        counts[fired] += 1
        potentials[fired] = 0.0

        if use_matvec:
            spike_vec.fill(0.0)
            spike_vec[fired] = 1.0
            for d, mat in compiled.delay_groups:
                target_t = t + d
                if target_t < duration:
                    ring[target_t % ring_len] += mat.dot(spike_vec)
        else:
            _deliver_gather(compiled, ring, fired, t, duration, ring_len, n)

    if fired_chunks:
        lens = [c.size for c in fired_chunks]
        spike_times = np.repeat(
            np.asarray(step_times, dtype=np.int64),
            np.asarray(lens, dtype=np.int64),
        )
        spike_ids = compiled.ids[np.concatenate(fired_chunks)]
    else:
        spike_times = np.empty(0, dtype=np.int64)
        spike_ids = np.empty(0, dtype=np.int64)
    return spike_times, spike_ids, counts, potentials


def _deliver_gather(
    compiled: CompiledNetwork,
    ring: np.ndarray,
    fired: np.ndarray,
    t: int,
    duration: int,
    ring_len: int,
    n: int,
) -> None:
    """SciPy-free delivery: gather fired rows, bincount per target slot.

    ``np.bincount`` adds weights in element order per bin, so the
    reference's accumulation order is preserved exactly.
    """
    indptr = compiled.indptr
    starts = indptr[fired]
    lens = indptr[fired + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return
    # Flat indices of every outgoing synapse of every fired neuron,
    # rows in ascending-pre order, targets ascending within a row.
    cum = np.cumsum(lens)
    flat = np.repeat(starts - (cum - lens), lens) + np.arange(total)
    target_t = t + compiled.delay[flat]
    keep = target_t < duration
    if not keep.all():
        flat = flat[keep]
        target_t = target_t[keep]
    dest_slots = target_t % ring_len
    for s in np.unique(dest_slots):
        sel = dest_slots == s
        ring[s] += np.bincount(
            compiled.post[flat[sel]],
            weights=compiled.weight[flat[sel]],
            minlength=n,
        )
