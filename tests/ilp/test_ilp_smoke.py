"""Tier-1-safe smoke test for the columnar ILP build path.

Builds, lowers and presolves a fig2-size SNU model (the hottest model
family in the exhibit sweeps) under a generous wall-clock ceiling.  This
is not a benchmark — ``benchmarks/bench_ilp.py`` measures and asserts the
actual speedups — it is a regression tripwire: if the columnar path ever
degrades to per-expression cost, this blows straight past the ceiling.
"""

import time

import pytest

from repro.ilp.presolve import presolve
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mapping.snu import build_snu_model
from repro.mca.architecture import heterogeneous_architecture
from repro.snn.generators import random_network

pytestmark = pytest.mark.ilp

#: Generous ceiling: the columnar path does this in well under a second;
#: the old per-expression path took several.
TIME_CEILING_S = 10.0


def test_fig2_size_snu_build_lower_presolve_under_ceiling():
    net = random_network(40, 120, seed=7, max_fan_in=10, name="smoke")
    problem = MappingProblem(net, heterogeneous_architecture(40))
    base = greedy_first_fit(problem)

    start = time.perf_counter()
    area = AreaModel(problem)
    area_form = area.model.lower()
    snu = build_snu_model(problem, base)
    snu_form = snu.model.lower()
    reduced, report = presolve(snu.model)
    elapsed = time.perf_counter() - start

    assert elapsed < TIME_CEILING_S, (
        f"build+lower+presolve took {elapsed:.2f}s (> {TIME_CEILING_S}s ceiling)"
    )
    # Sanity on what was built: real models with real structure.
    assert area_form.num_rows > problem.num_neurons
    assert snu_form.num_rows > problem.num_neurons
    assert snu_form.a_matrix.nnz > 0
    assert reduced.num_constraints <= snu.model.num_constraints
    assert report.total_reductions() >= 0
    # Warm start survives the round trip through the dense-vector path.
    warm = snu.warm_start_from(base)
    assert snu.model.check_feasible(warm) == []
