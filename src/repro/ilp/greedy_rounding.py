"""LP-rounding warm-start generator.

Solves the LP relaxation of a model once, then greedily repairs the rounded
point into feasibility by re-solving with progressively more variables
fixed.  Used to seed both backends; a feasible warm start lets HiGHS prune
with a cutoff and gives branch and bound an immediate incumbent.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from .bnb_backend import _LpRelaxation
from .model import Model


def lp_rounding_warm_start(
    model: Model, max_passes: int = 25
) -> dict[str, float] | None:
    """Attempt to build a feasible integral assignment by iterative rounding.

    Each pass solves the LP relaxation with all previously rounded integer
    variables fixed, then fixes the most-integral remaining fractional
    variable to its rounded value.  Returns ``None`` when a pass goes
    infeasible (callers then fall back to problem-specific heuristics).
    """
    form = model.lower()
    relax = _LpRelaxation(form)
    lb = form.var_lb.copy()
    ub = form.var_ub.copy()
    int_idx = np.flatnonzero(form.integrality > 0)

    for _ in range(max_passes):
        status, _obj, x, _nit = relax.solve(lb, ub)
        if status != "optimal":
            return None
        frac = np.abs(x[int_idx] - np.round(x[int_idx]))
        if frac.size == 0 or frac.max() <= 1e-6:
            snapped = x.copy()
            snapped[int_idx] = np.round(snapped[int_idx])
            if relax.is_feasible(snapped, form.var_lb, form.var_ub):
                return {v.name: float(snapped[v.index]) for v in model.variables}
            return None
        # Fix every nearly-integral variable plus the single most-integral
        # fractional one, shrinking the problem monotonically.
        nearly = int_idx[frac <= 1e-6]
        lb[nearly] = np.round(x[nearly])
        ub[nearly] = np.round(x[nearly])
        remaining = int_idx[frac > 1e-6]
        pick = remaining[np.argmin(frac[frac > 1e-6])]
        lb[pick] = np.round(x[pick])
        ub[pick] = np.round(x[pick])
    return None
