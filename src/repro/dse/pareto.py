"""Vectorized multi-objective Pareto machinery.

Everything here treats a design point as one row of an ``(n, d)`` float
array of objectives to **minimize** (the explorer's rows are
(area, energy, latency)).  The kernels are pure NumPy:

- :func:`nondominated_mask` — one broadcast pass marking the points no
  other point dominates;
- :func:`pareto_rank` — successive non-dominated sorting (NSGA-style
  front peeling: rank 0 is the frontier, rank 1 the frontier of the
  rest, ...);
- :func:`crowding_distance` — the usual boundary-preserving density
  estimate, used to break ties when a front must be truncated;
- :func:`hypervolume` — exact dominated hypervolume against a reference
  point (2D sweep, recursive objective slicing beyond);
- :func:`frontier_diff` — a structured comparison of two frontiers
  (gained / lost / retained points and the hypervolume ratio).

Duplicated points never dominate each other (dominance requires strict
improvement in at least one objective), so repeated evaluations of one
scenario cannot eject it from the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_points(points) -> np.ndarray:
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1) if arr.size else arr.reshape(0, 1)
    if arr.ndim != 2:
        raise ValueError(f"expected an (n, d) array of objectives, got {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError("objective values must be finite")
    return arr


def nondominated_mask(points) -> np.ndarray:
    """Boolean mask of the non-dominated rows (minimization).

    Row ``a`` dominates row ``b`` iff ``a <= b`` everywhere and ``a < b``
    somewhere.  One ``(n, n, d)`` broadcast comparison; n is frontier-
    candidate scale (hundreds to low thousands), where this beats the
    per-pair loop by orders of magnitude.
    """
    pts = _as_points(points)
    n = len(pts)
    if n == 0:
        return np.zeros(0, dtype=bool)
    less_equal = (pts[:, None, :] <= pts[None, :, :]).all(axis=2)
    strictly_less = (pts[:, None, :] < pts[None, :, :]).any(axis=2)
    dominates = less_equal & strictly_less  # [a, b] = a dominates b
    return ~dominates.any(axis=0)


def pareto_rank(points) -> np.ndarray:
    """Front index per row: 0 = non-dominated, 1 = next front, ...

    Peels :func:`nondominated_mask` off the remaining rows until all are
    ranked.
    """
    pts = _as_points(points)
    ranks = np.full(len(pts), -1, dtype=np.int64)
    remaining = np.arange(len(pts))
    front = 0
    while remaining.size:
        mask = nondominated_mask(pts[remaining])
        ranks[remaining[mask]] = front
        remaining = remaining[~mask]
        front += 1
    return ranks


def crowding_distance(points) -> np.ndarray:
    """Per-row crowding distance (boundary rows get ``inf``).

    Within one front, larger = more isolated = more worth keeping when
    the front must be truncated to a survivor budget.
    """
    pts = _as_points(points)
    n, d = pts.shape
    if n == 0:
        return np.zeros(0)
    distance = np.zeros(n)
    for k in range(d):
        order = np.argsort(pts[:, k], kind="stable")
        spread = pts[order[-1], k] - pts[order[0], k]
        distance[order[0]] = distance[order[-1]] = np.inf
        if n > 2 and spread > 0:
            gaps = (pts[order[2:], k] - pts[order[:-2], k]) / spread
            distance[order[1:-1]] += gaps
    return distance


def reference_point(points, margin: float = 1.1) -> np.ndarray:
    """A dominated reference for hypervolume: the nadir scaled outward.

    ``margin`` > 1 keeps boundary points contributing nonzero volume.
    Comparing two frontiers demands one *shared* reference — compute it
    over their concatenation.
    """
    pts = _as_points(points)
    if len(pts) == 0:
        raise ValueError("cannot derive a reference point from no points")
    if margin < 1.0:
        raise ValueError("margin must be >= 1")
    worst = pts.max(axis=0)
    # Scale away from zero too: a coordinate whose worst value is 0 still
    # needs clearance or its slab contributes nothing.
    return np.where(worst > 0, worst * margin, worst + (margin - 1.0))


def hypervolume(points, ref) -> float:
    """Exact hypervolume dominated by ``points`` w.r.t. ``ref`` (minimize).

    Points not strictly below the reference in every coordinate
    contribute nothing and are clipped out.  2D uses the classic sorted
    sweep; higher dimensions recurse by slicing the last objective
    (HSO) — frontier sizes here are small, so exactness beats Monte Carlo.
    """
    pts = _as_points(points)
    ref = np.asarray(ref, dtype=np.float64).reshape(-1)
    if pts.size and pts.shape[1] != ref.shape[0]:
        raise ValueError(
            f"reference has {ref.shape[0]} coords for {pts.shape[1]}-d points"
        )
    if len(pts) == 0:
        return 0.0
    pts = pts[(pts < ref).all(axis=1)]
    if len(pts) == 0:
        return 0.0
    pts = pts[nondominated_mask(pts)]
    return float(_hv(pts, ref))


def _hv(pts: np.ndarray, ref: np.ndarray) -> float:
    """Recursive slicing on mutually non-dominated points below ``ref``."""
    d = pts.shape[1]
    if d == 1:
        return float(ref[0] - pts[:, 0].min())
    if d == 2:
        order = np.argsort(pts[:, 0], kind="stable")
        xs, ys = pts[order, 0], pts[order, 1]
        edge_x = np.append(xs[1:], ref[0])
        # Non-dominated 2D points sorted by x have strictly decreasing y.
        return float(np.dot(edge_x - xs, ref[1] - ys))
    order = np.argsort(pts[:, -1], kind="stable")
    sorted_pts = pts[order]
    levels = sorted_pts[:, -1]
    volume = 0.0
    for i in range(len(sorted_pts)):
        upper = levels[i + 1] if i + 1 < len(sorted_pts) else ref[-1]
        thickness = upper - levels[i]
        if thickness <= 0:
            continue
        slab = sorted_pts[: i + 1, :-1]
        slab = slab[nondominated_mask(slab)]
        volume += thickness * _hv(slab, ref[:-1])
    return volume


@dataclass(frozen=True)
class FrontierDiff:
    """How frontier ``b`` moved relative to frontier ``a``.

    Indices refer to rows of the inputs.  ``hv_ratio`` is
    ``hv(b) / hv(a)`` under one shared reference point (``inf`` when
    ``a`` has zero volume but ``b`` does not, 1 when both are empty).
    """

    gained: tuple[int, ...]  # rows of b strictly better than all of a
    lost: tuple[int, ...]  # rows of a that b dominates nowhere near
    retained: tuple[int, ...]  # rows of b matched by some row of a
    hv_a: float
    hv_b: float
    reference: tuple[float, ...] = field(default=())

    @property
    def hv_ratio(self) -> float:
        if self.hv_a == 0:
            return 1.0 if self.hv_b == 0 else float("inf")
        return self.hv_b / self.hv_a


def frontier_diff(a, b, margin: float = 1.1) -> FrontierDiff:
    """Compare two frontiers over the same objective space.

    A row of ``b`` is *retained* when some row of ``a`` weakly dominates
    it (the old frontier already achieved it), *gained* otherwise.  A row
    of ``a`` is *lost* when no row of ``b`` weakly dominates it — the new
    frontier gave that trade-off point up.
    """
    a_pts, b_pts = _as_points(a), _as_points(b)
    if a_pts.size and b_pts.size and a_pts.shape[1] != b_pts.shape[1]:
        raise ValueError("frontiers live in different objective spaces")
    both = (
        np.vstack([a_pts, b_pts])
        if a_pts.size and b_pts.size
        else (a_pts if a_pts.size else b_pts)
    )
    if both.size == 0:
        return FrontierDiff((), (), (), 0.0, 0.0)
    ref = reference_point(both, margin)
    gained, retained = [], []
    for idx, row in enumerate(b_pts):
        covered = a_pts.size and (
            ((a_pts <= row).all(axis=1)).any()
        )
        (retained if covered else gained).append(idx)
    lost = []
    for idx, row in enumerate(a_pts):
        covered = b_pts.size and ((b_pts <= row).all(axis=1)).any()
        if not covered:
            lost.append(idx)
    return FrontierDiff(
        gained=tuple(gained),
        lost=tuple(lost),
        retained=tuple(retained),
        hv_a=hypervolume(a_pts, ref),
        hv_b=hypervolume(b_pts, ref),
        reference=tuple(ref.tolist()),
    )
