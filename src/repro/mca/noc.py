"""2D-mesh network-on-chip model.

The paper counts inter-crossbar routes and packets (its SNU / PGO metrics)
without committing to a topology; this module supplies the obvious physical
substrate — crossbars at the tiles of a 2D mesh with dimension-ordered
(XY) routing — so energy and congestion reports can weight global packets
by actual hop distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class MeshPosition:
    x: int
    y: int


class MeshNoC:
    """A width x height mesh with one crossbar per tile (row-major)."""

    def __init__(self, num_tiles: int, width: int | None = None) -> None:
        if num_tiles < 1:
            raise ValueError("need at least one tile")
        self.num_tiles = num_tiles
        self.width = width or max(1, math.ceil(math.sqrt(num_tiles)))
        self.height = math.ceil(num_tiles / self.width)
        self._hop_matrix: np.ndarray | None = None

    def position(self, tile: int) -> MeshPosition:
        if not 0 <= tile < self.num_tiles:
            raise IndexError(f"tile {tile} out of range")
        return MeshPosition(tile % self.width, tile // self.width)

    @property
    def hop_matrix(self) -> np.ndarray:
        """All-pairs Manhattan hop counts, built once and cached.

        For all-pairs analyses (congestion heatmaps, batch hop weighting)
        this is one int32 lookup table instead of per-pair position math.
        """
        if self._hop_matrix is None:
            tiles = np.arange(self.num_tiles, dtype=np.int32)
            xs, ys = tiles % self.width, tiles // self.width
            self._hop_matrix = (
                np.abs(xs[:, None] - xs[None, :])
                + np.abs(ys[:, None] - ys[None, :])
            )
        return self._hop_matrix

    def hops(self, src: int, dst: int) -> int:
        """Manhattan (XY-routing) hop count between two tiles.

        O(1) arithmetic — no position objects, no matrix build; serves
        from :attr:`hop_matrix` when that is already materialized.
        """
        if not (0 <= src < self.num_tiles and 0 <= dst < self.num_tiles):
            raise IndexError(f"tile pair ({src}, {dst}) out of range")
        if self._hop_matrix is not None:
            return int(self._hop_matrix[src, dst])
        width = self.width
        return abs(src % width - dst % width) + abs(
            src // width - dst // width
        )

    def route(self, src: int, dst: int) -> list[int]:
        """Tile sequence of the XY route (inclusive of both endpoints).

        Dimension-ordered (x-first) routing, except when the source sits in
        a ragged last row and the x leg would pass through tiles that don't
        exist — there the route goes y-first through the (always complete)
        column instead.  Either order has the same Manhattan length, so
        :meth:`hops` stays exact.
        """
        a, b = self.position(src), self.position(dst)
        path = [src]
        x, y = a.x, a.y

        def move_x() -> None:
            nonlocal x
            while x != b.x:
                x += 1 if b.x > x else -1
                path.append(y * self.width + x)

        def move_y() -> None:
            nonlocal y
            while y != b.y:
                y += 1 if b.y > y else -1
                path.append(y * self.width + x)

        if a.y * self.width + max(a.x, b.x) < self.num_tiles:
            move_x()
            move_y()
        else:
            move_y()
            move_x()
        return path


@dataclass
class LinkLoad:
    """Per-link packet counts accumulated over a simulation."""

    loads: dict[tuple[int, int], int] = field(default_factory=dict)

    def add_route(self, tiles: list[int], packets: int = 1) -> None:
        for a, b in zip(tiles, tiles[1:]):
            key = (a, b)
            self.loads[key] = self.loads.get(key, 0) + packets

    @property
    def total_link_traversals(self) -> int:
        return sum(self.loads.values())

    @property
    def max_link_load(self) -> int:
        """Peak per-link load — the congestion bottleneck."""
        return max(self.loads.values(), default=0)


def hop_weighted_packets(
    noc: MeshNoC, packet_counts: dict[tuple[int, int], int]
) -> tuple[int, LinkLoad]:
    """Expand crossbar-to-crossbar packet counts into link loads.

    ``packet_counts`` maps ``(src_tile, dst_tile)`` to packets sent.
    Returns total hop-packets (energy proxy) and the per-link load map.
    One walk per pair serves both: the route feeds the load map and its
    length is the (exact, property-tested) hop count.
    """
    load = LinkLoad()
    total_hops = 0
    for (src, dst), packets in packet_counts.items():
        if src == dst:
            continue
        route = noc.route(src, dst)
        load.add_route(route, packets)
        total_hops += (len(route) - 1) * packets
    return total_hops, load
