"""PGO workload-transfer ablation.

Extends Fig. 9: how does a PGO mapping optimized for one activity
distribution fare when the workload shifts?  Shape: on the *matching*
workload PGO is at least as good as SNU (ILP guarantee on the profile,
statistical on held-out samples); under structure-free noise the
advantage shrinks toward zero — the regularity premise, shown from both
sides.
"""

from bench_config import once
from repro.experiments.networks import paper_network
from repro.experiments.runner import ExperimentConfig
from repro.experiments.common import area_optimize, het_problem, pgo_optimize, snu_optimize
from repro.mapping.pgo import expected_global_packets
from repro.profile.profiler import collect_profile
from repro.profile.workloads import hotspot_frames, noise_frames

CONFIG = ExperimentConfig(scale=0.15, area_time_limit=6.0, route_time_limit=4.0)
WINDOW = 16


def test_benchmark_pgo_transfer(benchmark):
    network = paper_network("D", scale=CONFIG.scale)
    problem = het_problem(network, CONFIG)
    side = max(2, int(len(network.input_ids()) ** 0.5))

    def run():
        area = area_optimize(problem, CONFIG)
        snu = snu_optimize(problem, area.mapping, CONFIG)
        hot_profile = collect_profile(
            network,
            hotspot_frames(rows=side, cols=side, num_samples=8, seed=3),
            window=WINDOW,
        )
        pgo = pgo_optimize(problem, snu.mapping, hot_profile, CONFIG)
        return snu.mapping, pgo.mapping, hot_profile

    snu_mapping, pgo_mapping, hot_profile = once(benchmark, run)

    # On the profiled workload PGO is provably no worse.
    assert expected_global_packets(pgo_mapping, hot_profile) <= (
        expected_global_packets(snu_mapping, hot_profile)
    )

    # Under a matching fresh sample the advantage persists...
    fresh = collect_profile(
        network,
        hotspot_frames(rows=side, cols=side, num_samples=20, seed=11),
        window=WINDOW,
    )
    matched_gain = expected_global_packets(snu_mapping, fresh) - (
        expected_global_packets(pgo_mapping, fresh)
    )

    # ...and under structure-free noise it may vanish, but the PGO
    # mapping must not be catastrophically worse (routes still bounded
    # by the frozen crossbar set).
    noisy = collect_profile(
        network,
        noise_frames(rows=side, cols=side, num_samples=20, density=0.8, seed=11),
        window=WINDOW,
    )
    snu_noise = expected_global_packets(snu_mapping, noisy)
    pgo_noise = expected_global_packets(pgo_mapping, noisy)
    assert matched_gain >= 0 or abs(matched_gain) <= 0.1 * max(
        expected_global_packets(snu_mapping, fresh), 1
    )
    assert pgo_noise <= 1.5 * max(snu_noise, 1)
