"""Fig. 3 reproduction: heterogeneous area-optimization breakdown.

Two parts, as in the paper:

- subfigure (a): the incumbent stream of the solver on one network —
  (solver time, area) pairs showing preferred crossbar sizes are found
  quickly and then slowly refined;
- subfigures (b)-(g): per-network best solutions as crossbar-dimension
  histograms ("Dimension (In x Out), Area% and #Count"), where the paper
  observes a clear trend toward taller (multi-macro) crossbars driven by
  structural sparsity, plus a best-solution-time summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from ..batch.engine import parallel_map
from ..ilp.highs_backend import solve_with_trace
from ..mapping.axon_sharing import AreaModel
from ..mapping.greedy import greedy_first_fit
from ..mapping.solution import Mapping
from .common import ExhibitResult, het_problem
from .networks import NETWORK_NAMES, paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class EvolutionPoint:
    """One incumbent of the area solve."""

    det_time: float
    area: float


@dataclass(frozen=True)
class Fig3Network:
    """One network's best heterogeneous solution and its evolution."""

    network: str
    evolution: list[EvolutionPoint]
    best_mapping: Mapping
    best_det_time: float

    def histogram_rows(self) -> list[tuple]:
        """(dimension label, share of area %, count) rows, Fig. 3b-f style."""
        mapping = self.best_mapping
        arch = mapping.problem.architecture
        total_area = mapping.area()
        per_label: dict[str, tuple[float, int]] = {}
        for j in mapping.enabled_slots():
            ctype = arch.slot(j).ctype
            area, count = per_label.get(ctype.label, (0.0, 0))
            per_label[ctype.label] = (area + ctype.area, count + 1)
        return [
            (label, round(100.0 * area / total_area, 1), count)
            for label, (area, count) in sorted(per_label.items())
        ]


def run_network(name: str, config: ExperimentConfig) -> Fig3Network:
    network = paper_network(name, scale=config.scale)
    problem = het_problem(network, config)
    handle = AreaModel(problem)
    warm = handle.warm_start_from(greedy_first_fit(problem))
    result = solve_with_trace(
        handle.model,
        total_time=config.area_time_limit,
        num_slices=config.trace_slices,
        warm_start=warm,
    )
    evolution = [
        EvolutionPoint(inc.det_time, inc.objective) for inc in result.incumbents
    ]
    best_values = (
        result.incumbents[-1].values if result.incumbents else result.values
    )
    assert best_values is not None
    best = handle.mapping_from_values(dict(best_values))
    best_det = evolution[-1].det_time if evolution else result.det_time
    return Fig3Network(
        network=name,
        evolution=evolution,
        best_mapping=best,
        best_det_time=best_det,
    )


def run_fig3(config: ExperimentConfig) -> ExhibitResult:
    # The trace-slice sweep is embarrassingly parallel per network; route
    # it through the batch layer so --jobs overlaps the re-solve series.
    results = parallel_map(
        partial(run_network, config=config), NETWORK_NAMES, jobs=config.jobs
    )

    sections: list[str] = []
    focus = results[0]
    trace_rows = [
        (round(p.det_time, 1), p.area) for p in focus.evolution
    ]
    from .report import trend_line

    sections.append(
        f"(a) Network {focus.network} area evolution (det time, area):\n"
        + format_table(["det_time", "area"], trace_rows)
        + "\n"
        + trend_line("area", [p.area for p in focus.evolution], "memristors")
    )

    all_rows: list[tuple] = []
    for res in results:
        for label, area_pct, count in res.histogram_rows():
            all_rows.append((res.network, label, area_pct, count))
    sections.append(
        "(b-f) Best-solution crossbar breakdown (Dimension In x Out):\n"
        + format_table(["Net", "Dim", "Area%", "#Count"], all_rows)
    )

    summary_rows = [
        (res.network, round(res.best_det_time, 1)) for res in results
    ]
    sections.append(
        "(g) Best solution times (det):\n"
        + format_table(["Network", "Best Solution Time (det)"], summary_rows)
    )
    note = (
        "paper shape: near-best solutions appear early; best solutions "
        "prefer taller (multi-macro) crossbars over squares"
    )
    return ExhibitResult(
        report="\n\n".join(sections) + "\n" + note,
        rows=all_rows,
    )
