"""Property-based invariants of the MCA substrate."""

from hypothesis import given, settings, strategies as st

from repro.mca.architecture import heterogeneous_architecture, table_ii_types
from repro.mca.noc import MeshNoC
from repro.mca.processor import count_packets
from repro.snn.generators import random_network


@settings(max_examples=40, deadline=None)
@given(
    tiles=st.integers(1, 40),
    a=st.integers(0, 39),
    b=st.integers(0, 39),
    c=st.integers(0, 39),
)
def test_mesh_hops_is_a_metric(tiles, a, b, c):
    """Symmetry, identity and triangle inequality of XY hop distance."""
    noc = MeshNoC(tiles)
    a, b, c = a % tiles, b % tiles, c % tiles
    assert noc.hops(a, a) == 0
    assert noc.hops(a, b) == noc.hops(b, a)
    assert noc.hops(a, c) <= noc.hops(a, b) + noc.hops(b, c)
    # The cached all-pairs matrix agrees with the arithmetic path.
    assert int(noc.hop_matrix[a, b]) == noc.hops(a, b)


@settings(max_examples=30, deadline=None)
@given(tiles=st.integers(1, 30), a=st.integers(0, 29), b=st.integers(0, 29))
def test_mesh_route_length_matches_hops(tiles, a, b):
    noc = MeshNoC(tiles)
    a, b = a % tiles, b % tiles
    route = noc.route(a, b)
    assert len(route) == noc.hops(a, b) + 1
    assert route[0] == a and route[-1] == b
    # Each step moves exactly one link.
    for u, v in zip(route, route[1:]):
        assert noc.hops(u, v) == 1


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    num_slots=st.integers(2, 6),
    spikes=st.integers(0, 20),
)
def test_packet_counts_bounded_by_spikes_times_crossbars(seed, num_slots, spikes):
    """Each spike sends at most one packet per crossbar (axon sharing)."""
    net = random_network(10, 20, seed=seed)
    assignment = {nid: nid % num_slots for nid in net.neuron_ids()}
    counts = {nid: spikes for nid in net.neuron_ids()}
    local, global_, pairs = count_packets(net, assignment, counts)
    total_fires = spikes * sum(
        1 for nid in net.neuron_ids() if net.successors(nid)
    )
    assert local + global_ <= total_fires * num_slots
    assert sum(pairs.values()) == global_
    # Doubling the profile doubles the traffic (linearity).
    double = {nid: 2 * spikes for nid in net.neuron_ids()}
    local2, global2, _ = count_packets(net, assignment, double)
    assert (local2, global2) == (2 * local, 2 * global_)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(4, 200))
def test_heterogeneous_pool_always_hosts_by_outputs(n):
    arch = heterogeneous_architecture(n, max_slots_per_type=256)
    for ctype in table_ii_types():
        slots = arch.slots_of_type(ctype)
        assert sum(s.outputs for s in slots) >= n
