"""Tests for the Model container and its matrix lowering."""

import numpy as np
import pytest

from repro.ilp.expr import VarType, lin_sum
from repro.ilp.model import Model, ObjectiveSense


@pytest.fixture
def simple_model():
    m = Model("simple")
    x = m.add_binary("x")
    y = m.add_integer("y", 0, 5)
    z = m.add_continuous("z", -1.0, 1.0)
    m.add(x + y <= 4, name="cap")
    m.add(y - z >= 0, name="link")
    m.add(x + z == 1, name="eq")
    m.minimize(x + 2 * y + 3 * z)
    return m


class TestVariables:
    def test_duplicate_name_rejected(self):
        m = Model()
        m.add_binary("x")
        with pytest.raises(ValueError, match="duplicate"):
            m.add_binary("x")

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(ValueError, match="lb"):
            m.add_var("x", 2.0, 1.0)

    def test_lookup(self, simple_model):
        assert simple_model.var("y").vartype is VarType.INTEGER
        assert simple_model.has_var("z")
        assert not simple_model.has_var("w")

    def test_indices_are_contiguous(self, simple_model):
        assert [v.index for v in simple_model.variables] == [0, 1, 2]


class TestConstraintsAndObjective:
    def test_add_requires_constraint(self):
        m = Model()
        x = m.add_binary("x")
        with pytest.raises(TypeError):
            m.add(x + 1)  # an expression, not a constraint

    def test_add_all(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_all([x <= 1, y <= 1])
        assert m.num_constraints == 2

    def test_objective_sense(self, simple_model):
        assert simple_model.objective_sense is ObjectiveSense.MINIMIZE
        simple_model.maximize(simple_model.var("x"))
        assert simple_model.objective_sense is ObjectiveSense.MAXIMIZE

    def test_stats(self, simple_model):
        s = simple_model.stats()
        assert s["binary"] == 1
        assert s["integer"] == 1
        assert s["continuous"] == 1
        assert s["constraints"] == 3

    def test_repr(self, simple_model):
        assert "vars=3" in repr(simple_model)


class TestFeasibilityChecking:
    def test_feasible_assignment(self, simple_model):
        values = {"x": 1.0, "y": 1.0, "z": 0.0}
        assert simple_model.check_feasible(values) == []

    def test_bound_violation_reported(self, simple_model):
        violations = simple_model.check_feasible({"x": 2.0, "y": 0, "z": 1})
        assert any("outside" in v for v in violations)

    def test_integrality_violation_reported(self, simple_model):
        violations = simple_model.check_feasible({"x": 0.5, "y": 0, "z": 0.5})
        assert any("not integral" in v for v in violations)

    def test_constraint_violation_reported(self, simple_model):
        violations = simple_model.check_feasible({"x": 1.0, "y": 5.0, "z": 0.0})
        assert any("cap" in v for v in violations)

    def test_missing_vars_default_to_lower_bound(self, simple_model):
        # x, y default to 0; z defaults to -1 -> eq constraint violated.
        violations = simple_model.check_feasible({})
        assert violations

    def test_objective_of(self, simple_model):
        assert simple_model.objective_of({"x": 1, "y": 1, "z": 0}) == pytest.approx(3.0)


class TestFixVar:
    def test_fix_var_clamps_bounds(self, simple_model):
        simple_model.fix_var("y", 3)
        y = simple_model.var("y")
        assert y.lb == y.ub == 3.0


class TestLowering:
    def test_shapes(self, simple_model):
        form = simple_model.lower()
        assert form.num_vars == 3
        assert form.num_rows == 3
        assert form.a_matrix.shape == (3, 3)

    def test_objective_vector(self, simple_model):
        form = simple_model.lower()
        np.testing.assert_allclose(form.c, [1.0, 2.0, 3.0])
        assert form.sign == 1.0

    def test_row_bounds(self, simple_model):
        form = simple_model.lower()
        # cap: x + y <= 4 -> (-inf, 4]
        assert form.row_lb[0] == -np.inf
        assert form.row_ub[0] == 4.0
        # link: y - z >= 0 -> [0, inf)
        assert form.row_lb[1] == 0.0
        assert form.row_ub[1] == np.inf
        # eq: x + z == 1 -> [1, 1]
        assert form.row_lb[2] == form.row_ub[2] == 1.0

    def test_integrality_flags(self, simple_model):
        form = simple_model.lower()
        np.testing.assert_array_equal(form.integrality, [1, 1, 0])

    def test_maximize_negates(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(3 * x + 2)
        form = m.lower()
        assert form.sign == -1.0
        np.testing.assert_allclose(form.c, [-3.0])
        # objective_value undoes the negation: at x=1, 3*1+2=5.
        assert form.objective_value(np.array([1.0])) == pytest.approx(5.0)

    def test_constant_offset_round_trip(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x + 10)
        form = m.lower()
        assert form.objective_value(np.array([1.0])) == pytest.approx(11.0)

    def test_values_by_index_defaults(self, simple_model):
        by_index = simple_model.values_by_index({"x": 1.0})
        assert by_index[0] == 1.0
        assert by_index[2] == -1.0  # z lower bound
