"""The explorer's objective vector: (area, energy, latency).

One :class:`ObjectivePoint` per evaluated mapping, computed with the
*same* library calls every other part of the repo uses — no private
re-implementations, so a DSE row always agrees with what
``repro simulate`` or the exhibits would report for the same placement:

- **area** — summed enabled-crossbar memristor cost, from
  :func:`repro.mca.energy.enabled_area`;
- **energy** — :func:`repro.mca.energy.cost_summary` total over a
  traffic report synthesized from the scenario's spike profile
  (:func:`repro.mca.processor.static_traffic`, hop-weighted over the
  scenario's mesh);
- **latency** — worst-case input-to-output timesteps from
  :func:`repro.mapping.latency.critical_path_latency` on the same mesh.

All three are minimized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mapping.latency import critical_path_latency
from ..mapping.solution import Mapping
from ..mca.energy import EnergyModel, cost_summary, enabled_area
from ..mca.noc import MeshNoC
from ..mca.processor import static_traffic

#: Objective order of every point/array in this package.
OBJECTIVE_NAMES = ("area", "energy", "latency")


@dataclass(frozen=True)
class ObjectivePoint:
    """One mapping's position in (area, energy, latency) space."""

    area: float  # enabled memristor cost C_j summed
    energy: float  # total (static + communication) pJ
    latency: float  # mapped critical-path timesteps
    enabled_crossbars: int = 0
    global_packets: int = 0

    def vector(self) -> np.ndarray:
        return np.array([self.area, self.energy, self.latency], dtype=np.float64)

    def as_dict(self) -> dict:
        return {
            "area": self.area,
            "energy": self.energy,
            "latency": self.latency,
            "enabled_crossbars": self.enabled_crossbars,
            "global_packets": self.global_packets,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObjectivePoint":
        return cls(
            area=float(payload["area"]),
            energy=float(payload["energy"]),
            latency=float(payload["latency"]),
            enabled_crossbars=int(payload.get("enabled_crossbars", 0)),
            global_packets=int(payload.get("global_packets", 0)),
        )


def evaluate_objectives(
    mapping: Mapping,
    spike_counts: dict[int, int],
    noc: MeshNoC | None = None,
    duration: int = 1,
    energy_model: EnergyModel | None = None,
) -> ObjectivePoint:
    """Score one mapping under a spike profile.

    ``duration`` scales the static-leakage term of the energy summary
    (the profile's packet counts already embody however many timesteps
    produced them; 1 keeps static energy a pure area tiebreaker).
    """
    arch = mapping.problem.architecture
    mesh = noc or MeshNoC(arch.num_slots)
    traffic = static_traffic(
        mapping.problem.network, mapping.assignment, spike_counts, noc=mesh
    )
    summary = cost_summary(
        arch, mapping.assignment, traffic, duration, model=energy_model
    )
    count, area = enabled_area(arch, mapping.assignment)
    latency = critical_path_latency(mapping, noc=mesh)
    return ObjectivePoint(
        area=area,
        energy=summary.total_energy_pj,
        latency=float(latency),
        enabled_crossbars=count,
        global_packets=traffic.global_packets,
    )


def objective_matrix(points) -> np.ndarray:
    """Stack :class:`ObjectivePoint` rows into the Pareto engine's input."""
    rows = [p.vector() for p in points]
    return np.vstack(rows) if rows else np.zeros((0, len(OBJECTIVE_NAMES)))
