"""Fig. 8 bench: area/SNU evolution for network A, heterogeneous MCA.

Shape: descending area frontier, SNU never hurts, and the heterogeneous
frontier ends strictly below the homogeneous one at equal solver budget
(the paper's "uniform improvement" observation).
"""

from bench_config import SMALL, once
from repro.experiments.common import het_problem, homo_problem
from repro.experiments.fig7 import evolution_frontier
from repro.experiments.networks import paper_network


def test_benchmark_fig8(benchmark):
    network = paper_network("A", scale=SMALL.scale)
    het = het_problem(network, SMALL)

    points = once(benchmark, lambda: evolution_frontier(het, SMALL))
    assert points
    areas = [p.area for p in points]
    assert areas == sorted(areas, reverse=True)
    for p in points:
        assert p.routes_snu_opt <= p.routes_area_opt

    homo_points = evolution_frontier(homo_problem(network, SMALL), SMALL)
    assert min(areas) < min(p.area for p in homo_points)
