"""Tests for network statistics (Table I columns)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.snn.generators import random_network
from repro.snn.network import Network
from repro.snn.stats import (
    edge_density,
    gini_index,
    max_fan_in,
    max_fan_out,
    network_stats,
)


class TestGiniIndex:
    def test_uniform_is_zero(self):
        assert gini_index([3, 3, 3, 3]) == pytest.approx(0.0)

    def test_single_owner_approaches_one(self):
        # One nonzero among n values: G = (n-1)/n.
        assert gini_index([0, 0, 0, 10]) == pytest.approx(0.75)

    def test_known_two_point(self):
        # [0, 1]: G = 0.5 by the pairwise-difference definition.
        assert gini_index([0, 1]) == pytest.approx(0.5)

    def test_empty_and_zero(self):
        assert gini_index([]) == 0.0
        assert gini_index([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_index([-1, 2])

    def test_scale_invariance(self):
        values = [1, 2, 3, 10]
        assert gini_index(values) == pytest.approx(
            gini_index([10 * v for v in values])
        )

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_bounded_in_unit_interval(self, values):
        g = gini_index(values)
        assert 0.0 <= g <= 1.0

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 20, size=25).astype(float)
        n = x.size
        pairwise = np.abs(x[:, None] - x[None, :]).sum() / (2 * n * n * x.mean())
        assert gini_index(x) == pytest.approx(pairwise)


class TestDensityAndFanIn:
    def test_edge_density_directed(self):
        net = Network()
        for i in range(3):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(1, 2)
        assert edge_density(net) == pytest.approx(2 / 6)

    def test_density_degenerate(self):
        net = Network()
        net.add_neuron(0)
        assert edge_density(net) == 0.0

    def test_max_fan_in_out(self):
        net = Network()
        for i in range(4):
            net.add_neuron(i)
        net.add_synapse(0, 3)
        net.add_synapse(1, 3)
        net.add_synapse(2, 3)
        net.add_synapse(3, 0)
        assert max_fan_in(net) == 3
        assert max_fan_out(net) == 1

    def test_empty_network(self):
        net = Network()
        assert max_fan_in(net) == 0
        assert max_fan_out(net) == 0


class TestNetworkStats:
    def test_full_record(self):
        net = random_network(20, 40, seed=2, name="stats-test")
        st_ = network_stats(net)
        assert st_.name == "stats-test"
        assert st_.node_count == 20
        assert st_.edge_count == 40
        assert st_.max_fan_in == max_fan_in(net)
        assert 0.0 <= st_.gini_incoming <= 1.0
        assert 0.0 <= st_.gini_outgoing <= 1.0
        assert len(st_.as_row()) == 7
