"""Spike-timing-dependent plasticity (STDP).

The paper's background (§II-A, [15]) grounds SNN training in STDP.  The
reproduction's benchmark networks come from EONS, but on-chip learning is
the other half of the neuromorphic story, so the simulator supports the
classic pair-based rule:

- **potentiation**: when a post-synaptic neuron fires at ``t`` and its
  pre-synaptic partner fired at ``t_pre <= t``, the weight grows by
  ``a_plus * exp(-(t - t_pre) / tau)``;
- **depression**: when a pre-synaptic neuron fires at ``t`` after its
  post-synaptic partner fired at ``t_post < t``, the weight shrinks by
  ``a_minus * exp(-(t - t_post) / tau)``;
- weights clip to ``[w_min, w_max]``.

:func:`run_stdp` executes the same discrete-time LIF dynamics as
:class:`repro.snn.simulator.Simulator` (same firing order, same delay
handling — cross-checked by tests) with the plasticity rule applied
online, returning both the spike record and the adapted network.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from .network import Network
from .simulator import SimulationResult


@dataclass(frozen=True)
class StdpConfig:
    """Pair-based STDP parameters."""

    a_plus: float = 0.05
    a_minus: float = 0.05
    tau: float = 4.0  # timesteps
    w_min: float = -2.0
    w_max: float = 2.0

    def __post_init__(self) -> None:
        if self.a_plus < 0 or self.a_minus < 0:
            raise ValueError("learning rates must be non-negative")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.w_min > self.w_max:
            raise ValueError("w_min must not exceed w_max")


def run_stdp(
    network: Network,
    duration: int,
    config: StdpConfig,
    input_spikes: Mapping[int, Iterable[int]] | None = None,
) -> tuple[SimulationResult, Network]:
    """Simulate with online STDP; returns (record, adapted network copy).

    The input network is left untouched; weight updates land in the
    returned copy.  Spike *dynamics* use the weights as they evolve, so
    learning influences later activity within the same run (online rule).
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    net = network.copy(f"{network.name}-stdp")
    pending: dict[int, dict[int, float]] = defaultdict(dict)
    if input_spikes:
        for nid, times in input_spikes.items():
            thr = net.neuron(nid).threshold
            for t in times:
                if 0 <= t < duration:
                    slot = pending[t]
                    slot[nid] = slot.get(nid, 0.0) + thr

    potentials = {nid: 0.0 for nid in net.neuron_ids()}
    leaks = {n.id: n.leak for n in net.neurons()}
    thresholds = {n.id: n.threshold for n in net.neurons()}
    last_spike: dict[int, int] = {}
    result = SimulationResult(duration=duration)
    counts = {nid: 0 for nid in net.neuron_ids()}

    def potentiate(post: int, t: int) -> None:
        for pre in sorted(net.predecessors(post)):
            t_pre = last_spike.get(pre)
            if t_pre is None or t_pre > t:
                continue
            syn = net.synapse(pre, post)
            delta = config.a_plus * math.exp(-(t - t_pre) / config.tau)
            new_w = min(config.w_max, syn.weight + delta)
            net.replace_synapse(replace(syn, weight=new_w))

    def depress(pre: int, t: int) -> None:
        for post in sorted(net.successors(pre)):
            t_post = last_spike.get(post)
            if t_post is None or t_post >= t:
                continue
            syn = net.synapse(pre, post)
            delta = config.a_minus * math.exp(-(t - t_post) / config.tau)
            new_w = max(config.w_min, syn.weight - delta)
            net.replace_synapse(replace(syn, weight=new_w))

    for t in range(duration):
        for nid, leak in leaks.items():
            if leak != 1.0:
                potentials[nid] *= leak
        for nid, charge in pending.pop(t, {}).items():
            potentials[nid] += charge
        fired = sorted(
            nid for nid in potentials
            if potentials[nid] >= thresholds[nid] - 1e-12
        )
        for nid in fired:
            result.spikes.append((t, nid))
            counts[nid] += 1
            potentials[nid] = 0.0
            # Plasticity first (uses pre-spike weights' timing state) ...
            potentiate(nid, t)
            depress(nid, t)
            last_spike[nid] = t
            # ... then deliver outgoing charges with the updated weights.
            for post in sorted(net.successors(nid)):
                syn = net.synapse(nid, post)
                target_t = t + syn.delay
                if target_t < duration:
                    slot = pending[target_t]
                    slot[post] = slot.get(post, 0.0) + syn.weight

    result.spike_counts = counts
    result.final_potentials = dict(potentials)
    return result, net


def weight_drift(before: Network, after: Network) -> dict[tuple[int, int], float]:
    """Per-synapse weight change between two structurally equal networks."""
    drift: dict[tuple[int, int], float] = {}
    for syn in before.synapses():
        new = after.synapse(syn.pre, syn.post)
        delta = new.weight - syn.weight
        if abs(delta) > 1e-12:
            drift[(syn.pre, syn.post)] = delta
    return drift
