"""Cross-layer integration tests.

The reproduction's central consistency claim: the *static* quantities the
ILP optimizes (s/b variables, objectives 9/11/12) must coincide with the
*dynamic* quantities the processor model counts when executing real spike
traffic.  These tests tie together snn, mca, mapping and ilp.
"""

import pytest

from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.pgo import build_pgo_model, expected_global_packets
from repro.mapping.problem import MappingProblem
from repro.mapping.snu import build_snu_model
from repro.mca.architecture import heterogeneous_architecture
from repro.mca.processor import MappedProcessor
from repro.snn.generators import layered_network
from repro.snn.simulator import Simulator


@pytest.fixture(scope="module")
def stack():
    network = layered_network([5, 10, 8, 4], connection_prob=0.4, seed=33)
    arch = heterogeneous_architecture(network.num_neurons, max_slots_per_type=12)
    problem = MappingProblem(network, arch)
    handle = AreaModel(problem)
    result = HighsBackend(HighsOptions(time_limit=10)).solve(
        handle.model, warm_start=handle.warm_start_from(greedy_first_fit(problem))
    )
    mapping = handle.extract_mapping(result)
    input_spikes = {nid: [0, 3, 6, 9] for nid in network.input_ids()}
    return network, arch, problem, mapping, input_spikes, result


class TestStaticDynamicConsistency:
    def test_ilp_s_variables_match_runtime_axon_sets(self, stack):
        """s[k, j] = 1 in the solved model exactly where the mapped
        processor would deliver axon k to crossbar j."""
        network, _, problem, mapping, _, result = stack
        for j in mapping.enabled_slots():
            expected = mapping.axon_inputs(j)
            for k in problem.sources():
                var = f"s_{k}_{j}"
                value = result.values.get(var, 0.0)
                assert (value > 0.5) == (k in expected), (k, j)

    def test_packet_count_matches_processor(self, stack):
        """Mapping.packet_count == MappedProcessor traffic accounting."""
        network, arch, _, mapping, input_spikes, _ = stack
        proc = MappedProcessor(network, mapping.assignment, arch)
        sim, traffic = proc.run(24, input_spikes=input_spikes)
        local, global_ = mapping.packet_count(sim.spike_counts)
        assert traffic.local_packets == local
        assert traffic.global_packets == global_

    def test_objective12_predicts_runtime_packets(self, stack):
        """The PGO objective evaluated on a profile equals the global
        packets the processor counts when replaying that same profile."""
        network, arch, problem, mapping, input_spikes, _ = stack
        sim_counts = Simulator(network).run(24, input_spikes=input_spikes).spike_counts
        handle = build_pgo_model(problem, mapping, sim_counts)
        result = HighsBackend(HighsOptions(time_limit=8)).solve(
            handle.model, warm_start=handle.warm_start_from(mapping)
        )
        optimized = handle.extract_mapping(result)
        proc = MappedProcessor(network, optimized.assignment, arch)
        _, traffic = proc.run(24, input_spikes=input_spikes)
        assert traffic.global_packets == pytest.approx(result.objective)
        assert traffic.global_packets == expected_global_packets(
            optimized, dict(sim_counts)
        )

    def test_snu_reduces_runtime_global_packets_under_uniform_traffic(self, stack):
        """With every source spiking equally, fewer global routes must
        mean fewer global packets end to end."""
        network, arch, problem, mapping, _, _ = stack
        handle = build_snu_model(problem, mapping)
        result = HighsBackend(HighsOptions(time_limit=8)).solve(
            handle.model, warm_start=handle.warm_start_from(mapping)
        )
        optimized = handle.extract_mapping(result)
        uniform = {nid: 1 for nid in network.neuron_ids()}
        _, base_packets = mapping.packet_count(uniform)
        _, opt_packets = optimized.packet_count(uniform)
        assert opt_packets <= base_packets
        assert opt_packets == optimized.global_routes()

    def test_simulation_semantics_mapping_invariant(self, stack):
        """Placement changes communication, never function: spike rasters
        are identical however the network is mapped."""
        network, arch, _, mapping, input_spikes, _ = stack
        plain = Simulator(network).run(24, input_spikes=input_spikes)
        proc = MappedProcessor(network, mapping.assignment, arch)
        mapped_sim, _ = proc.run(24, input_spikes=input_spikes)
        assert mapped_sim.spikes == plain.spikes
