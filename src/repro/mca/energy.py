"""First-order area / energy accounting.

The paper evaluates area as memristor count (§V-D) and motivates route /
packet minimization by energy: every global packet crosses chip routers.
This module turns a mapping plus a traffic report into one comparable
cost summary.  Coefficients are deliberately simple, order-of-magnitude
figures (set your own for a specific process); all paper comparisons are
relative, so only ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .architecture import Architecture
from .processor import TrafficReport


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients (picojoules, order-of-magnitude)."""

    memristor_static_pj: float = 0.01  # leakage per device per timestep
    local_packet_pj: float = 0.1  # crossbar-internal delivery
    router_hop_pj: float = 1.0  # one packet crossing one mesh link
    router_inject_pj: float = 0.5  # NI injection/ejection per global packet

    def __post_init__(self) -> None:
        for name, value in (
            ("memristor_static_pj", self.memristor_static_pj),
            ("local_packet_pj", self.local_packet_pj),
            ("router_hop_pj", self.router_hop_pj),
            ("router_inject_pj", self.router_inject_pj),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CostSummary:
    """Area and energy of one mapped execution."""

    enabled_crossbars: int
    area_memristors: float
    static_energy_pj: float
    communication_energy_pj: float

    @property
    def total_energy_pj(self) -> float:
        return self.static_energy_pj + self.communication_energy_pj


def enabled_area(
    architecture: Architecture, assignment: Mapping[int, int]
) -> tuple[int, float]:
    """(enabled crossbar count, summed area C_j) for a placement."""
    enabled = sorted(set(assignment.values()))
    if not enabled:
        return 0, 0.0
    area = float(
        architecture.slot_areas[np.asarray(enabled, dtype=np.int64)].sum()
    )
    return len(enabled), area


def cost_summary(
    architecture: Architecture,
    assignment: Mapping[int, int],
    traffic: TrafficReport,
    duration: int,
    model: EnergyModel | None = None,
) -> CostSummary:
    """Combine placement area and runtime traffic into one summary."""
    model = model or EnergyModel()
    count, area = enabled_area(architecture, assignment)
    static = model.memristor_static_pj * area * duration
    communication = (
        model.local_packet_pj * traffic.local_packets
        + model.router_inject_pj * traffic.global_packets
        + model.router_hop_pj * traffic.hop_packets
    )
    return CostSummary(
        enabled_crossbars=count,
        area_memristors=area,
        static_energy_pj=static,
        communication_energy_pj=communication,
    )
