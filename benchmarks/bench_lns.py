"""LNS anytime-optimization bench (§V-E "finding optima faster").

Shape: the destroy/repair loop's anytime curve descends monotonically,
ends at or below the greedy start, and stays above the exact optimum.
"""

import pytest

from bench_config import once
from repro.experiments.networks import paper_network
from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.lns import LnsOptions, lns_area
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture


def test_benchmark_lns(benchmark):
    network = paper_network("E", scale=0.2)
    problem = MappingProblem(
        network,
        heterogeneous_architecture(network.num_neurons, max_slots_per_type=12),
    )
    initial = greedy_first_fit(problem)

    result = once(
        benchmark,
        lambda: lns_area(
            problem,
            initial,
            LnsOptions(rounds=6, destroy_fraction=0.35, repair_time_limit=2.0),
        ),
    )
    areas = [a for _, a in result.history]
    assert areas == sorted(areas, reverse=True)
    assert result.mapping.area() <= initial.area() + 1e-9

    handle = AreaModel(problem)
    exact = HighsBackend(HighsOptions(time_limit=20)).solve(
        handle.model, warm_start=handle.warm_start_from(initial)
    )
    assert result.mapping.area() >= exact.objective - 1e-9
    # LNS should recover most of the greedy-to-optimal gap.
    gap = initial.area() - exact.objective
    if gap > 0:
        recovered = initial.area() - result.mapping.area()
        assert recovered >= 0.5 * gap, (recovered, gap)
