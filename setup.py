"""Legacy build shim — all package metadata lives in pyproject.toml.

Kept only for tooling that still invokes ``setup.py`` directly.  In a
normal environment ``pip install -e .`` installs the src-layout package
and the ``repro`` console script from the pyproject config; offline
containers without ``wheel`` can keep using ``PYTHONPATH=src`` instead
(see README.md).
"""
from setuptools import setup

setup()
