"""EONS-style evolutionary optimizer for spiking networks.

Reimplements the core loop of Evolutionary Optimization for Neuromorphic
Systems (Schuman et al. [37], [38]), which the paper used (inside TENNLab)
to train its benchmark networks: a population of candidate SNNs evolves
under tournament selection with structural mutations (add/remove neuron or
synapse), parametric mutations (perturb weight/threshold/delay), and graph
crossover.  The fitness function is arbitrary — the SmartPixel experiment
in :mod:`repro.profile` supplies a classification-accuracy fitness.

This is a faithful small-scale EONS, not a performance-tuned one; the
reproduction's Table-I twins come from :func:`repro.snn.generators.
statistical_twin`, while this module demonstrates the full train-from-
scratch path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from .network import Network

FitnessFn = Callable[[Network], float]


@dataclass(frozen=True)
class EonsConfig:
    """Evolution hyperparameters (defaults suit the examples/tests)."""

    population_size: int = 20
    num_inputs: int = 4
    num_outputs: int = 2
    initial_hidden: int = 6
    initial_synapses: int = 24
    max_neurons: int = 64
    max_fan_in: int = 16
    tournament_size: int = 3
    elite_count: int = 2
    crossover_rate: float = 0.5
    structural_mutation_rate: float = 0.5
    parametric_mutation_rate: float = 0.8
    weight_sigma: float = 0.3
    max_delay: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.elite_count >= self.population_size:
            raise ValueError("elite_count must be < population_size")
        if self.num_inputs < 1 or self.num_outputs < 1:
            raise ValueError("need at least one input and one output neuron")


@dataclass
class EonsResult:
    """Best network found plus the per-generation fitness history."""

    best: Network
    best_fitness: float
    history: list[float] = field(default_factory=list)


class Eons:
    """Evolutionary optimizer over :class:`Network` genomes."""

    def __init__(self, config: EonsConfig | None = None) -> None:
        self.config = config or EonsConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # population seeding
    # ------------------------------------------------------------------
    def random_genome(self) -> Network:
        """A random valid genome with fixed IO neurons and random hidden."""
        cfg = self.config
        net = Network("eons-genome")
        for i in range(cfg.num_inputs):
            net.add_neuron(i, is_input=True)
        for i in range(cfg.num_outputs):
            net.add_neuron(cfg.num_inputs + i, is_output=True)
        for _ in range(cfg.initial_hidden):
            net.add_neuron(threshold=float(self._rng.uniform(0.5, 2.0)))
        ids = net.neuron_ids()
        attempts = 0
        while net.num_synapses < cfg.initial_synapses and attempts < 50 * cfg.initial_synapses:
            attempts += 1
            pre = int(self._rng.choice(ids))
            post = int(self._rng.choice(ids))
            if pre == post or net.has_synapse(pre, post):
                continue
            if net.neuron(post).is_input or net.neuron(pre).is_output:
                continue
            if net.fan_in(post) >= cfg.max_fan_in:
                continue
            net.add_synapse(pre, post, weight=self._weight(), delay=self._delay())
        return net

    def _weight(self) -> float:
        sign = -1.0 if self._rng.random() < 0.2 else 1.0
        return sign * float(self._rng.uniform(0.3, 1.2))

    def _delay(self) -> int:
        return int(self._rng.integers(1, self.config.max_delay + 1))

    # ------------------------------------------------------------------
    # genetic operators
    # ------------------------------------------------------------------
    def mutate(self, genome: Network) -> Network:
        """Apply one structural and/or parametric mutation (copy-on-write)."""
        cfg = self.config
        net = genome.copy()
        if self._rng.random() < cfg.structural_mutation_rate:
            op = self._rng.choice(["add_syn", "del_syn", "add_neuron", "del_neuron"])
            if op == "add_syn":
                self._mutate_add_synapse(net)
            elif op == "del_syn":
                self._mutate_del_synapse(net)
            elif op == "add_neuron" and net.num_neurons < cfg.max_neurons:
                self._mutate_add_neuron(net)
            elif op == "del_neuron":
                self._mutate_del_neuron(net)
        if self._rng.random() < cfg.parametric_mutation_rate:
            self._mutate_parameters(net)
        return net

    def _mutate_add_synapse(self, net: Network) -> None:
        ids = net.neuron_ids()
        for _ in range(20):
            pre = int(self._rng.choice(ids))
            post = int(self._rng.choice(ids))
            if pre == post or net.has_synapse(pre, post):
                continue
            if net.neuron(post).is_input or net.neuron(pre).is_output:
                continue
            if net.fan_in(post) >= self.config.max_fan_in:
                continue
            net.add_synapse(pre, post, weight=self._weight(), delay=self._delay())
            return

    def _mutate_del_synapse(self, net: Network) -> None:
        synapses = list(net.synapses())
        if synapses:
            victim = synapses[int(self._rng.integers(len(synapses)))]
            net.remove_synapse(victim.pre, victim.post)

    def _mutate_add_neuron(self, net: Network) -> None:
        new = net.add_neuron(threshold=float(self._rng.uniform(0.5, 2.0)))
        # Splice into the graph so the neuron is immediately reachable.
        ids = [nid for nid in net.neuron_ids() if nid != new.id]
        pre = int(self._rng.choice(ids))
        post = int(self._rng.choice(ids))
        if not net.neuron(pre).is_output and not net.has_synapse(pre, new.id):
            net.add_synapse(pre, new.id, weight=self._weight(), delay=self._delay())
        if (
            not net.neuron(post).is_input
            and not net.has_synapse(new.id, post)
            and net.fan_in(post) < self.config.max_fan_in
        ):
            net.add_synapse(new.id, post, weight=self._weight(), delay=self._delay())

    def _mutate_del_neuron(self, net: Network) -> None:
        hidden = [
            n.id for n in net.neurons() if not n.is_input and not n.is_output
        ]
        if hidden:
            net.remove_neuron(int(self._rng.choice(hidden)))

    def _mutate_parameters(self, net: Network) -> None:
        cfg = self.config
        synapses = list(net.synapses())
        if synapses:
            syn = synapses[int(self._rng.integers(len(synapses)))]
            net.replace_synapse(
                replace(
                    syn,
                    weight=syn.weight + float(self._rng.normal(0, cfg.weight_sigma)),
                )
            )
        neurons = [n for n in net.neurons() if not n.is_input]
        if neurons:
            neuron = neurons[int(self._rng.integers(len(neurons)))]
            new_threshold = max(0.1, neuron.threshold + float(self._rng.normal(0, 0.2)))
            net.replace_neuron(replace(neuron, threshold=new_threshold))

    def crossover(self, a: Network, b: Network) -> Network:
        """Edge-union crossover: child inherits each parent edge with p=0.5.

        The child keeps parent A's neuron set (plus any B neurons needed by
        inherited B edges), preserving the fixed IO convention.
        """
        child = a.copy()
        for syn in b.synapses():
            if self._rng.random() >= 0.5:
                continue
            for endpoint in (syn.pre, syn.post):
                if not child.has_neuron(endpoint):
                    if child.num_neurons >= self.config.max_neurons:
                        break
                    src = b.neuron(endpoint)
                    child.add_neuron(
                        endpoint, src.threshold, src.leak, src.is_input, src.is_output
                    )
            else:
                if (
                    child.has_neuron(syn.pre)
                    and child.has_neuron(syn.post)
                    and not child.has_synapse(syn.pre, syn.post)
                    and child.fan_in(syn.post) < self.config.max_fan_in
                ):
                    child.add_synapse(syn.pre, syn.post, syn.weight, syn.delay)
        return child

    # ------------------------------------------------------------------
    # evolution loop
    # ------------------------------------------------------------------
    def evolve(self, fitness: FitnessFn, generations: int = 20) -> EonsResult:
        """Run the evolutionary loop; higher fitness is better."""
        if generations < 1:
            raise ValueError("generations must be >= 1")
        cfg = self.config
        population = [self.random_genome() for _ in range(cfg.population_size)]
        scores = [fitness(g) for g in population]
        history: list[float] = []

        for _ in range(generations):
            order = np.argsort(scores)[::-1]
            elites = [population[int(i)] for i in order[: cfg.elite_count]]
            next_pop: list[Network] = list(elites)
            while len(next_pop) < cfg.population_size:
                parent_a = self._tournament(population, scores)
                if self._rng.random() < cfg.crossover_rate:
                    parent_b = self._tournament(population, scores)
                    child = self.crossover(parent_a, parent_b)
                else:
                    child = parent_a.copy()
                next_pop.append(self.mutate(child))
            population = next_pop
            scores = [fitness(g) for g in population]
            history.append(max(scores))

        best_idx = int(np.argmax(scores))
        best, _ = population[best_idx].compact()
        return EonsResult(best=best, best_fitness=scores[best_idx], history=history)

    def _tournament(self, population: list[Network], scores: list[float]) -> Network:
        picks = self._rng.integers(len(population), size=self.config.tournament_size)
        winner = max(picks, key=lambda i: scores[int(i)])
        return population[int(winner)]
