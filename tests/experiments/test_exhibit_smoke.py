"""Smoke tests: every figure exhibit runs end to end at miniature scale.

These use aggressively small networks and solver budgets (a few seconds
each) — shape assertions live in benchmarks/, correctness in the module
tests; here we only require that each exhibit executes and reports.
"""

import pytest

from repro.experiments.runner import ExperimentConfig

TINY = ExperimentConfig(
    scale=0.08,
    area_time_limit=2.0,
    route_time_limit=2.0,
    trace_slices=3,
    num_samples=40,
    het_slots_per_type=10,
)


@pytest.mark.slow
class TestExhibitSmoke:
    def test_fig2_single_network(self):
        from repro.experiments.fig2 import run_network

        row = run_network("E", TINY)
        assert row.axon_homo_area <= row.mcc_homo_area + 1e-9
        assert row.axon_het_area <= row.mcc_het_area + 1e-9
        assert row.axon_het_area < row.axon_homo_area

    def test_fig3_single_network(self):
        from repro.experiments.fig3 import run_network

        res = run_network("E", TINY)
        assert res.best_mapping.is_valid()
        rows = res.histogram_rows()
        assert rows
        assert sum(pct for _, pct, _ in rows) == pytest.approx(100.0, abs=0.5)

    def test_fig5_fig6_single_network(self):
        from repro.experiments.common import het_problem, homo_problem
        from repro.experiments.fig5 import snu_over_area_optimal
        from repro.experiments.networks import paper_network

        network = paper_network("E", scale=TINY.scale)
        for problem in (homo_problem(network, TINY), het_problem(network, TINY)):
            row = snu_over_area_optimal("E", problem, TINY)
            assert row.routes_after <= row.routes_before

    def test_fig7_frontier(self):
        from repro.experiments.common import homo_problem
        from repro.experiments.fig7 import evolution_frontier, hypothetical_bound
        from repro.experiments.networks import paper_network

        problem = homo_problem(paper_network("E", scale=TINY.scale), TINY)
        points = evolution_frontier(problem, TINY)
        assert points
        assert all(p.routes_snu_opt <= p.routes_area_opt for p in points)
        bound_area, bound_routes = hypothetical_bound(problem)
        assert bound_area > 0 and bound_routes > 0

    def test_fig9_single_network(self):
        from repro.experiments.fig9 import run_network

        row = run_network("E", TINY)
        assert row.snu_packets_mean >= 0
        assert row.pgo_packets_mean >= 0
        assert row.pgo_det > 0 and row.snu_det > 0
