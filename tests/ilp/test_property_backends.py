"""Property-based cross-checks between the two MILP backends.

Random small integer programs must (a) agree on optimal objective value
between HiGHS and branch-and-bound, and (b) only ever return feasible
assignments.  This is the substrate-level guarantee every mapping result
in the reproduction rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.bnb_backend import BnBBackend
from repro.ilp.expr import lin_sum
from repro.ilp.highs_backend import HighsBackend
from repro.ilp.model import Model
from repro.ilp.result import SolveStatus


@st.composite
def random_ilp(draw):
    """A small random binary program with <=-constraints."""
    num_vars = draw(st.integers(2, 6))
    num_cons = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    model = Model("random")
    xs = [model.add_binary(f"x{i}") for i in range(num_vars)]
    for r in range(num_cons):
        coeffs = rng.integers(-4, 5, size=num_vars)
        rhs = int(rng.integers(0, 8))
        model.add(
            lin_sum(int(c) * x for c, x in zip(coeffs, xs)) <= rhs,
            name=f"c{r}",
        )
    obj_coeffs = rng.integers(-5, 6, size=num_vars)
    model.minimize(lin_sum(int(c) * x for c, x in zip(obj_coeffs, xs)))
    return model


@settings(max_examples=40, deadline=None)
@given(model=random_ilp())
def test_backends_agree_on_optimum(model):
    highs = HighsBackend().solve(model)
    bnb = BnBBackend().solve(model)
    assert highs.status == bnb.status
    if highs.status is SolveStatus.OPTIMAL:
        assert highs.objective == pytest.approx(bnb.objective, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(model=random_ilp())
def test_returned_solutions_are_feasible(model):
    for backend in (HighsBackend(), BnBBackend()):
        res = backend.solve(model)
        if res.status.has_solution():
            assert model.check_feasible(res.values) == []
            # Reported objective matches the assignment it came with.
            assert model.objective_of(res.values) == pytest.approx(
                res.objective, abs=1e-6
            )


@settings(max_examples=25, deadline=None)
@given(model=random_ilp())
def test_bnb_incumbents_never_beat_optimum_claim(model):
    res = BnBBackend().solve(model)
    if res.status is SolveStatus.OPTIMAL:
        for inc in res.incumbents:
            assert inc.objective >= res.objective - 1e-9
