"""Shared fixtures: small deterministic networks and architectures.

Marker conventions (registered in pytest.ini):

- ``slow`` — long-budget, multi-process or exhibit-scale tests.  The
  default run deselects them (``addopts = -m "not slow"``), so pooled and
  portfolio behavior is covered by the tight-budget variants below and the
  heavyweight versions opt in via ``pytest -m slow``.
- ``batch`` — tests that exercise the :mod:`repro.batch` engine (useful
  for ``pytest -m batch``).
"""

from __future__ import annotations

import pytest

from repro.batch.engine import BatchJob
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import (
    custom_architecture,
    heterogeneous_architecture,
    homogeneous_architecture,
)
from repro.mca.crossbar import CrossbarType
from repro.snn.network import Network
from repro.snn.generators import random_network


@pytest.fixture
def chain_network() -> Network:
    """0 -> 1 -> 2 -> 3, unit weights, delay 1."""
    net = Network("chain")
    for i in range(4):
        net.add_neuron(i, is_input=(i == 0), is_output=(i == 3))
    for i in range(3):
        net.add_synapse(i, i + 1, weight=1.0, delay=1)
    return net


@pytest.fixture
def shared_axon_network() -> Network:
    """The paper's Fig. 1 motif: one source feeding two consumers.

    Neuron 0 drives neurons 1 and 2; placing 1 and 2 on one crossbar must
    cost a single input line (axon sharing), not two.
    """
    net = Network("shared-axon")
    for i in range(3):
        net.add_neuron(i, is_input=(i == 0), is_output=(i != 0))
    net.add_synapse(0, 1)
    net.add_synapse(0, 2)
    return net


@pytest.fixture
def small_random_network() -> Network:
    return random_network(12, 24, seed=5, max_fan_in=6, name="small")


@pytest.fixture
def tiny_problem(small_random_network) -> MappingProblem:
    arch = homogeneous_architecture(small_random_network.num_neurons, dimension=8)
    return MappingProblem(small_random_network, arch)


@pytest.fixture
def tiny_het_problem(small_random_network) -> MappingProblem:
    arch = heterogeneous_architecture(
        small_random_network.num_neurons,
        types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8)],
        max_slots_per_type=6,
    )
    return MappingProblem(small_random_network, arch)


@pytest.fixture
def two_slot_arch():
    """Two 4x4 crossbars — enough for the hand-checkable examples."""
    return custom_architecture([(CrossbarType(4, 4), 2)], name="two-4x4")


# ----------------------------------------------------------------------
# Batch-engine fixtures: tiny instances with tight solver budgets, so the
# default (non-slow) run still exercises pools and portfolios in seconds.
# ----------------------------------------------------------------------

#: Per-stage solver budget used by default-run batch tests.
TIGHT_BUDGET = 2.0


@pytest.fixture
def batch_jobs() -> list[BatchJob]:
    """Four small independent area+SNU jobs with tight budgets."""
    jobs = []
    for i in range(4):
        net = random_network(12, 24, seed=200 + i, max_fan_in=6, name=f"job{i}")
        arch = homogeneous_architecture(net.num_neurons, dimension=8)
        jobs.append(
            BatchJob(
                name=f"job{i}",
                network=net,
                architecture=arch,
                stages=("area", "snu"),
                area_time_limit=TIGHT_BUDGET,
                route_time_limit=TIGHT_BUDGET,
            )
        )
    return jobs
