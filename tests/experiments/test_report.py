"""Tests for the terminal report renderers."""

import pytest

from repro.experiments.report import (
    percent_bar,
    scatter_strip,
    sparkline,
    trend_line,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_extremes_hit_ends(self):
        line = sparkline([0, 100, 50])
        assert line[0] == "▁"
        assert line[1] == "█"


class TestTrendLine:
    def test_includes_label_and_endpoints(self):
        line = trend_line("area", [464, 448], unit="memristors")
        assert line.startswith("area:")
        assert "464" in line and "448" in line
        assert "memristors" in line

    def test_empty_series(self):
        assert "(no data)" in trend_line("x", [])


class TestScatterStrip:
    def test_grid_dimensions(self):
        strip = scatter_strip([0, 1, 2], [0, 1, 4], width=20, height=5)
        lines = strip.splitlines()
        assert len(lines) == 6  # grid + axis caption
        assert all(len(row) == 20 for row in lines[:-1])
        assert strip.count("*") >= 1

    def test_corners_plotted(self):
        strip = scatter_strip([0, 10], [0, 10], width=10, height=4)
        lines = strip.splitlines()
        assert lines[0][-1] == "*"  # max x, max y -> top right
        assert lines[-2][0] == "*"  # min x, min y -> bottom left

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_strip([1], [1, 2])
        with pytest.raises(ValueError):
            scatter_strip([1], [1], width=1)
        assert scatter_strip([], []) == "(no points)"


class TestPercentBar:
    def test_full_and_empty(self):
        assert percent_bar(1.0, width=4) == "[####] 100%"
        assert percent_bar(0.0, width=4) == "[----] 0%"

    def test_range_validated(self):
        with pytest.raises(ValueError):
            percent_bar(1.5)
