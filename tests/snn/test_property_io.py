"""Property-based serialization round-trips."""

from hypothesis import given, settings, strategies as st

from repro.mapping.greedy import greedy_first_fit
from repro.mapping.io import mapping_from_dict, mapping_to_dict
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network
from repro.snn.io import network_from_dict, network_to_dict


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 25),
    density=st.floats(0.5, 2.0),
    seed=st.integers(0, 10_000),
)
def test_network_round_trip_any_random_network(n, density, seed):
    m = min(int(n * density), n * (n - 1))
    net = random_network(n, m, seed=seed)
    back = network_from_dict(network_to_dict(net))
    assert list(back.neurons()) == list(net.neurons())
    assert list(back.synapses()) == list(net.synapses())
    assert back.name == net.name


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2_000))
def test_mapping_round_trip_preserves_all_metrics(seed):
    net = random_network(12, 24, seed=seed, max_fan_in=6)
    arch = heterogeneous_architecture(
        12,
        types=[CrossbarType(4, 4), CrossbarType(8, 8)],
        max_slots_per_type=8,
    )
    mapping = greedy_first_fit(MappingProblem(net, arch))
    back = mapping_from_dict(mapping_to_dict(mapping))
    assert back.assignment == mapping.assignment
    assert back.area() == mapping.area()
    assert back.total_routes() == mapping.total_routes()
    assert back.local_routes() == mapping.local_routes()
    assert back.crossbar_histogram() == mapping.crossbar_histogram()
