"""Restart survival: the journal-backed registry replays its history."""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import (
    JOB_DONE,
    JOB_ERROR,
    JOURNAL_FORMAT,
    RESTART_ERROR,
    JobRegistry,
)
from repro.service.metrics import JsonlWriter, read_jsonl
from repro.service.wire import JobSpec

pytestmark = pytest.mark.service


def _registry(path, **kwargs) -> tuple[JobRegistry, JsonlWriter]:
    journal = JsonlWriter(path)
    return JobRegistry(journal=journal, **kwargs), journal


class TestJournalReplay:
    def test_finished_job_survives_a_restart_verbatim(
        self, tmp_path, tiny_scenario
    ):
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(job)
        registry.add_result(job, {"status": "ok", "scenario": tiny_scenario.name})
        registry.finish(job, JOB_DONE)
        journal.close()

        reborn, journal2 = _registry(path)
        try:
            revived = reborn.get(job.id)
            assert revived is not None
            assert revived.status == JOB_DONE
            assert revived.error is None
            assert revived.results == [
                {"status": "ok", "scenario": tiny_scenario.name}
            ]
            assert [e["event"] for e in revived.events] == [
                "queued",
                "running",
                "result",
                "done",
            ]
            assert revived.submitted_at == pytest.approx(job.submitted_at)
            assert revived.finished_at == pytest.approx(job.finished_at)
            assert revived.spec.payload() == job.spec.payload()
            assert reborn.replay_skipped == 0
        finally:
            journal2.close()

    def test_interrupted_job_surfaces_as_restart_error(
        self, tmp_path, tiny_scenario
    ):
        """A 202-accepted id must answer honestly after a crash: terminal
        error, not a 404 and not a zombie 'queued' nothing will run."""
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        queued = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        running = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(running)
        journal.close()  # the process "crashes" here

        reborn, journal2 = _registry(path)
        try:
            for job_id in (queued.id, running.id):
                revived = reborn.get(job_id)
                assert revived.status == JOB_ERROR
                assert revived.error == RESTART_ERROR
                assert revived.finished_at is not None
                assert revived.token.cancelled
                assert revived.events[-1]["event"] == JOB_ERROR
        finally:
            journal2.close()

    def test_second_restart_is_stable(self, tmp_path, tiny_scenario):
        """The restart-error is itself journaled: replaying twice must not
        re-surface the job or stack duplicate terminal events."""
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        journal.close()

        second, journal2 = _registry(path)
        first_events = list(second.get(job.id).events)
        journal2.close()

        third, journal3 = _registry(path)
        try:
            revived = third.get(job.id)
            assert revived.status == JOB_ERROR
            assert revived.error == RESTART_ERROR
            assert [e["event"] for e in revived.events] == [
                e["event"] for e in first_events
            ]
            assert sum(
                1 for e in revived.events if e["event"] == JOB_ERROR
            ) == 1
        finally:
            journal3.close()

    def test_id_counter_resumes_past_the_replayed_maximum(
        self, tmp_path, tiny_scenario
    ):
        """New ids must not collide with (or sort before) journaled ones."""
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        old_ids = [
            registry.create(JobSpec(scenarios=(tiny_scenario,))).id
            for _ in range(3)
        ]
        journal.close()

        reborn, journal2 = _registry(path)
        try:
            fresh = reborn.create(JobSpec(scenarios=(tiny_scenario,)))
            assert fresh.id not in old_ids
            numbers = [int(job_id.split("-")[1]) for job_id in old_ids]
            assert int(fresh.id.split("-")[1]) == max(numbers) + 1
        finally:
            journal2.close()

    def test_replay_tolerates_garbage_and_counts_it(
        self, tmp_path, tiny_scenario
    ):
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(job)
        registry.finish(job, JOB_DONE)
        journal.close()

        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")  # torn line: skipped by the reader
            handle.write(
                json.dumps(
                    {"format": JOURNAL_FORMAT + 1, "job": "job-9", "event": "x"}
                )
                + "\n"
            )  # future schema: skipped and counted
            handle.write(
                json.dumps(
                    {"format": JOURNAL_FORMAT, "job": "job-0-orphan",
                     "event": "running", "ts": 1.0}
                )
                + "\n"
            )  # orphan (no queued line): skipped and counted

        reborn, journal2 = _registry(path)
        try:
            assert reborn.get(job.id).status == JOB_DONE
            assert reborn.replay_skipped == 2
        finally:
            journal2.close()

    def test_replayed_backlog_respects_the_retention_cap(
        self, tmp_path, tiny_scenario
    ):
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        jobs = [
            registry.create(JobSpec(scenarios=(tiny_scenario,)))
            for _ in range(5)
        ]
        for job in jobs:
            registry.start(job)
            registry.finish(job, JOB_DONE)
        journal.close()

        reborn, journal2 = _registry(path, max_finished=2)
        try:
            remaining = {job.id for job in reborn.jobs()}
            assert remaining == {jobs[3].id, jobs[4].id}
        finally:
            journal2.close()


class TestServiceLevelRestart:
    def test_daemon_restart_preserves_a_done_job(self, tmp_path, tiny_scenario):
        """The acceptance scenario: solve, stop, restart on the same
        journal, and query the pre-restart job id."""
        from repro.batch.cache import ResultCache
        from repro.dse.explorer import Explorer
        from repro.service.daemon import MappingService

        path = tmp_path / "jobs.jsonl"
        service = MappingService(
            Explorer(cache=ResultCache(), time_limit=5.0),
            journal_path=path,
        )
        service.start()
        job = service.submit(JobSpec(scenarios=(tiny_scenario,)))
        with service.registry._cond:
            service.registry._cond.wait_for(lambda: job.finished, timeout=60)
        assert job.status == JOB_DONE
        service.stop(wait=True)

        reborn = MappingService(
            Explorer(cache=ResultCache(), time_limit=5.0),
            journal_path=path,
        )
        try:
            revived = reborn.registry.get(job.id)
            assert revived is not None
            assert revived.status == JOB_DONE
            assert revived.results and revived.results[0]["status"] == "ok"
            assert revived.detail()["events"][-1]["event"] == JOB_DONE
        finally:
            reborn.stop(wait=True)

    def test_journal_lines_are_wire_shaped(self, tmp_path, tiny_scenario):
        """Every journal line is a flat JSON object with the format tag —
        the contract the replayer and external log shippers share."""
        path = tmp_path / "jobs.jsonl"
        registry, journal = _registry(path)
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(job)
        registry.finish(job, JOB_DONE)
        journal.close()

        records = list(read_jsonl(path))
        assert len(records) == 3
        assert all(record["format"] == JOURNAL_FORMAT for record in records)
        assert all(record["job"] == job.id for record in records)
        assert [record["event"] for record in records] == [
            "queued",
            "running",
            "done",
        ]
        assert records[0]["spec"]["format"]  # resubmittable wire payload
