"""Tests for mapping/architecture serialization."""

import json

import pytest

from repro.mapping.greedy import greedy_first_fit
from repro.mapping.io import (
    architecture_from_dict,
    architecture_to_dict,
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import (
    custom_architecture,
    heterogeneous_architecture,
)
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@pytest.fixture
def mapping():
    net = random_network(12, 24, seed=30, max_fan_in=6)
    arch = heterogeneous_architecture(
        12, types=[CrossbarType(8, 4), CrossbarType(8, 8)], max_slots_per_type=5
    )
    return greedy_first_fit(MappingProblem(net, arch))


class TestArchitectureRoundTrip:
    def test_round_trip_preserves_slots(self):
        arch = custom_architecture(
            [(CrossbarType(4, 4), 3), (CrossbarType(16, 8, overhead=1.2), 2)],
            name="mixed",
        )
        back = architecture_from_dict(architecture_to_dict(arch))
        assert back.name == "mixed"
        assert back.num_slots == arch.num_slots
        for a, b in zip(arch.slots, back.slots):
            assert a.ctype == b.ctype

    def test_runs_compress_identical_types(self):
        arch = custom_architecture([(CrossbarType(4, 4), 5)])
        data = architecture_to_dict(arch)
        assert len(data["slot_runs"]) == 1
        assert data["slot_runs"][0]["count"] == 5


class TestMappingRoundTrip:
    def test_dict_round_trip(self, mapping):
        back = mapping_from_dict(mapping_to_dict(mapping))
        assert back.assignment == mapping.assignment
        assert back.area() == pytest.approx(mapping.area())
        assert back.global_routes() == mapping.global_routes()

    def test_file_round_trip(self, mapping, tmp_path):
        path = tmp_path / "m.json"
        save_mapping(mapping, path)
        back = load_mapping(path)
        assert back.assignment == mapping.assignment

    def test_version_check(self, mapping):
        data = mapping_to_dict(mapping)
        data["format_version"] = 7
        with pytest.raises(ValueError, match="version"):
            mapping_from_dict(data)

    def test_invalid_stored_mapping_rejected(self, mapping):
        data = mapping_to_dict(mapping)
        # Cram every neuron into slot 0 (overflows its outputs).
        data["assignment"] = {k: 0 for k in data["assignment"]}
        del data["metrics"]
        with pytest.raises(ValueError, match="invalid"):
            mapping_from_dict(data)

    def test_tampered_metrics_detected(self, mapping, tmp_path):
        path = tmp_path / "m.json"
        save_mapping(mapping, path)
        data = json.loads(path.read_text())
        data["metrics"]["area"] = data["metrics"]["area"] + 123
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="disagrees"):
            load_mapping(path)
