"""Long-lived mapping service over the batch/DSE engines.

The step from CLI sweeps to many concurrent clients: a daemon
(:mod:`~repro.service.daemon`) keeps one shared
:class:`~repro.batch.engine.BatchMapper`, result cache and run store
warm across HTTP job submissions; the wire format
(:mod:`~repro.service.wire`) is the DSE scenario payload, so anything a
sweep can evaluate a client can submit.  :mod:`~repro.service.client`
is the matching stdlib HTTP client, and ``repro serve`` / ``repro
submit`` expose both on the command line.

>>> from repro.service import MappingService, make_server, run_server
>>> server = make_server(MappingService(), port=8100)     # doctest: +SKIP
>>> run_server(server.service, server)                    # doctest: +SKIP
"""

from ..batch.queue import QueueFull
from .client import ServiceClient, ServiceError, StreamInterrupted
from .daemon import (
    MappingService,
    ServiceHTTPServer,
    Supervisor,
    make_server,
    run_server,
)
from .jobs import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_ERROR,
    JOB_QUEUED,
    JOB_RUNNING,
    RESTART_ERROR,
    TERMINAL_STATES,
    JobRegistry,
    ServiceJob,
)
from .ledger import (
    LEASE_DEAD_LETTER,
    LEASE_FINISHED,
    LEASE_LEASED,
    LEASE_PENDING,
    LEDGER_TERMINAL,
    JobLedger,
    LedgerJob,
)
from .metrics import JsonlWriter, LoopLatencyProbe, ServiceMetrics, read_jsonl
from .wire import (
    TIERS,
    WIRE_FORMAT,
    JobSpec,
    WireError,
    parse_job,
    result_payload,
)
from .worker import FleetConfig, worker_main

__all__ = [
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_ERROR",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "FleetConfig",
    "JobLedger",
    "JobRegistry",
    "JobSpec",
    "JsonlWriter",
    "LEASE_DEAD_LETTER",
    "LEASE_FINISHED",
    "LEASE_LEASED",
    "LEASE_PENDING",
    "LEDGER_TERMINAL",
    "LedgerJob",
    "LoopLatencyProbe",
    "MappingService",
    "QueueFull",
    "RESTART_ERROR",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceJob",
    "ServiceMetrics",
    "StreamInterrupted",
    "Supervisor",
    "TERMINAL_STATES",
    "TIERS",
    "WIRE_FORMAT",
    "WireError",
    "make_server",
    "parse_job",
    "read_jsonl",
    "result_payload",
    "run_server",
    "worker_main",
]
