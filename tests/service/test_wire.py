"""Wire-format tests: payload round-trips and strict parse errors."""

from __future__ import annotations

import json

import pytest

from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    WorkloadSpec,
    scenario_from_payload,
)
from repro.dse.store import TIER_GREEDY, TIER_ILP
from repro.mapping.axon_sharing import FormulationOptions
from repro.mapping.precision import PrecisionSpec
from repro.service.wire import WIRE_FORMAT, JobSpec, WireError, parse_job

pytestmark = pytest.mark.service


def _scenario(**kwargs) -> Scenario:
    return Scenario(
        architecture=kwargs.get(
            "architecture", ArchitectureSpec(kind="homogeneous", dimension=12)
        ),
        workload=kwargs.get(
            "workload", WorkloadSpec(network="C", scale=0.1, profile="uniform")
        ),
        formulation=kwargs.get("formulation", FormulationSpec()),
    )


class TestScenarioPayloadRoundtrip:
    def test_payload_roundtrips_through_json(self):
        scenario = _scenario(
            formulation=FormulationSpec(
                stages=("area", "snu"),
                options=FormulationOptions(symmetry_breaking=False),
                precision=PrecisionSpec(weight_bits=4, cell_bits=2),
            )
        )
        rehydrated = scenario_from_payload(json.loads(json.dumps(scenario.payload())))
        assert rehydrated == scenario
        assert rehydrated.payload() == scenario.payload()

    def test_from_payload_classmethod(self):
        scenario = _scenario()
        assert Scenario.from_payload(scenario.payload()) == scenario

    def test_missing_sections_take_spec_defaults(self):
        scenario = scenario_from_payload({"kind": "scenario"})
        assert scenario.architecture == ArchitectureSpec()
        assert scenario.workload == WorkloadSpec()
        assert scenario.formulation == FormulationSpec()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys.*'topology'"):
            scenario_from_payload({"kind": "scenario", "topology": "torus"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown payload kind"):
            scenario_from_payload({"kind": "mapping"})

    def test_unknown_spec_key_names_the_section(self):
        with pytest.raises(ValueError, match="architecture"):
            scenario_from_payload({"architecture": {"voltage": 3}})
        with pytest.raises(ValueError, match="workload"):
            scenario_from_payload({"workload": {"networks": ["C"]}})

    def test_invalid_axis_value_names_the_section(self):
        with pytest.raises(ValueError, match="workload.*scale"):
            scenario_from_payload({"workload": {"scale": -1.0}})

    def test_bad_stage_list_rejected(self):
        with pytest.raises(ValueError, match="formulation"):
            scenario_from_payload({"formulation": {"stages": "area"}})
        with pytest.raises(ValueError, match="formulation"):
            scenario_from_payload({"formulation": {"stages": ["area", "quantum"]}})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            scenario_from_payload([1, 2, 3])


class TestJobSpec:
    def test_payload_roundtrip(self):
        spec = JobSpec(
            scenarios=(_scenario(),), tier=TIER_GREEDY, time_limit=3.5
        )
        parsed = parse_job(json.loads(json.dumps(spec.payload())))
        assert parsed == spec

    def test_single_scenario_spelling(self):
        parsed = parse_job({"scenario": _scenario().payload()})
        assert len(parsed.scenarios) == 1
        assert parsed.tier == TIER_ILP
        assert parsed.time_limit is None

    def test_needs_at_least_one_scenario(self):
        with pytest.raises(WireError, match="at least one scenario"):
            parse_job({"scenarios": []})

    def test_scenario_and_scenarios_are_exclusive(self):
        payload = _scenario().payload()
        with pytest.raises(WireError, match="exactly one of"):
            parse_job({"scenario": payload, "scenarios": [payload]})
        with pytest.raises(WireError, match="exactly one of"):
            parse_job({})

    def test_explicit_null_scenarios_is_a_400_not_a_crash(self):
        with pytest.raises(WireError, match="exactly one of"):
            parse_job({"scenarios": None})
        with pytest.raises(WireError, match="exactly one of"):
            parse_job({"scenario": None})
        # null alongside a real section counts as absent, not as a value
        parsed = parse_job(
            {"scenario": _scenario().payload(), "scenarios": None}
        )
        assert len(parsed.scenarios) == 1

    def test_explicit_empty_stages_rejected_not_defaulted(self):
        with pytest.raises(ValueError, match="formulation"):
            scenario_from_payload({"formulation": {"stages": []}})

    def test_unknown_submission_key_rejected(self):
        with pytest.raises(WireError, match="priority"):
            parse_job({"scenario": _scenario().payload(), "priority": 9})

    def test_wrong_format_rejected(self):
        with pytest.raises(WireError, match="wire format"):
            parse_job(
                {"format": WIRE_FORMAT + 1, "scenario": _scenario().payload()}
            )

    def test_unknown_tier_rejected(self):
        with pytest.raises(WireError, match="tier"):
            parse_job({"scenario": _scenario().payload(), "tier": "quantum"})

    def test_bad_time_limit_rejected(self):
        with pytest.raises(WireError, match="time_limit"):
            parse_job({"scenario": _scenario().payload(), "time_limit": "fast"})
        with pytest.raises(WireError, match="time_limit"):
            parse_job({"scenario": _scenario().payload(), "time_limit": -3})

    def test_bad_scenario_is_positioned(self):
        with pytest.raises(WireError, match=r"scenario\[1\]"):
            parse_job(
                {"scenarios": [_scenario().payload(), {"kind": "nope"}]}
            )

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            parse_job("map everything")


class TestMultiTenantFields:
    """Strictness for the admission-control fields: bad values die at
    submit as 400s, never later as scheduler or worker failures."""

    def test_unknown_priority_rejected(self):
        with pytest.raises(WireError, match="priority.*urgent"):
            parse_job({"scenario": _scenario().payload(), "priority": "urgent"})
        with pytest.raises(WireError, match="priority"):
            JobSpec(scenarios=(_scenario(),), priority="urgent")

    def test_non_string_priority_rejected(self):
        with pytest.raises(WireError, match="priority"):
            parse_job({"scenario": _scenario().payload(), "priority": 1})
        with pytest.raises(WireError, match="priority"):
            parse_job({"scenario": _scenario().payload(), "priority": ["high"]})

    def test_bad_deadline_ms_rejected(self):
        body = {"scenario": _scenario().payload()}
        with pytest.raises(WireError, match="deadline_ms must be positive"):
            parse_job({**body, "deadline_ms": -5})
        with pytest.raises(WireError, match="deadline_ms must be positive"):
            parse_job({**body, "deadline_ms": 0})
        with pytest.raises(WireError, match="24 h"):
            parse_job({**body, "deadline_ms": 25 * 60 * 60 * 1000})
        with pytest.raises(WireError, match="integer"):
            parse_job({**body, "deadline_ms": "soon"})
        with pytest.raises(WireError, match="integer"):
            parse_job({**body, "deadline_ms": 99.5})
        # bools are ints to Python, never to the wire format
        with pytest.raises(WireError, match="integer"):
            parse_job({**body, "deadline_ms": True})

    def test_integral_float_deadline_accepted(self):
        # Some JSON encoders emit 30000.0; that is still 30000 ms.
        parsed = parse_job(
            {"scenario": _scenario().payload(), "deadline_ms": 30000.0}
        )
        assert parsed.deadline_ms == 30000
        assert isinstance(parsed.deadline_ms, int)

    def test_bad_client_rejected(self):
        body = {"scenario": _scenario().payload()}
        for bad in ("", "bad client!", "-leading-dash", "x" * 65, 7, None):
            with pytest.raises(WireError, match="client"):
                parse_job({**body, "client": bad})

    def test_payload_roundtrip_preserves_tenant_fields(self):
        spec = JobSpec(
            scenarios=(_scenario(),),
            priority="batch",
            deadline_ms=30000,
            client="team-a",
        )
        parsed = parse_job(json.loads(json.dumps(spec.payload())))
        assert parsed == spec
        assert parsed.priority == "batch"
        assert parsed.deadline_ms == 30000
        assert parsed.client == "team-a"

    def test_default_tenant_fields_omitted_from_payload(self):
        # Pre-existing journals/goldens must stay bit-identical: a spec
        # that never opted in serializes exactly as it did before the
        # fields existed.
        body = JobSpec(scenarios=(_scenario(),)).payload()
        assert "priority" not in body
        assert "deadline_ms" not in body
        assert "client" not in body
