"""Declarative scenario registry for design-space exploration.

A :class:`Scenario` is one point of the design space — the cross product
of three axis groups:

- **architecture** (:class:`ArchitectureSpec`) — crossbar pool kind
  (homogeneous / Table-II heterogeneous), crossbar dimension, pool size,
  NoC mesh dims;
- **workload** (:class:`WorkloadSpec`) — which Table-I twin at which
  scale, and which spike-profile family drives the packet/energy
  objectives (``uniform`` weights, or simulated
  :mod:`repro.profile.workloads` stroke / hotspot / noise frames);
- **formulation** (:class:`FormulationSpec`) — the mapping-pipeline stage
  prefix (area, +SNU, +PGO), :class:`FormulationOptions` toggles, and
  optional bit-precision (:class:`~repro.mapping.precision.PrecisionSpec`).

Every spec is a frozen plain-data dataclass, so scenarios are picklable,
hashable, and fingerprint deterministically: :meth:`Scenario.fingerprint`
reuses :mod:`repro.mapping.fingerprint` over the *constructed* network
and pool plus the remaining axis payloads — two scenarios that build the
same instance share a fingerprint no matter how they were spelled.

A :class:`DesignSpace` holds the axis value lists and enumerates the
cross product; :class:`ScenarioRegistry` memoizes the expensive
constructions (twin networks and simulated spike profiles) across the
scenarios that share them.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field

from ..batch.engine import BatchJob
from ..mapping.axon_sharing import FormulationOptions
from ..mapping.fingerprint import (
    architecture_fingerprint,
    combine,
    digest,
    network_fingerprint,
    options_fingerprint,
)
from ..mapping.pipeline import STAGES
from ..mapping.precision import PrecisionSpec
from ..mca.architecture import (
    Architecture,
    heterogeneous_architecture,
    homogeneous_architecture,
)
from ..mca.noc import MeshNoC
from ..snn.network import Network

ARCHITECTURE_KINDS = ("homogeneous", "heterogeneous")
PROFILE_FAMILIES = ("uniform", "stroke", "hotspot", "noise")


@dataclass(frozen=True)
class ArchitectureSpec:
    """One hardware configuration axis point."""

    kind: str = "heterogeneous"
    dimension: int = 16  # homogeneous crossbar size (ignored for het pools)
    pool_slots_per_type: int = 8  # het pool cap per Table-II type
    slack: float = 1.5  # homogeneous pool output-capacity headroom
    mesh_width: int | None = None  # NoC mesh columns (None = near-square)

    def __post_init__(self) -> None:
        if self.kind not in ARCHITECTURE_KINDS:
            raise ValueError(
                f"unknown architecture kind {self.kind!r}; "
                f"choose from {ARCHITECTURE_KINDS}"
            )
        if self.dimension < 1:
            raise ValueError("dimension must be positive")
        if self.pool_slots_per_type < 1:
            raise ValueError("pool_slots_per_type must be positive")
        if self.mesh_width is not None and self.mesh_width < 1:
            raise ValueError("mesh_width must be positive")

    @property
    def label(self) -> str:
        if self.kind == "homogeneous":
            return f"homo{self.dimension}"
        return f"het{self.pool_slots_per_type}"

    def build(self, network: Network, slices: int = 1) -> Architecture:
        """The crossbar pool for one network (bit-slice aware).

        ``slices`` > 1 multiplies output-capacity demand (each neuron
        occupies that many physical columns), so the pool is headroomed
        accordingly — precision scenarios stay feasible without the
        solver's choices being constrained by pool composition.
        """
        if self.kind == "homogeneous":
            return homogeneous_architecture(
                network.num_neurons,
                dimension=self.dimension,
                slack=self.slack * slices,
            )
        return heterogeneous_architecture(
            network.num_neurons,
            max_slots_per_type=self.pool_slots_per_type * slices,
        )

    def noc(self, architecture: Architecture) -> MeshNoC:
        """The mesh this pool's tiles sit on (the latency/hop substrate)."""
        return MeshNoC(architecture.num_slots, width=self.mesh_width)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis point: a Table-I twin plus a profile family."""

    network: str = "C"  # Table-I name (A-E)
    scale: float = 1.0  # twin scaling factor
    profile: str = "uniform"
    num_samples: int = 12  # frames simulated for non-uniform profiles
    window: int = 16  # timesteps per simulated frame
    seed: int = 0

    def __post_init__(self) -> None:
        if self.profile not in PROFILE_FAMILIES:
            raise ValueError(
                f"unknown profile family {self.profile!r}; "
                f"choose from {PROFILE_FAMILIES}"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.num_samples < 1 or self.window < 1:
            raise ValueError("num_samples and window must be positive")

    @property
    def label(self) -> str:
        return f"{self.network}x{self.scale:g}-{self.profile}"


@dataclass(frozen=True)
class FormulationSpec:
    """One formulation axis point: stage prefix + ILP variant knobs."""

    stages: tuple[str, ...] = ("area",)
    options: FormulationOptions = field(default_factory=FormulationOptions)
    precision: PrecisionSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        unknown = [s for s in self.stages if s not in STAGES]
        if unknown:
            raise ValueError(f"unknown stages {unknown}; valid: {STAGES}")
        if not self.stages:
            raise ValueError("need at least one pipeline stage")

    @property
    def label(self) -> str:
        tag = "+".join(self.stages)
        if self.precision is not None:
            tag += f"-w{self.precision.weight_bits}c{self.precision.cell_bits}"
        return tag


@dataclass(frozen=True)
class Scenario:
    """One fully specified (architecture, workload, formulation) point."""

    architecture: ArchitectureSpec
    workload: WorkloadSpec
    formulation: FormulationSpec

    @property
    def name(self) -> str:
        return "/".join(
            (self.workload.label, self.architecture.label, self.formulation.label)
        )

    @property
    def slices(self) -> int:
        spec = self.formulation.precision
        return spec.slices if spec is not None else 1

    def payload(self) -> dict:
        """Canonical plain-data view of the full axis choice."""
        return {
            "kind": "scenario",
            "architecture": asdict(self.architecture),
            "workload": asdict(self.workload),
            "formulation": {
                "stages": list(self.formulation.stages),
                "options": asdict(self.formulation.options),
                "precision": (
                    asdict(self.formulation.precision)
                    if self.formulation.precision is not None
                    else None
                ),
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Scenario":
        """Inverse of :meth:`payload` (see :func:`scenario_from_payload`)."""
        return scenario_from_payload(payload)


class ScenarioRegistry:
    """Builds scenarios into concrete instances, memoizing shared parts.

    Networks are keyed by (name, scale, seed) and spike profiles by
    (workload spec, network) — a grid whose scenarios share a workload
    constructs each twin and simulates each profile exactly once.
    """

    def __init__(self) -> None:
        self._networks: dict[tuple, Network] = {}
        self._profiles: dict[WorkloadSpec, dict[int, int]] = {}
        self._fingerprints: dict[Scenario, str] = {}

    # ------------------------------------------------------------------
    def network(self, workload: WorkloadSpec) -> Network:
        from ..experiments.networks import paper_network

        key = (workload.network, workload.scale)
        if key not in self._networks:
            net = paper_network(workload.network, scale=workload.scale)
            self._networks[key] = net.compact()[0]
        return self._networks[key]

    def profile(self, workload: WorkloadSpec) -> dict[int, int]:
        """Per-neuron spike counts for the workload's profile family.

        ``uniform`` weights every neuron equally (a structural packet
        proxy that needs no simulation); the frame families simulate
        ``num_samples`` generated frames through the profiler.
        """
        if workload not in self._profiles:
            self._profiles[workload] = self._build_profile(workload)
        return self._profiles[workload]

    def _build_profile(self, workload: WorkloadSpec) -> dict[int, int]:
        network = self.network(workload)
        if workload.profile == "uniform":
            return {nid: 1 for nid in network.neuron_ids()}
        from ..profile.profiler import collect_profile
        from ..profile.workloads import hotspot_frames, noise_frames, stroke_frames

        generator = {
            "stroke": stroke_frames,
            "hotspot": hotspot_frames,
            "noise": noise_frames,
        }[workload.profile]
        side = max(1, int(len(network.input_ids()) ** 0.5))
        samples = generator(
            rows=side,
            cols=side,
            num_samples=workload.num_samples,
            seed=workload.seed,
        )
        profile = collect_profile(network, samples, window=workload.window)
        return dict(profile.counts)

    def pool(self, scenario: Scenario) -> Architecture:
        return scenario.architecture.build(
            self.network(scenario.workload), slices=scenario.slices
        )

    # ------------------------------------------------------------------
    def fingerprint(self, scenario: Scenario) -> str:
        """Deterministic content fingerprint of one scenario.

        Built from the *constructed* network and pool (via
        :mod:`repro.mapping.fingerprint`) plus the profile family, stage
        prefix and formulation payloads — spelling-invariant and stable
        across processes, so it keys the persistent run store.
        """
        if scenario not in self._fingerprints:
            parts = [
                network_fingerprint(self.network(scenario.workload)),
                architecture_fingerprint(self.pool(scenario)),
                options_fingerprint(scenario.formulation.options),
                digest(list(scenario.formulation.stages)),
                # The uniform family ignores the simulation knobs, so
                # they stay out of its digest — resuming a store written
                # at a different --num-samples still hits those entries.
                digest(
                    {"profile": "uniform"}
                    if scenario.workload.profile == "uniform"
                    else {
                        "profile": scenario.workload.profile,
                        "num_samples": scenario.workload.num_samples,
                        "window": scenario.workload.window,
                        "seed": scenario.workload.seed,
                    }
                ),
                digest({"mesh_width": scenario.architecture.mesh_width}),
            ]
            if scenario.formulation.precision is not None:
                parts.append(options_fingerprint(scenario.formulation.precision))
            self._fingerprints[scenario] = combine(*parts)
        return self._fingerprints[scenario]

    def to_job(
        self,
        scenario: Scenario,
        time_limit: float | None = 10.0,
        initial_assignment: dict[int, int] | None = None,
    ) -> BatchJob:
        """The batch job that solves this scenario's mapping pipeline."""
        return BatchJob(
            name=scenario.name,
            network=self.network(scenario.workload),
            architecture=self.pool(scenario),
            stages=scenario.formulation.stages,
            profile=self.profile(scenario.workload),
            formulation=scenario.formulation.options,
            area_time_limit=time_limit,
            route_time_limit=time_limit,
            initial_assignment=(
                tuple(initial_assignment.items())
                if initial_assignment is not None
                else None
            ),
            precision=scenario.formulation.precision,
        )


@dataclass(frozen=True)
class DesignSpace:
    """Axis value lists whose cross product is the scenario grid."""

    architectures: tuple[ArchitectureSpec, ...]
    workloads: tuple[WorkloadSpec, ...]
    formulations: tuple[FormulationSpec, ...]

    def __post_init__(self) -> None:
        for label, axis in (
            ("architectures", self.architectures),
            ("workloads", self.workloads),
            ("formulations", self.formulations),
        ):
            object.__setattr__(self, label, tuple(axis))
            if not getattr(self, label):
                raise ValueError(f"design space needs at least one {label[:-1]}")

    def __len__(self) -> int:
        return (
            len(self.architectures) * len(self.workloads) * len(self.formulations)
        )

    def scenarios(self) -> list[Scenario]:
        """The full grid, workload-major so neighbors share instances.

        Ordering matters to the adaptive driver: consecutive scenarios
        that share (workload, architecture) are warm-start neighbors.
        """
        return [
            Scenario(architecture=arch, workload=wl, formulation=form)
            for wl, arch, form in itertools.product(
                self.workloads, self.architectures, self.formulations
            )
        ]


def _spec_from_payload(cls, payload, label: str):
    """Rehydrate one frozen spec dataclass from its ``asdict`` payload.

    The payload is the wire format (``Scenario.payload()`` round-trips
    through JSON), so every failure mode — wrong container type, unknown
    key, invalid value — must surface as a :class:`ValueError` naming the
    offending axis, not a bare ``TypeError`` from the constructor.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ValueError(f"{label} payload must be an object, got {payload!r}")
    try:
        return cls(**payload)
    except TypeError as exc:  # unknown/duplicate keys
        raise ValueError(f"invalid {label} payload: {exc}") from None
    except ValueError as exc:  # the spec's own validation
        raise ValueError(f"invalid {label} payload: {exc}") from None


def formulation_from_payload(payload: dict | None) -> FormulationSpec:
    """Rehydrate a :class:`FormulationSpec` from its payload dict."""
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ValueError(f"formulation payload must be an object, got {payload!r}")
    unknown = set(payload) - {"stages", "options", "precision"}
    if unknown:
        raise ValueError(f"invalid formulation payload: unknown keys {sorted(unknown)}")
    # Only an *absent* stages key defaults; an explicit empty list is a
    # malformed request and falls through to FormulationSpec's own check.
    stages = payload.get("stages")
    if stages is None:
        stages = ("area",)
    if isinstance(stages, str) or not isinstance(stages, (list, tuple)):
        raise ValueError(f"formulation stages must be a list, got {stages!r}")
    options = _spec_from_payload(
        FormulationOptions, payload.get("options"), "formulation options"
    )
    precision = payload.get("precision")
    if precision is not None:
        precision = _spec_from_payload(PrecisionSpec, precision, "precision")
    try:
        return FormulationSpec(
            stages=tuple(stages), options=options, precision=precision
        )
    except ValueError as exc:
        raise ValueError(f"invalid formulation payload: {exc}") from None


def scenario_from_payload(payload: dict) -> Scenario:
    """Rehydrate a :class:`Scenario` from its :meth:`Scenario.payload` dict.

    This is the service wire format: a JSON object with ``architecture``,
    ``workload`` and ``formulation`` sections (each optional — missing
    sections take the spec defaults), exactly what :meth:`Scenario.payload`
    emits and what the run store records per entry.  Raises
    :class:`ValueError` with a section-qualified message on any malformed
    input, so HTTP handlers can map it straight to a 400.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"scenario payload must be an object, got {payload!r}")
    kind = payload.get("kind", "scenario")
    if kind != "scenario":
        raise ValueError(f"unknown payload kind {kind!r} (expected 'scenario')")
    unknown = set(payload) - {"kind", "architecture", "workload", "formulation"}
    if unknown:
        raise ValueError(f"invalid scenario payload: unknown keys {sorted(unknown)}")
    return Scenario(
        architecture=_spec_from_payload(
            ArchitectureSpec, payload.get("architecture"), "architecture"
        ),
        workload=_spec_from_payload(WorkloadSpec, payload.get("workload"), "workload"),
        formulation=formulation_from_payload(payload.get("formulation")),
    )


def default_space(
    networks: tuple[str, ...] = ("C", "E"),
    scale: float = 0.12,
    profiles: tuple[str, ...] = ("uniform", "hotspot"),
    dimensions: tuple[int, ...] = (12, 16),
    include_heterogeneous: bool = True,
    include_snu: bool = True,
    include_pgo: bool = False,
    include_precision: bool = False,
    num_samples: int = 12,
) -> DesignSpace:
    """The stock exploration grid: >= 24 scenarios at laptop budgets.

    Defaults: 3 architectures (12x12 / 16x16 homogeneous pools + the
    Table-II heterogeneous pool) x 4 workloads (two Table-I twins x two
    profile families) x 2 formulations (area, area+snu) = 24 scenarios.
    """
    architectures = [
        ArchitectureSpec(kind="homogeneous", dimension=dim) for dim in dimensions
    ]
    if include_heterogeneous:
        architectures.append(ArchitectureSpec(kind="heterogeneous"))
    workloads = [
        WorkloadSpec(network=name, scale=scale, profile=prof, num_samples=num_samples)
        for name in networks
        for prof in profiles
    ]
    formulations = [FormulationSpec(stages=("area",))]
    if include_snu:
        formulations.append(FormulationSpec(stages=("area", "snu")))
    if include_pgo:
        formulations.append(FormulationSpec(stages=("area", "snu", "pgo")))
    if include_precision:
        formulations.append(
            FormulationSpec(
                stages=("area",), precision=PrecisionSpec(weight_bits=4, cell_bits=2)
            )
        )
    return DesignSpace(
        architectures=tuple(architectures),
        workloads=tuple(workloads),
        formulations=tuple(formulations),
    )
